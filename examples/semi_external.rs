//! Semi-external memory in action: the same BFS over all three Table I
//! scenarios, with throttled device models, DRAM-footprint accounting, and
//! the iostat-style metrics of §VI-D.
//!
//! ```sh
//! cargo run --release --example semi_external [scale]
//! ```

use sembfs::prelude::*;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let params = KroneckerParams::graph500(scale, 9);
    println!("== scenario comparison at SCALE {scale} (throttled device models) ==\n");
    let edges = params.generate();

    let mut dram_only_time = None;
    for scenario in Scenario::ALL {
        let opts = ScenarioOptions {
            // Real delays so wall-clock differences reflect the devices.
            delay_mode: DelayMode::Throttled,
            ..Default::default()
        };
        let data = ScenarioData::build(&edges, scenario, opts).expect("build");
        let root = select_roots(params.num_vertices(), 1, 3, |v| data.degree(v))[0];
        let run = data
            .run(root, &scenario.best_policy(), &BfsConfig::paper())
            .expect("bfs");
        validate_bfs_tree(&run.parent, root, &edges).expect("validate");

        let dram = data.backward_dram_bytes()
            + data.status_bytes()
            + match scenario {
                Scenario::DramOnly => data.forward_bytes(),
                _ => 0,
            };
        println!("[{}]", scenario.label());
        println!(
            "  DRAM {:.1} MiB | NVM {:.1} MiB | policy {}",
            dram as f64 / (1 << 20) as f64,
            data.nvm_bytes() as f64 / (1 << 20) as f64,
            scenario.best_policy().label()
        );
        let t = run.elapsed.as_secs_f64();
        let degradation = dram_only_time
            .map(|base: f64| format!("{:+.1} % vs DRAM-only", (t / base - 1.0) * 100.0))
            .unwrap_or_else(|| "baseline".into());
        if dram_only_time.is_none() {
            dram_only_time = Some(t);
        }
        println!(
            "  BFS {:.2} ms → {:.2} MTEPS ({degradation})",
            t * 1e3,
            run.teps() / 1e6
        );
        if let Some(dev) = data.device() {
            let s = dev.snapshot();
            println!(
                "  device: {} requests | avgrq-sz {:.1} sectors | avgqu-sz {:.2} | \
                 await {:.3} ms | {:.1} MiB/s",
                s.requests,
                s.avgrq_sz(),
                s.avgqu_sz(),
                s.await_ms(),
                s.throughput_mib_s()
            );
        }
        println!();
    }

    println!("== OS page cache: the Fig. 8 vs Fig. 9 regimes ==\n");
    for (label, cache) in [
        ("uncached (SCALE 27 regime)", None),
        ("warm page cache (SCALE 26 regime)", Some(1u64 << 30)),
    ] {
        let opts = ScenarioOptions {
            delay_mode: DelayMode::Throttled,
            page_cache_bytes: cache,
            ..Default::default()
        };
        let data = ScenarioData::build(&edges, Scenario::DramPcieFlash, opts).expect("build");
        let root = select_roots(params.num_vertices(), 1, 3, |v| data.degree(v))[0];
        let run = data
            .run(
                root,
                &Scenario::DramPcieFlash.best_policy(),
                &BfsConfig::paper(),
            )
            .expect("bfs");
        let reqs = data.device().unwrap().snapshot().requests;
        println!(
            "  {label:<34} {:.2} MTEPS, {} device requests",
            run.teps() / 1e6,
            reqs
        );
    }
    println!();

    println!("== §VI-E: offloading the backward graph's cold tail ==\n");
    for k in [2u64, 8, 32] {
        let opts = ScenarioOptions {
            backward_offload_k: Some(k),
            ..Default::default()
        };
        let data = ScenarioData::build(&edges, Scenario::DramPcieFlash, opts).expect("build");
        let root = select_roots(params.num_vertices(), 1, 3, |v| data.degree(v))[0];
        let run = data
            .run(
                root,
                &Scenario::DramPcieFlash.best_policy(),
                &BfsConfig::paper(),
            )
            .expect("bfs");
        let (dram_e, nvm_e) = run.levels.iter().fold((0u64, 0u64), |acc, l| {
            if l.direction == Direction::BottomUp {
                (acc.0 + l.scanned_edges - l.nvm_edges, acc.1 + l.nvm_edges)
            } else {
                acc
            }
        });
        let full = data.csr().byte_size() as f64;
        println!(
            "  k = {k:>2}: backward graph DRAM {:.1} MiB ({:.1} % saved) | \
             bottom-up probes on NVM: {:.2} %",
            data.backward_dram_bytes() as f64 / (1 << 20) as f64,
            (1.0 - data.backward_dram_bytes() as f64 / full) * 100.0,
            100.0 * nvm_e as f64 / (dram_e + nvm_e).max(1) as f64
        );
    }
}
