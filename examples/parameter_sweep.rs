//! A miniature of Fig. 7: sweep the direction-switching thresholds α and
//! β and print the median-TEPS surface for one scenario.
//!
//! ```sh
//! cargo run --release --example parameter_sweep [scale] [scenario]
//! # scenario ∈ {dram, flash, ssd}
//! ```

use sembfs::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(14);
    let scenario = match args.next().as_deref() {
        Some("flash") => Scenario::DramPcieFlash,
        Some("ssd") => Scenario::DramSsd,
        _ => Scenario::DramOnly,
    };

    let params = KroneckerParams::graph500(scale, 5);
    let edges = params.generate();
    let opts = ScenarioOptions {
        delay_mode: DelayMode::Throttled,
        ..Default::default()
    };
    let data = ScenarioData::build(&edges, scenario, opts).expect("build");
    let roots = select_roots(params.num_vertices(), 5, 3, |v| data.degree(v));

    let alphas = [1e2, 1e3, 1e4, 1e5, 1e6];
    let beta_mults = [0.1, 1.0, 10.0];

    println!(
        "== α/β sweep, SCALE {scale}, {} (median MTEPS over {} roots) ==\n",
        scenario.label(),
        roots.len()
    );
    print!("{:>10}", "α \\ β");
    for bm in beta_mults {
        print!("{:>12}", format!("{bm}·α"));
    }
    println!();

    let mut best = (0.0f64, 0.0f64, 0.0f64);
    for &alpha in &alphas {
        print!("{:>10.0e}", alpha);
        for &bm in &beta_mults {
            let policy = AlphaBetaPolicy::new(alpha, alpha * bm);
            let mut teps: Vec<f64> = roots
                .iter()
                .map(|&r| {
                    let run = data.run(r, &policy, &BfsConfig::paper()).expect("bfs");
                    run.teps()
                })
                .collect();
            teps.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = teps[teps.len() / 2];
            if median > best.0 {
                best = (median, alpha, alpha * bm);
            }
            print!("{:>12.2}", median / 1e6);
        }
        println!();
    }
    println!(
        "\nbest: {:.2} MTEPS at α = {:.0e}, β = {:.0e}",
        best.0 / 1e6,
        best.1,
        best.2
    );
    println!(
        "(paper, SCALE 27: DRAM-only best at α=1e4, β=10α; \
         DRAM+PCIeFlash at α=1e6, β=1α; DRAM+SSD at α=1e5, β=0.1α)"
    );
}
