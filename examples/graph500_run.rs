//! The full Graph500 benchmark pipeline (§II): generation, construction,
//! `num_roots` timed BFS iterations with validation, and the official
//! statistics block.
//!
//! ```sh
//! cargo run --release --example graph500_run [scale] [scenario] [num_roots]
//! # scenario ∈ {dram, flash, ssd}; defaults: scale 16, dram, 16 roots
//! ```

use sembfs::prelude::*;
use sembfs_graph500::driver::run_rounds;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let scenario = match args.next().as_deref() {
        Some("flash") => Scenario::DramPcieFlash,
        Some("ssd") => Scenario::DramSsd,
        _ => Scenario::DramOnly,
    };
    let num_roots: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    let spec = BenchmarkSpec::quick(scale, num_roots, 1);
    println!(
        "Graph500 run: SCALE {scale}, edge factor {}, {} roots, scenario {}",
        spec.edge_factor,
        spec.num_roots,
        scenario.label()
    );

    let t0 = std::time::Instant::now();
    let edges = spec.kronecker().generate();
    println!("generation_time: {:.3} s", t0.elapsed().as_secs_f64());

    let t1 = std::time::Instant::now();
    let data =
        ScenarioData::build(&edges, scenario, ScenarioOptions::default()).expect("construction");
    println!("construction_time: {:.3} s", t1.elapsed().as_secs_f64());
    println!(
        "graph sizes: forward {:.1} MiB, backward {:.1} MiB, status {:.1} MiB (NVM: {:.1} MiB)",
        data.forward_bytes() as f64 / (1 << 20) as f64,
        data.backward_dram_bytes() as f64 / (1 << 20) as f64,
        data.status_bytes() as f64 / (1 << 20) as f64,
        data.nvm_bytes() as f64 / (1 << 20) as f64,
    );

    let roots = select_roots(spec.num_vertices(), spec.num_roots, spec.seed, |v| {
        data.degree(v)
    });
    let policy = scenario.best_policy();
    println!("policy: {}", policy.label());

    let mut round = 0;
    let summary = run_rounds(&roots, &edges, |root| {
        round += 1;
        let run = data.run(root, &policy, &BfsConfig::paper()).expect("BFS");
        println!(
            "  bfs {round:>2}: root {root:>9}  time {:>9.4} ms  teps_edges {:>10}  {:>8.2} MTEPS",
            run.elapsed.as_secs_f64() * 1e3,
            run.teps_edges,
            run.teps() / 1e6
        );
        (run.parent, run.teps_edges, run.elapsed)
    })
    .expect("all rounds validate");

    println!(
        "\nSCALE: {scale}\nedgefactor: {}\nNBFS: {}",
        spec.edge_factor, num_roots
    );
    println!("{}", summary.teps_stats.to_report());
    println!("\nmedian score: {:.3} MTEPS", summary.median_teps() / 1e6);
    if let Some(dev) = data.device() {
        let s = dev.snapshot();
        println!(
            "device [{}]: {} requests, avgrq-sz {:.1} sectors, avgqu-sz {:.1}, await {:.2} ms",
            dev.profile().name,
            s.requests,
            s.avgrq_sz(),
            s.avgqu_sz(),
            s.await_ms()
        );
    }
}
