//! A workload from the paper's motivation (§I): analyzing a social-style
//! network — hubs, reachability, degrees of separation — on a graph whose
//! adjacency data does not fit the DRAM budget, using the semi-external
//! layout for every traversal.
//!
//! ```sh
//! cargo run --release --example social_network [scale]
//! ```

use sembfs::analytics::{connected_components, pseudo_diameter, separation_histogram};
use sembfs::prelude::*;
use sembfs_csr::DegreeStats;
use sembfs_graph500::validate::{compute_levels, INVALID_LEVEL};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let params = KroneckerParams::graph500(scale, 1234);
    println!(
        "== social-network analytics on a Kronecker graph ({} members, {} friendships) ==\n",
        params.num_vertices(),
        params.num_edges()
    );
    let edges = params.generate();
    let data = ScenarioData::build(&edges, Scenario::DramPcieFlash, ScenarioOptions::default())
        .expect("build");

    // --- Degree structure: who are the hubs? ---
    let deg = DegreeStats::from_csr(data.csr());
    println!("degree distribution:");
    println!(
        "  mean {:.1}, max {}, isolated members {} ({:.1} %)",
        deg.mean,
        deg.max,
        deg.isolated,
        100.0 * deg.isolated as f64 / params.num_vertices() as f64
    );
    for (i, &count) in deg.log2_buckets.iter().enumerate() {
        if count > 0 {
            println!(
                "  degree {:>8}–{:<8} {:>9} members",
                1u64 << i,
                (1u64 << (i + 1)) - 1,
                count
            );
        }
    }

    // --- Community structure ---
    let cc = connected_components(data.csr());
    println!(
        "\ncomponents: {} total; giant component holds {:.1} % of members",
        cc.num_components(),
        100.0 * cc.giant_fraction()
    );

    // --- Reachability and degrees of separation from a few seeds ---
    let seeds = select_roots(params.num_vertices(), 3, 99, |v| data.degree(v));
    let policy = Scenario::DramPcieFlash.best_policy();
    println!("\ndegrees of separation (hybrid BFS on the semi-external layout):");
    for &seed in &seeds {
        let run = data.run(seed, &policy, &BfsConfig::paper()).expect("bfs");
        let profile = separation_histogram(&run.parent, seed).expect("valid tree");
        let reach = 100.0 * run.visited as f64 / params.num_vertices() as f64;
        println!(
            "  seed {seed:>9}: reaches {:.1} % of the network, max separation {}, \
             mean separation {:.2}, {:.2} MTEPS",
            reach,
            profile.eccentricity(),
            profile.mean_separation(),
            run.teps() / 1e6
        );
        let spread: Vec<String> = profile
            .counts
            .iter()
            .enumerate()
            .map(|(l, c)| format!("{l}:{c}"))
            .collect();
        println!("      level populations: {}", spread.join("  "));
    }

    // --- How wide is the network? ---
    let (diameter, far, _) = pseudo_diameter(&data, seeds[0], &policy).expect("diameter sweep");
    println!(
        "\npseudo-diameter (double sweep from seed {} via {far}): {diameter} hops",
        seeds[0]
    );

    // --- Mutual reachability: do the seeds share a component? ---
    let base = data
        .run(seeds[0], &policy, &BfsConfig::paper())
        .expect("bfs");
    let levels = compute_levels(&base.parent, seeds[0]).expect("valid tree");
    for &other in &seeds[1..] {
        let connected = levels[other as usize] != INVALID_LEVEL;
        println!(
            "\nseed {} ↔ seed {}: {}",
            seeds[0],
            other,
            if connected {
                format!("connected ({} hops)", levels[other as usize])
            } else {
                "in different components".into()
            }
        );
    }
}
