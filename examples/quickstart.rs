//! Quickstart: generate a Kronecker graph, offload the forward graph to a
//! simulated PCIe flash device, run the hybrid BFS, and validate.
//!
//! ```sh
//! cargo run --release --example quickstart [scale]
//! ```

use sembfs::prelude::*;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);

    println!("== sembfs quickstart (SCALE {scale}, edge factor 16) ==\n");

    // Step 1: edge list generation.
    let params = KroneckerParams::graph500(scale, 42);
    println!(
        "generating Kronecker graph: {} vertices, {} edges …",
        params.num_vertices(),
        params.num_edges()
    );
    let edges = params.generate();

    // Step 2: graph construction with the paper's DRAM+PCIeFlash layout —
    // the forward graph goes to a simulated FusionIO ioDrive2.
    let scenario = Scenario::DramPcieFlash;
    let data = ScenarioData::build(&edges, scenario, ScenarioOptions::default())
        .expect("scenario construction");
    println!(
        "layout [{}]: forward graph {:.1} MiB on NVM, backward graph {:.1} MiB in DRAM, \
         status data {:.1} MiB in DRAM",
        scenario.label(),
        data.forward_bytes() as f64 / (1 << 20) as f64,
        data.backward_dram_bytes() as f64 / (1 << 20) as f64,
        data.status_bytes() as f64 / (1 << 20) as f64,
    );

    // Step 3: hybrid BFS with the paper's best flash thresholds
    // (α = 1e6, β = 1α).
    let root = select_roots(params.num_vertices(), 1, 7, |v| data.degree(v))[0];
    let policy = scenario.best_policy();
    println!("\nrunning {} from root {root} …", policy.label());
    let run = data.run(root, &policy, &BfsConfig::paper()).expect("BFS");

    println!("\n level  direction   frontier  discovered     scanned  nvm-edges");
    for l in &run.levels {
        println!(
            " {:>5}  {:<10} {:>9}  {:>10}  {:>10}  {:>9}",
            l.level,
            l.direction.to_string(),
            l.frontier_size,
            l.discovered,
            l.scanned_edges,
            l.nvm_edges
        );
    }
    println!(
        "\nvisited {} of {} vertices in {:?} → {:.3} MTEPS",
        run.visited,
        params.num_vertices(),
        run.elapsed,
        run.teps() / 1e6
    );
    if let Some(dev) = data.device() {
        let s = dev.snapshot();
        println!(
            "NVM device [{}]: {} requests, {:.1} KiB total, avgrq-sz {:.1} sectors",
            dev.profile().name,
            s.requests,
            s.bytes as f64 / 1024.0,
            s.avgrq_sz()
        );
    }

    // Step 4: validation.
    let report = validate_bfs_tree(&run.parent, root, &edges).expect("tree validates");
    println!(
        "\nvalidation OK: {} vertices, max BFS level {}",
        report.visited, report.max_level
    );
}
