//! Multi-node extension (the paper's §VIII future work): the hybrid BFS
//! on a simulated cluster whose nodes each apply the semi-external layout
//! locally — forward copy on per-node flash, backward copy in per-node
//! DRAM — communicating over a modeled interconnect.
//!
//! ```sh
//! cargo run --release --example distributed [scale] [nodes]
//! ```

use sembfs::dist::{dist_hybrid_bfs, ClusterSpec, DistGraph, NetworkProfile};
use sembfs::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(15);
    let nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let params = KroneckerParams::graph500(scale, 7);
    println!("== distributed hybrid BFS: SCALE {scale} on {nodes} simulated flash nodes ==\n");
    let edges = params.generate();

    let mut spec = ClusterSpec::flash_cluster(nodes);
    spec.network = NetworkProfile::infiniband_qdr();
    let graph = DistGraph::build(&edges, spec).expect("cluster build");

    for k in 0..nodes {
        println!(
            "node {k}: vertices {:?}, DRAM {:.1} MiB (backward), NVM {:.1} MiB (forward)",
            graph.partition().range(k),
            graph.node(k).dram_bytes() as f64 / (1 << 20) as f64,
            graph.node(k).nvm_bytes() as f64 / (1 << 20) as f64,
        );
    }

    let root = select_roots(params.num_vertices(), 1, 3, |v| graph.degree(v))[0];
    let policy = AlphaBetaPolicy::new(1e4, 1e5);
    let run = dist_hybrid_bfs(&graph, root, &policy).expect("bfs");
    validate_bfs_tree(&run.parent, root, &edges).expect("validate");

    println!("\n level  direction   frontier  discovered    comm KiB   sim ms");
    for l in &run.levels {
        println!(
            " {:>5}  {:<10} {:>9}  {:>10}  {:>10.1}  {:>7.3}",
            l.level,
            l.direction.to_string(),
            l.frontier_size,
            l.discovered,
            l.net_bytes as f64 / 1024.0,
            l.sim_time.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\nvisited {} vertices | simulated {:.2} MTEPS | traffic: {:.1} KiB in {} messages \
         + {} collectives",
        run.visited,
        run.sim_teps() / 1e6,
        run.net.bytes as f64 / 1024.0,
        run.net.messages,
        run.net.collectives,
    );
    for k in 0..nodes {
        if let Some(dev) = graph.node(k).device() {
            let s = dev.snapshot();
            println!(
                "node {k} device: {} requests, avgrq-sz {:.1} sectors",
                s.requests,
                s.avgrq_sz()
            );
        }
    }
}
