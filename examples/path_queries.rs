//! Point-to-point path queries against one shared semi-external graph.
//!
//! Builds a SCALE-14 Kronecker graph in each of the paper's three
//! scenarios, stands up a [`QueryEngine`] over it, and serves a small
//! mixed batch — shortest paths (validated against the serial reference
//! BFS), reachability probes, and a neighborhood census — then prints the
//! engine's aggregate report.
//!
//! Run with: `cargo run --release --example path_queries`

use std::sync::Arc;

use sembfs::prelude::*;
use sembfs::semext::{retry_blocking, RetryPolicy};

/// Submit through the shared capped-backoff helper: a momentarily full
/// queue (`Overloaded`) is retried with jittered exponential backoff
/// instead of failing the example outright.
fn run_with_backoff(
    engine: &QueryEngine,
    query: Query,
    seed: u64,
) -> Result<sembfs::query::Response, QueryError> {
    retry_blocking(
        RetryPolicy::default(),
        seed,
        |e| matches!(e, QueryError::Overloaded { .. }),
        || engine.run(query),
    )
}

fn main() {
    let scale = 14;
    let params = KroneckerParams::graph500(scale, 7);
    let edges = params.generate();

    for scenario in Scenario::ALL {
        let opts = ScenarioOptions {
            delay_mode: DelayMode::Throttled,
            sort_neighbors: true,
            // NVM scenarios: an 8 MiB page cache shared by all workers.
            page_cache_bytes: scenario.device_profile().map(|_| 8u64 << 20),
            ..Default::default()
        };
        let data = Arc::new(ScenarioData::build(&edges, scenario, opts).expect("build"));
        let engine = QueryEngine::new(
            data.clone(),
            EngineConfig {
                workers: 4,
                ..Default::default()
            },
        );
        println!("=== {} ===", scenario.label());

        // Degree-picked endpoint pairs, like the Graph500 root selector.
        let picks = select_roots(params.num_vertices(), 6, 7, |v| data.degree(v));
        for pair in picks.chunks(2) {
            let (src, dst) = (pair[0], pair[1]);
            let resp = run_with_backoff(&engine, Query::ShortestPath { src, dst }, src as u64)
                .expect("path query");
            match resp.result {
                QueryResult::Path { distance, vertices } => {
                    // Validate against the serial reference BFS.
                    let reference = sembfs::core::reference_bfs(data.csr(), src);
                    let levels = sembfs::graph500::validate::compute_levels(&reference.parent, src)
                        .expect("valid tree");
                    assert_eq!(levels[dst as usize], distance, "distance mismatch");
                    println!(
                        "  path {src} → {dst}: {distance} hops {vertices:?} ({:?}, validated)",
                        resp.latency
                    );
                }
                QueryResult::NoPath => println!("  path {src} → {dst}: unreachable"),
                other => unreachable!("{other:?}"),
            }
            let resp =
                run_with_backoff(&engine, Query::Reachable { src: dst, dst: src }, dst as u64)
                    .expect("reachability query");
            println!("  reachable {dst} → {src}: {:?}", resp.result);
        }
        let resp = run_with_backoff(
            &engine,
            Query::Neighborhood {
                v: picks[0],
                depth: 3,
            },
            0,
        )
        .expect("neighborhood query");
        if let QueryResult::Neighborhood { counts } = resp.result {
            println!("  neighborhood of {}: ring sizes {counts:?}", picks[0]);
        }

        println!("{}\n", engine.stats().report());
    }
}
