//! External-memory pipeline: the edge list itself offloaded to (simulated)
//! NVM, graphs constructed by streaming it back, validation reading it
//! from the device — the full §V-A data flow.

use std::sync::Arc;

use sembfs::prelude::*;
use sembfs_graph500::edge_list::{generate_edge_file, EdgeList, ExtEdgeList};
use sembfs_semext::{FileBackend, NvmStore};

#[test]
fn edge_list_on_device_runs_the_whole_pipeline() {
    let params = KroneckerParams::graph500(11, 202);
    let dir = TempDir::new("ext-pipeline").unwrap();
    let path = dir.path().join("edges.bin");
    let m = generate_edge_file(&params, &path, 1 << 14).unwrap();
    assert_eq!(m, params.num_edges());

    // Edge list lives on its own device, like the paper isolates the edge
    // list from the CSR files (§VI-D).
    let edge_dev = Device::new(DeviceProfile::intel_ssd_320(), DelayMode::Accounting);
    let ext = ExtEdgeList::new(
        NvmStore::new(FileBackend::open(&path).unwrap(), edge_dev.clone()),
        params.num_vertices(),
    )
    .unwrap();

    // Step 2 streams the device-resident list.
    let data = ScenarioData::build(
        &ext,
        Scenario::DramPcieFlash,
        ScenarioOptions {
            topology: Topology::new(2, 2),
            ..Default::default()
        },
    )
    .unwrap();
    let construction_reqs = edge_dev.snapshot().requests;
    assert!(
        construction_reqs > 0,
        "construction must stream the edge list"
    );

    // Step 3 + 4.
    let root = select_roots(params.num_vertices(), 1, 5, |v| data.degree(v))[0];
    let run = data
        .run(
            root,
            &Scenario::DramPcieFlash.best_policy(),
            &BfsConfig::paper(),
        )
        .unwrap();
    let report = validate_bfs_tree(&run.parent, root, &ext).unwrap();
    assert_eq!(report.visited, run.visited);
    // Validation streamed the edge list again.
    assert!(edge_dev.snapshot().requests > construction_reqs);
}

#[test]
fn external_and_memory_edge_lists_build_identical_graphs() {
    let params = KroneckerParams::graph500(10, 44);
    let mem = params.generate();

    let dir = TempDir::new("ext-eq").unwrap();
    let path = dir.path().join("edges.bin");
    generate_edge_file(&params, &path, 1000).unwrap();
    let ext = ExtEdgeList::open(&path, params.num_vertices()).unwrap();
    assert_eq!(ext.num_edges(), mem.num_edges());

    let a = sembfs_csr::build_csr(&mem, Default::default()).unwrap();
    let b = sembfs_csr::build_csr(&ext, Default::default()).unwrap();
    assert_eq!(a.index(), b.index());
    // Value multisets per vertex must agree (scatter order may differ).
    for v in 0..a.num_vertices() as u32 {
        let mut x = a.neighbors(v).to_vec();
        let mut y = b.neighbors(v).to_vec();
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y, "vertex {v}");
    }
}

#[test]
fn forward_graph_files_survive_reopen() {
    // The offloaded forward graph is plain files: a second scenario built
    // over the same directory must read identical data.
    let edges = KroneckerParams::graph500(9, 13).generate();
    let dir = TempDir::new("reopen").unwrap();
    let opts = ScenarioOptions {
        topology: Topology::new(2, 1),
        data_dir: Some(dir.path().join("nvm")),
        ..Default::default()
    };
    let data1 = ScenarioData::build(&edges, Scenario::DramSsd, opts.clone()).unwrap();
    let root = select_roots(data1.csr().num_vertices(), 1, 3, |v| data1.degree(v))[0];
    let run1 = data1
        .run(root, &Scenario::DramSsd.best_policy(), &BfsConfig::paper())
        .unwrap();
    drop(data1);

    let data2 = ScenarioData::build(&edges, Scenario::DramSsd, opts).unwrap();
    let run2 = data2
        .run(root, &Scenario::DramSsd.best_policy(), &BfsConfig::paper())
        .unwrap();
    assert_eq!(run1.parent.len(), run2.parent.len());
    assert_eq!(run1.visited, run2.visited);
    let l1 = sembfs_graph500::validate::compute_levels(&run1.parent, root).unwrap();
    let l2 = sembfs_graph500::validate::compute_levels(&run2.parent, root).unwrap();
    assert_eq!(l1, l2);
}

#[test]
fn device_stats_reflect_merge_limit() {
    // Same BFS, two merge limits: the smaller limit must issue at least as
    // many requests with smaller average size.
    let edges = KroneckerParams::graph500(10, 66).generate();
    let run_with_merge = |merge: usize| -> (u64, f64) {
        let opts = ScenarioOptions {
            topology: Topology::new(2, 1),
            ..Default::default()
        };
        let data = ScenarioData::build(&edges, Scenario::DramPcieFlash, opts).unwrap();
        // Replace the reader via config to honor the custom merge limit.
        let root = select_roots(data.csr().num_vertices(), 1, 9, |v| data.degree(v))[0];
        let cfg = BfsConfig::paper().with_reader(sembfs_semext::ChunkedReader::new(merge));
        let run = data
            .run(root, &FixedPolicy(Direction::TopDown), &cfg)
            .unwrap();
        assert!(run.visited > 1);
        let snap = data.device().unwrap().snapshot();
        (snap.requests, snap.avgrq_sz())
    };
    let (req_small, rq_small) = run_with_merge(4096);
    let (req_big, rq_big) = run_with_merge(64 * 1024);
    assert!(req_small >= req_big);
    assert!(rq_small <= rq_big + 1e-9);
    // Unmerged requests can never exceed 8 sectors.
    assert!(rq_small <= 8.0);
}

#[test]
fn shared_device_sums_forward_and_backward_tail_traffic() {
    let edges = KroneckerParams::graph500(10, 91).generate();
    let data = ScenarioData::build(
        &edges,
        Scenario::DramSsd,
        ScenarioOptions {
            topology: Topology::new(2, 1),
            backward_offload_k: Some(2),
            ..Default::default()
        },
    )
    .unwrap();
    let dev: &Arc<Device> = data.device().unwrap();
    let root = select_roots(data.csr().num_vertices(), 1, 11, |v| data.degree(v))[0];
    let run = data
        .run(root, &Scenario::DramSsd.best_policy(), &BfsConfig::paper())
        .unwrap();
    // Both sources of NVM traffic must appear on the single device: the
    // top-down forward reads and the bottom-up tail spills.
    assert!(
        run.levels.iter().any(|l| l.nvm_edges > 0),
        "tail spills expected"
    );
    assert!(dev.snapshot().requests > 0);
    assert!(dev.snapshot().bytes > 0);
}
