//! Failure injection: corrupted BFS outputs must be rejected by the
//! Graph500 validator (Step 4 is adversarial — it assumes the kernel may
//! be wrong), and corrupted *storage* must be rejected by the read path's
//! page checksums — a torn page can fail the run, but it can never leak
//! into a wrong-but-valid BFS tree.

use sembfs::prelude::*;
use sembfs_graph500::validate::ValidationError;

/// A correct BFS tree on a real Kronecker instance to corrupt.
fn correct_run() -> (MemEdgeList, VertexId, Vec<VertexId>) {
    let edges = KroneckerParams::graph500(10, 31).generate();
    let data = ScenarioData::build(
        &edges,
        Scenario::DramOnly,
        ScenarioOptions {
            topology: Topology::new(2, 2),
            ..Default::default()
        },
    )
    .unwrap();
    let root = select_roots(data.csr().num_vertices(), 1, 13, |v| data.degree(v))[0];
    let run = data
        .run(root, &Scenario::DramOnly.best_policy(), &BfsConfig::paper())
        .unwrap();
    validate_bfs_tree(&run.parent, root, &edges).expect("uncorrupted tree is valid");
    (edges, root, run.parent)
}

#[test]
fn unmarking_root_parent_fails() {
    let (edges, root, mut parent) = correct_run();
    parent[root as usize] = INVALID_PARENT;
    assert!(matches!(
        validate_bfs_tree(&parent, root, &edges),
        Err(ValidationError::RootParentMismatch { .. })
    ));
}

#[test]
fn dropping_a_visited_vertex_fails() {
    let (edges, root, mut parent) = correct_run();
    // Remove some visited non-root vertex from the tree.
    let victim = (0..parent.len())
        .find(|&v| parent[v] != INVALID_PARENT && v as u32 != root)
        .unwrap();
    parent[victim] = INVALID_PARENT;
    let err = validate_bfs_tree(&parent, root, &edges).unwrap_err();
    assert!(
        matches!(
            err,
            ValidationError::EdgeCrossesFrontier { .. } | ValidationError::ParentUnvisited { .. }
        ),
        "got {err:?}"
    );
}

#[test]
fn rewiring_to_non_neighbor_fails() {
    let (edges, root, mut parent) = correct_run();
    // Point a visited vertex at a vertex that is (almost surely) not its
    // neighbor but is visited: search for such a pair.
    let adjacency: std::collections::HashSet<(u32, u32)> = edges
        .as_slice()
        .iter()
        .flat_map(|&(u, v)| [(u, v), (v, u)])
        .collect();
    let levels = sembfs_graph500::validate::compute_levels(&parent, root).unwrap();
    let mut injected = None;
    'outer: for v in 0..parent.len() as u32 {
        if v == root || parent[v as usize] == INVALID_PARENT {
            continue;
        }
        for cand in 0..parent.len() as u32 {
            if cand != v
                && parent[cand as usize] != INVALID_PARENT
                && levels[cand as usize] + 1 == levels[v as usize]
                && !adjacency.contains(&(cand, v))
            {
                parent[v as usize] = cand;
                injected = Some(v);
                break 'outer;
            }
        }
    }
    let v = injected.expect("found a rewiring candidate");
    assert_eq!(
        validate_bfs_tree(&parent, root, &edges),
        Err(ValidationError::PhantomTreeEdge { v })
    );
}

#[test]
fn creating_a_cycle_fails() {
    let (edges, root, mut parent) = correct_run();
    // Find a parent-child pair (p, v) with p != root and swap: p's parent
    // becomes v — a 2-cycle detached from the root.
    let (p, v) = (0..parent.len() as u32)
        .filter_map(|v| {
            let p = parent[v as usize];
            (p != INVALID_PARENT && v != root && p != root && p != v).then_some((p, v))
        })
        .next()
        .unwrap();
    parent[p as usize] = v;
    let err = validate_bfs_tree(&parent, root, &edges).unwrap_err();
    assert!(
        matches!(
            err,
            ValidationError::Cycle { .. } | ValidationError::LevelGap { .. }
        ),
        "got {err:?}"
    );
}

#[test]
fn level_skip_fails() {
    let (edges, root, mut parent) = correct_run();
    let levels = sembfs_graph500::validate::compute_levels(&parent, root).unwrap();
    // Reparent a level-2+ vertex onto a deeper vertex in its own subtree?
    // Simpler: attach a level-1 vertex under a level-2 vertex that is its
    // neighbor — then some graph edge (root, v) spans 2 levels.
    let adjacency: std::collections::HashSet<(u32, u32)> = edges
        .as_slice()
        .iter()
        .flat_map(|&(u, v)| [(u, v), (v, u)])
        .collect();
    let mut done = false;
    'outer: for v in 0..parent.len() as u32 {
        if levels[v as usize] != 1 {
            continue;
        }
        for w in 0..parent.len() as u32 {
            if levels[w as usize] == 2 && adjacency.contains(&(w, v)) {
                parent[v as usize] = w; // v now "level 3" via w
                done = true;
                break 'outer;
            }
        }
    }
    assert!(done, "graph has a level-1 vertex adjacent to level 2");
    assert!(validate_bfs_tree(&parent, root, &edges).is_err());
}

#[test]
fn torn_page_behind_the_store_is_a_checksum_error_never_a_wrong_tree() {
    // Build on an explicit data dir so the offloaded CSR files can be
    // corrupted *behind* the store, after checksum sealing — the model of
    // a torn write or silent media corruption at rest.
    let edges = KroneckerParams::graph500(10, 31).generate();
    let dir = sembfs::semext::TempDir::new("torn-page").unwrap();
    let build = || {
        ScenarioData::build(
            &edges,
            Scenario::DramPcieFlash,
            ScenarioOptions {
                topology: Topology::new(2, 2),
                data_dir: Some(dir.path().to_path_buf()),
                sort_neighbors: true,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let data = build();
    let root = select_roots(data.csr().num_vertices(), 1, 13, |v| data.degree(v))[0];
    let policy = FixedPolicy(Direction::TopDown);
    let clean = data.run(root, &policy, &BfsConfig::paper()).unwrap();
    validate_bfs_tree(&clean.parent, root, &edges).unwrap();
    drop(data);

    // Rebuild (restoring + resealing the files), then tear one page of the
    // domain-0 adjacency values: flip a byte in the middle of page 2.
    let data = build();
    let victim = dir.path().join("fg-0.values");
    let mut bytes = std::fs::read(&victim).unwrap();
    assert!(bytes.len() > 3 * 4096, "values file spans several pages");
    let torn = 2 * 4096 + 123;
    bytes[torn] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();

    // A full adjacency scan must trip the per-page checksum — the torn
    // bytes are caught at fill, not served.
    let mut ctx = data.neighbor_ctx();
    let mut scan = Ok(());
    for v in 0..data.num_vertices() as u32 {
        let r = data.for_each_forward_neighbor(v, &mut ctx, &mut |_| {});
        if r.is_err() {
            scan = r;
            break;
        }
    }
    let err = scan.expect_err("the torn page must be detected by a full scan");
    assert!(
        matches!(err, sembfs::semext::Error::ChecksumMismatch { page: 2, .. }),
        "got {err:?}"
    );

    // BFS over the torn store: allowed to fail (typed), never allowed to
    // silently produce a different tree.
    match data.run(root, &policy, &BfsConfig::paper()) {
        Err(e) => assert!(
            matches!(e, sembfs::semext::Error::ChecksumMismatch { .. }),
            "got {e:?}"
        ),
        Ok(run) => {
            validate_bfs_tree(&run.parent, root, &edges).unwrap();
            assert_eq!(
                run.parent, clean.parent,
                "a run that avoided the torn page must match the clean tree"
            );
        }
    }
}

#[test]
fn swapping_two_subtree_parents_is_caught_or_valid() {
    // Swapping parents of two same-level vertices keeps levels intact and
    // both tree edges real only if the crossed edges exist; otherwise the
    // validator must complain. Either way it must not panic.
    let (edges, root, mut parent) = correct_run();
    let levels = sembfs_graph500::validate::compute_levels(&parent, root).unwrap();
    let same_level: Vec<u32> = (0..parent.len() as u32)
        .filter(|&v| levels[v as usize] == 2)
        .take(2)
        .collect();
    if same_level.len() == 2 {
        let [a, b] = [same_level[0], same_level[1]];
        parent.swap(a as usize, b as usize);
        let _ = validate_bfs_tree(&parent, root, &edges);
    }
}
