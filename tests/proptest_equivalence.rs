//! Property-based end-to-end equivalence: for *arbitrary* graphs, roots,
//! and switching parameters, every searcher in the workspace must produce
//! the reference BFS's level assignment and a tree that validates against
//! the edge list.

use proptest::prelude::*;
use sembfs::dist::{dist_hybrid_bfs, ClusterSpec, DistGraph};
use sembfs::prelude::*;
use sembfs_csr::{build_csr, BuildOptions};
use sembfs_graph500::validate::compute_levels;

fn arb_graph() -> impl Strategy<Value = (MemEdgeList, u32)> {
    (
        2u64..60,
        proptest::collection::vec((0u32..60, 0u32..60), 1..150),
    )
        .prop_map(|(n, raw)| {
            let n = n.max(raw.iter().flat_map(|&(u, v)| [u, v]).max().unwrap_or(0) as u64 + 1);
            let edges: Vec<(u32, u32)> = raw;
            // Root: an endpoint of the first edge (guaranteed degree ≥ 1).
            let root = edges[0].0;
            (MemEdgeList::new(n, edges), root)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Hybrid BFS equals the serial reference for any graph, any α/β, any
    /// scenario, and validates.
    #[test]
    fn hybrid_always_matches_reference(
        (edges, root) in arb_graph(),
        alpha_exp in 0u32..7,
        beta_exp in 0u32..7,
        scenario_pick in 0usize..3,
    ) {
        let csr = build_csr(&edges, BuildOptions::default()).unwrap();
        let expect = compute_levels(&reference_bfs(&csr, root).parent, root).unwrap();

        let scenario = Scenario::ALL[scenario_pick];
        let data = ScenarioData::build(
            &edges,
            scenario,
            ScenarioOptions { topology: Topology::new(3, 1), ..Default::default() },
        )
        .unwrap();
        let policy = AlphaBetaPolicy::new(
            10f64.powi(alpha_exp as i32),
            10f64.powi(beta_exp as i32),
        );
        let run = data.run(root, &policy, &BfsConfig::paper()).unwrap();
        let got = compute_levels(&run.parent, root).unwrap();
        prop_assert_eq!(got, expect);
        validate_bfs_tree(&run.parent, root, &edges).unwrap();
    }

    /// The distributed searcher equals the reference for any node count.
    #[test]
    fn dist_always_matches_reference(
        (edges, root) in arb_graph(),
        nodes in 1usize..6,
        alpha_exp in 0u32..6,
    ) {
        let csr = build_csr(&edges, BuildOptions::default()).unwrap();
        let expect = compute_levels(&reference_bfs(&csr, root).parent, root).unwrap();

        let graph = DistGraph::build(&edges, ClusterSpec::dram(nodes)).unwrap();
        let policy = AlphaBetaPolicy::new(10f64.powi(alpha_exp as i32), 100.0);
        let run = dist_hybrid_bfs(&graph, root, &policy).unwrap();
        let got = compute_levels(&run.parent, root).unwrap();
        prop_assert_eq!(got, expect);
        validate_bfs_tree(&run.parent, root, &edges).unwrap();
    }

    /// Aggregated (libaio) and synchronous I/O produce identical trees,
    /// with and without the page-cache front.
    #[test]
    fn aggregation_does_not_change_results(
        (edges, root) in arb_graph(),
        cache in proptest::option::of(1u64..(1 << 20)),
    ) {
        let data = ScenarioData::build(
            &edges,
            Scenario::DramPcieFlash,
            ScenarioOptions {
                topology: Topology::new(2, 1),
                page_cache_bytes: cache,
                ..Default::default()
            },
        )
        .unwrap();
        let policy = AlphaBetaPolicy::new(1e3, 1e3);
        let sync = data.run(root, &policy, &BfsConfig::paper()).unwrap();
        let agg = data
            .run(root, &policy, &BfsConfig::paper().with_aggregation())
            .unwrap();
        let a = compute_levels(&sync.parent, root).unwrap();
        let b = compute_levels(&agg.parent, root).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(sync.visited, agg.visited);
    }
}
