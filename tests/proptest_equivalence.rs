//! Property-based end-to-end equivalence: for *arbitrary* graphs, roots,
//! and switching parameters, every searcher in the workspace must produce
//! the reference BFS's level assignment and a tree that validates against
//! the edge list.

use proptest::prelude::*;
use sembfs::dist::{dist_hybrid_bfs, ClusterSpec, DistGraph};
use sembfs::prelude::*;
use sembfs_core::policy::PolicyCtx;
use sembfs_core::AccessPath;
use sembfs_csr::{build_csr, BuildOptions};
use sembfs_graph500::validate::compute_levels;
use sembfs_semext::{DramBackend, ReadAt, ShardedCachedStore, ShardedPageCache};

fn arb_graph() -> impl Strategy<Value = (MemEdgeList, u32)> {
    (
        2u64..60,
        proptest::collection::vec((0u32..60, 0u32..60), 1..150),
    )
        .prop_map(|(n, raw)| {
            let n = n.max(raw.iter().flat_map(|&(u, v)| [u, v]).max().unwrap_or(0) as u64 + 1);
            let edges: Vec<(u32, u32)> = raw;
            // Root: an endpoint of the first edge (guaranteed degree ≥ 1).
            let root = edges[0].0;
            (MemEdgeList::new(n, edges), root)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Hybrid BFS equals the serial reference for any graph, any α/β, any
    /// scenario, and validates.
    #[test]
    fn hybrid_always_matches_reference(
        (edges, root) in arb_graph(),
        alpha_exp in 0u32..7,
        beta_exp in 0u32..7,
        scenario_pick in 0usize..3,
    ) {
        let csr = build_csr(&edges, BuildOptions::default()).unwrap();
        let expect = compute_levels(&reference_bfs(&csr, root).parent, root).unwrap();

        let scenario = Scenario::ALL[scenario_pick];
        let data = ScenarioData::build(
            &edges,
            scenario,
            ScenarioOptions { topology: Topology::new(3, 1), ..Default::default() },
        )
        .unwrap();
        let policy = AlphaBetaPolicy::new(
            10f64.powi(alpha_exp as i32),
            10f64.powi(beta_exp as i32),
        );
        let run = data.run(root, &policy, &BfsConfig::paper()).unwrap();
        let got = compute_levels(&run.parent, root).unwrap();
        prop_assert_eq!(got, expect);
        validate_bfs_tree(&run.parent, root, &edges).unwrap();
    }

    /// The parallel kernels (ISSUE 5) are deterministic for any graph,
    /// any α/β, and any worker count: the parent tree is *bit-identical*
    /// to the canonical serial `reference_bfs` (min-parent tie-break),
    /// the tree validates, and the distances-only entry point agrees on
    /// every level.
    #[test]
    fn parallel_always_matches_reference_bit_exactly(
        (edges, root) in arb_graph(),
        alpha_exp in 0u32..7,
        beta_exp in 0u32..7,
        scenario_pick in 0usize..3,
        threads in 1usize..9,
    ) {
        let csr = build_csr(&edges, BuildOptions::default()).unwrap();
        let want = reference_bfs(&csr, root).parent;
        let expect_levels = compute_levels(&want, root).unwrap();

        let scenario = Scenario::ALL[scenario_pick];
        let data = ScenarioData::build(
            &edges,
            scenario,
            ScenarioOptions { topology: Topology::new(3, 1), ..Default::default() },
        )
        .unwrap();
        let policy = AlphaBetaPolicy::new(
            10f64.powi(alpha_exp as i32),
            10f64.powi(beta_exp as i32),
        );
        let cfg = BfsConfig::paper().with_threads(threads);
        let run = data.run(root, &policy, &cfg).unwrap();
        prop_assert_eq!(&run.parent, &want, "threads {}", threads);
        let report = validate_bfs_tree(&run.parent, root, &edges).unwrap();
        prop_assert_eq!(&report.levels, &expect_levels);

        let dist = data.run_distances(root, &policy, &cfg).unwrap();
        prop_assert_eq!(&dist.levels, &expect_levels);
        prop_assert_eq!(dist.visited, run.visited);
        prop_assert_eq!(dist.max_level, report.max_level);
    }

    /// The distributed searcher equals the reference for any node count.
    #[test]
    fn dist_always_matches_reference(
        (edges, root) in arb_graph(),
        nodes in 1usize..6,
        alpha_exp in 0u32..6,
    ) {
        let csr = build_csr(&edges, BuildOptions::default()).unwrap();
        let expect = compute_levels(&reference_bfs(&csr, root).parent, root).unwrap();

        let graph = DistGraph::build(&edges, ClusterSpec::dram(nodes)).unwrap();
        let policy = AlphaBetaPolicy::new(10f64.powi(alpha_exp as i32), 100.0);
        let run = dist_hybrid_bfs(&graph, root, &policy).unwrap();
        let got = compute_levels(&run.parent, root).unwrap();
        prop_assert_eq!(got, expect);
        validate_bfs_tree(&run.parent, root, &edges).unwrap();
    }

    /// Any *recoverable* fault plan — transient EIO, checksummed
    /// corruption, stalls — leaves the BFS output bit-identical to the
    /// fault-free run, on every storage layout. Recoverability is
    /// probabilistic: a run that exhausts its retry budget fails *typed*
    /// (`RetriesExhausted`/`ChecksumMismatch`, discarded here), it never
    /// silently diverges.
    #[test]
    fn recoverable_faults_leave_bfs_bit_identical(
        (edges, root) in arb_graph(),
        fault_seed in any::<u64>(),
        eio in 0u32..16,
        corrupt in 0u32..10,
        stall in 0u32..6,
        scenario_pick in 1usize..3,
        cache in proptest::option::of(1u64..(1 << 18)),
        mmap in any::<bool>(),
    ) {
        let scenario = Scenario::ALL[scenario_pick];
        let opts = |fault_plan| ScenarioOptions {
            topology: Topology::new(2, 1),
            page_cache_bytes: cache,
            access_path: if mmap { AccessPath::Mmap } else { AccessPath::Pread },
            fault_plan,
            ..Default::default()
        };
        let policy = AlphaBetaPolicy::new(1e3, 1e3);
        let clean = ScenarioData::build(&edges, scenario, opts(None))
            .unwrap()
            .run(root, &policy, &BfsConfig::paper())
            .unwrap();

        let spec = format!(
            "seed={fault_seed},eio={},corrupt={},stall={},stall_us=40,retries=12",
            eio as f64 / 100.0,
            corrupt as f64 / 100.0,
            stall as f64 / 100.0,
        );
        let plan = sembfs::semext::FaultPlan::parse(&spec).unwrap();
        let data = ScenarioData::build(&edges, scenario, opts(Some(plan))).unwrap();
        match data.run(root, &policy, &BfsConfig::paper()) {
            Ok(run) => {
                prop_assert_eq!(&run.parent, &clean.parent, "spec {}", spec);
                prop_assert_eq!(run.visited, clean.visited);
                validate_bfs_tree(&run.parent, root, &edges).unwrap();
            }
            // Retry budget exhausted — legal, typed, and rare at these
            // rates. The case carries no equivalence information.
            Err(sembfs::semext::Error::RetriesExhausted { .. })
            | Err(sembfs::semext::Error::ChecksumMismatch { .. }) => {
                prop_assume!(false);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// Aggregated (libaio) and synchronous I/O produce identical trees,
    /// with and without the page-cache front.
    #[test]
    fn aggregation_does_not_change_results(
        (edges, root) in arb_graph(),
        cache in proptest::option::of(1u64..(1 << 20)),
    ) {
        let data = ScenarioData::build(
            &edges,
            Scenario::DramPcieFlash,
            ScenarioOptions {
                topology: Topology::new(2, 1),
                page_cache_bytes: cache,
                ..Default::default()
            },
        )
        .unwrap();
        let policy = AlphaBetaPolicy::new(1e3, 1e3);
        let sync = data.run(root, &policy, &BfsConfig::paper()).unwrap();
        let agg = data
            .run(root, &policy, &BfsConfig::paper().with_aggregation())
            .unwrap();
        let a = compute_levels(&sync.parent, root).unwrap();
        let b = compute_levels(&agg.parent, root).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(sync.visited, agg.visited);
    }
}

/// Replays a pre-baked per-level direction schedule (cycling when the
/// search outlives it), forcing TD→BU→TD flips at levels no threshold
/// policy would pick — the switching machinery must stay correct under
/// *any* schedule, not just plausible ones.
struct SchedulePolicy(Vec<Direction>);

impl DirectionPolicy for SchedulePolicy {
    fn decide(&self, ctx: &PolicyCtx) -> Direction {
        self.0[(ctx.level as usize - 1) % self.0.len()]
    }

    fn label(&self) -> String {
        "scheduled".to_string()
    }
}

/// Deterministic byte/offset stream for the cache property (the shim
/// proptest has no `Vec<u8>` strategy; a splitmix walk over the case's
/// seed keeps every run reproducible).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any forced direction schedule — including strict alternation that
    /// switches at *every* level — produces the reference levels and a
    /// valid parent tree on small Kronecker graphs, in every scenario,
    /// with the sharded page cache in front of the external stores.
    #[test]
    fn forced_direction_switches_match_reference(
        scale in 3u32..7,
        seed in any::<u64>(),
        strict in any::<bool>(),
        start_bu in any::<bool>(),
        bits in proptest::collection::vec(any::<bool>(), 1..10),
        scenario_pick in 0usize..3,
        shards in 1usize..5,
        readahead in 0usize..3,
    ) {
        let edges = KroneckerParams::graph500(scale, seed).generate();
        let root = edges.as_slice()[0].0;

        let csr = build_csr(&edges, BuildOptions::default()).unwrap();
        let expect = compute_levels(&reference_bfs(&csr, root).parent, root).unwrap();

        let schedule: Vec<Direction> = if strict {
            // TD→BU→TD at every feasible level (optionally BU first).
            (0..12)
                .map(|i| {
                    if (i + start_bu as usize).is_multiple_of(2) {
                        Direction::TopDown
                    } else {
                        Direction::BottomUp
                    }
                })
                .collect()
        } else {
            bits.iter()
                .map(|&b| if b { Direction::BottomUp } else { Direction::TopDown })
                .collect()
        };

        let data = ScenarioData::build(
            &edges,
            Scenario::ALL[scenario_pick],
            ScenarioOptions {
                topology: Topology::new(2, 1),
                page_cache_bytes: Some(8 * 4096),
                cache_shards: Some(shards),
                cache_readahead_pages: readahead,
                ..Default::default()
            },
        )
        .unwrap();
        let run = data
            .run(root, &SchedulePolicy(schedule), &BfsConfig::paper())
            .unwrap();
        let got = compute_levels(&run.parent, root).unwrap();
        prop_assert_eq!(got, expect);
        validate_bfs_tree(&run.parent, root, &edges).unwrap();
    }

    /// Reads through an undersized sharded cache are byte-identical to
    /// the backing store under concurrent access, for any shard count,
    /// capacity, and readahead window.
    #[test]
    fn sharded_cache_reads_match_backend(
        len in 1usize..(1 << 16),
        shards in 1usize..9,
        cap_pages in 1u64..32,
        readahead in 0usize..5,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let data: Vec<u8> = (0..len).map(|_| (mix(&mut state) >> 56) as u8).collect();

        let device = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        let cache = ShardedPageCache::with_shards(cap_pages * 4096, shards);
        cache.set_readahead_pages(readahead);
        let store = ShardedCachedStore::new(DramBackend::new(data.clone()), device, cache.clone());

        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = &store;
                let data = &data;
                scope.spawn(move || {
                    let mut state = seed ^ t.wrapping_mul(0xA076_1D64_78BD_642F);
                    for _ in 0..32 {
                        let r = mix(&mut state);
                        let off = (r as usize) % data.len();
                        let max = (data.len() - off).min(3 * 4096);
                        let want = 1 + (r >> 40) as usize % max;
                        let mut buf = vec![0u8; want];
                        store.read_at(off as u64, &mut buf).unwrap();
                        assert_eq!(&buf[..], &data[off..off + want], "offset {off}");
                    }
                });
            }
        });

        // Every read was classified: demand accesses all counted, and the
        // cache never holds more than its budget.
        let (hits, misses) = cache.stats();
        prop_assert!(hits + misses > 0);
        prop_assert!(cache.resident_pages() as u64 <= cap_pages.max(1));
    }
}
