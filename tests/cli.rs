//! End-to-end tests of the `sembfs` command-line binary.

use std::process::Command;

fn sembfs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sembfs"))
}

#[test]
fn info_prints_table2_rows() {
    let out = sembfs().args(["info", "--scale", "10"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("SCALE 10: 1024 vertices, 16384 edges"),
        "{text}"
    );
    for key in ["forward graph", "backward graph", "status data", "total"] {
        assert!(text.contains(key), "missing {key} in:\n{text}");
    }
}

#[test]
fn bfs_reports_official_statistics() {
    let out = sembfs()
        .args([
            "bfs",
            "--scale",
            "10",
            "--scenario",
            "flash",
            "--roots",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("DRAM+PCIeFlash"), "{text}");
    assert!(text.contains("median_TEPS"), "{text}");
    assert!(text.contains("score (median):"), "{text}");
}

#[test]
fn generate_writes_a_loadable_edge_file() {
    let dir = sembfs_semext::TempDir::new("cli-gen").unwrap();
    let path = dir.path().join("edges.bin");
    let out = sembfs()
        .args(["generate", "--scale", "9", "--seed", "7", "--out"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    // 2^9 * 16 edges * 8 bytes.
    assert_eq!(std::fs::metadata(&path).unwrap().len(), 512 * 16 * 8);
    // And it matches in-memory generation.
    let ext = sembfs_graph500::ExtEdgeList::open(&path, 512).unwrap();
    let mem = sembfs_graph500::KroneckerParams::graph500(9, 7).generate();
    use sembfs_graph500::EdgeList;
    assert_eq!(ext.num_edges(), mem.num_edges());
}

#[test]
fn sweep_prints_the_grid() {
    let out = sembfs()
        .args(["sweep", "--scale", "9", "--roots", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("alpha"), "{text}");
    // Five α rows.
    assert!(text.matches("e2").count() + text.matches("1e2").count() > 0);
}

#[test]
fn query_validates_and_reports() {
    let out = sembfs()
        .args([
            "query",
            "--scale",
            "10",
            "--scenario",
            "flash",
            "--pairs",
            "2",
            "--workers",
            "2",
            "--cache-mb",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // Every pair is cross-checked against the reference BFS in-process.
    assert!(text.contains("validated"), "{text}");
    assert!(text.contains("completed"), "{text}");
    assert!(text.contains("p99"), "{text}");
}

#[test]
fn serve_sim_runs_the_closed_loop() {
    let out = sembfs()
        .args([
            "serve-sim",
            "--scale",
            "10",
            "--scenario",
            "ssd",
            "--clients",
            "3",
            "--workers",
            "2",
            "--requests",
            "10",
            "--cache-mb",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("DRAM+SSD"), "{text}");
    // 3 clients × 10 requests all complete.
    assert!(text.contains("completed 30 ("), "{text}");
}

#[test]
fn unknown_command_prints_usage() {
    let out = sembfs().arg("frobnicate").output().unwrap();
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage: sembfs"), "{err}");
}
