//! End-to-end Graph500 pipeline tests (all four benchmark steps) across
//! the three machine scenarios.

use sembfs::prelude::*;
use sembfs_graph500::driver::run_rounds;

fn options() -> ScenarioOptions {
    ScenarioOptions {
        topology: Topology::new(4, 2),
        ..Default::default()
    }
}

/// Step 1–4 for one scenario: generate, construct, BFS from several roots,
/// validate each round, and summarize TEPS.
fn full_pipeline(scenario: Scenario) {
    let spec = BenchmarkSpec::quick(12, 6, 2024);
    let edges = spec.kronecker().generate();
    let data = ScenarioData::build(&edges, scenario, options()).unwrap();
    assert_eq!(data.csr().num_vertices(), spec.num_vertices());

    let roots = select_roots(spec.num_vertices(), spec.num_roots, spec.seed, |v| {
        data.degree(v)
    });
    let policy = scenario.best_policy();
    let summary = run_rounds(&roots, &edges, |root| {
        let run = data.run(root, &policy, &BfsConfig::paper()).unwrap();
        (run.parent, run.teps_edges, run.elapsed)
    })
    .unwrap();

    assert_eq!(summary.outcomes.len(), 6);
    assert!(summary.median_teps() > 0.0);
    // A SCALE 12 Kronecker giant component holds most edges: every root
    // inside it must traverse a nontrivial share.
    assert!(summary.mean_traversed_edges() > spec.num_edges() as f64 * 0.5);
}

#[test]
fn dram_only_pipeline() {
    full_pipeline(Scenario::DramOnly);
}

#[test]
fn pcie_flash_pipeline() {
    full_pipeline(Scenario::DramPcieFlash);
}

#[test]
fn ssd_pipeline() {
    full_pipeline(Scenario::DramSsd);
}

#[test]
fn teps_stats_report_shape() {
    let spec = BenchmarkSpec::quick(10, 4, 7);
    let edges = spec.kronecker().generate();
    let data = ScenarioData::build(&edges, Scenario::DramOnly, options()).unwrap();
    let roots = select_roots(spec.num_vertices(), 4, 7, |v| data.degree(v));
    let policy = Scenario::DramOnly.best_policy();
    let summary = run_rounds(&roots, &edges, |root| {
        let run = data.run(root, &policy, &BfsConfig::paper()).unwrap();
        (run.parent, run.teps_edges, run.elapsed)
    })
    .unwrap();
    let s = summary.teps_stats;
    assert!(s.min <= s.median && s.median <= s.max);
    assert!(s.harmonic_mean > 0.0);
    assert!(summary.teps_stats.to_report().contains("median_TEPS"));
}

#[test]
fn sizes_follow_table2_shape() {
    // Table II shape: forward > backward > status, and the NVM scenarios
    // hold exactly the forward graph on the device.
    let spec = BenchmarkSpec::quick(13, 1, 5);
    let edges = spec.kronecker().generate();
    let opts = options();
    let dram = ScenarioData::build(&edges, Scenario::DramOnly, opts.clone()).unwrap();
    let flash = ScenarioData::build(&edges, Scenario::DramPcieFlash, opts).unwrap();

    assert!(dram.forward_bytes() > dram.backward_dram_bytes());
    assert!(dram.backward_dram_bytes() > dram.status_bytes());
    assert_eq!(flash.nvm_bytes(), flash.forward_bytes());
    assert_eq!(flash.forward_bytes(), dram.forward_bytes());
    // Offloading removes the forward graph from DRAM: the flash scenario's
    // DRAM footprint is roughly the backward graph + status data.
    let dram_total = dram.forward_bytes() + dram.backward_dram_bytes() + dram.status_bytes();
    let flash_dram = flash.backward_dram_bytes() + flash.status_bytes();
    assert!(
        (flash_dram as f64) < 0.6 * dram_total as f64,
        "offload must cut DRAM roughly in half (paper: 88.3 → 48.2 GB)"
    );
}
