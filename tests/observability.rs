//! Integration tests for the observability layer: the trace pipeline
//! against a real hybrid BFS over the simulated NVM device.
//!
//! The tracer is a process-wide singleton, so every test serializes on
//! [`trace_lock`] and drains/resets before recording.

use std::sync::Mutex;

use sembfs::core::{
    AlphaBetaPolicy, BfsConfig, Direction, DirectionPolicy, FixedPolicy, PolicyCtx, Scenario,
    ScenarioData, ScenarioOptions,
};
use sembfs::graph500::{select_roots, KroneckerParams};
use sembfs::numa::Topology;
use sembfs::obs::{build_reports, Dir, Sample, TraceEvent};
use sembfs::semext::DelayMode;

fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn core_dir(d: Dir) -> Direction {
    match d {
        Dir::TopDown => Direction::TopDown,
        Dir::BottomUp => Direction::BottomUp,
    }
}

fn flash_scenario(scale: u32, delay_mode: DelayMode) -> (ScenarioData, u32) {
    let edges = KroneckerParams::graph500(scale, 7).generate();
    let opts = ScenarioOptions {
        topology: Topology::new(2, 2),
        delay_mode,
        ..Default::default()
    };
    let data = ScenarioData::build(&edges, Scenario::DramPcieFlash, opts).unwrap();
    let root = select_roots(data.csr().num_vertices(), 1, 3, |v| data.degree(v))[0];
    (data, root)
}

/// Record one traced run and hand back the drained samples.
fn trace_run(
    data: &ScenarioData,
    root: u32,
    policy: &dyn DirectionPolicy,
) -> (sembfs::core::BfsRun, Vec<Sample>) {
    let tracer = sembfs::obs::global();
    tracer.set_enabled(false);
    tracer.drain();
    data.align_trace_epoch();
    tracer.set_enabled(true);
    let run = data.run(root, policy, &BfsConfig::paper()).unwrap();
    tracer.set_enabled(false);
    let samples = tracer.drain();
    (run, samples)
}

/// Satellite 1: with the device epoch shared, a traced level's span must
/// fully contain the spans of the device requests it issued. Requires the
/// throttled device — accounting-mode completions live on a simulated
/// timeline that can outrun the wall clock.
#[test]
fn level_spans_contain_their_device_reads() {
    let _g = trace_lock();
    let (data, root) = flash_scenario(11, DelayMode::Throttled);
    // Top-down only: every level reads neighbor lists from the device.
    let (_, samples) = trace_run(&data, root, &FixedPolicy(Direction::TopDown));

    let levels: Vec<&Sample> = samples
        .iter()
        .filter(|s| matches!(s.event, TraceEvent::Level { .. }))
        .collect();
    let reads: Vec<&Sample> = samples
        .iter()
        .filter(|s| matches!(s.event, TraceEvent::NvmRead { .. }))
        .collect();
    assert!(!levels.is_empty(), "no level spans recorded");
    assert!(
        !reads.is_empty(),
        "top-down flash BFS issued no device reads"
    );

    for r in &reads {
        let containing = levels
            .iter()
            .find(|l| l.start_ns <= r.start_ns && r.end_ns <= l.end_ns);
        assert!(
            containing.is_some(),
            "device read [{}, {}] outside every level span",
            r.start_ns,
            r.end_ns
        );
    }
}

/// Satellite 3: the recorded switch decisions carry everything the policy
/// consumed, so re-running the policy over them must reproduce the same
/// direction sequence the run actually took.
#[test]
fn switch_decisions_replay_to_the_same_directions() {
    let _g = trace_lock();
    let (data, root) = flash_scenario(12, DelayMode::Accounting);
    // dram_only_best switches eagerly enough to flip twice at this scale.
    let policy = AlphaBetaPolicy::dram_only_best();
    let (run, samples) = trace_run(&data, root, &policy);

    let mut switches: Vec<_> = samples
        .iter()
        .filter_map(|s| match s.event {
            TraceEvent::Switch {
                level,
                from,
                to,
                frontier,
                prev_frontier,
                n_all,
                unvisited,
                alpha,
                beta,
            } => Some((
                level,
                from,
                to,
                frontier,
                prev_frontier,
                n_all,
                unvisited,
                alpha,
                beta,
            )),
            _ => None,
        })
        .collect();
    switches.sort_by_key(|s| s.0);
    assert_eq!(
        switches.len(),
        run.levels.len(),
        "one decision per executed level"
    );
    assert!(
        switches.iter().any(|s| s.1 != s.2),
        "expected at least one actual direction flip"
    );

    for (level, from, to, frontier, prev_frontier, n_all, unvisited, alpha, beta) in switches {
        let replayed = AlphaBetaPolicy::new(alpha, beta).decide(&PolicyCtx {
            current: core_dir(from),
            level,
            n_all,
            frontier,
            prev_frontier,
            frontier_edges: None,
            unvisited,
            event: None,
        });
        assert_eq!(
            replayed,
            core_dir(to),
            "level {level}: replayed decision diverged from the recorded one"
        );
        // The executed level must match the recorded decision too.
        let executed = run.levels[(level - 1) as usize].direction;
        assert_eq!(executed, core_dir(to));
    }
}

/// Acceptance: `build_reports` over a drained trace reproduces the
/// per-level direction/frontier/discovered/edge counts of the in-process
/// `LevelStats`, and the run header matches the `BfsRun`.
#[test]
fn report_reproduces_in_process_level_stats() {
    let _g = trace_lock();
    let (data, root) = flash_scenario(12, DelayMode::Accounting);
    let policy = Scenario::DramPcieFlash.best_policy();
    let (run, samples) = trace_run(&data, root, &policy);

    let reports = build_reports(&samples);
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(report.root, Some(root as u64));
    assert_eq!(report.visited, run.visited);
    assert_eq!(report.teps_edges, run.teps_edges);
    assert_eq!(report.levels.len(), run.levels.len());

    for (row, stats) in report.levels.iter().zip(&run.levels) {
        assert_eq!(row.level, stats.level);
        assert_eq!(core_dir(row.dir), stats.direction);
        assert_eq!(row.frontier, stats.frontier_size);
        assert_eq!(row.discovered, stats.discovered);
        assert_eq!(row.scanned_edges, stats.scanned_edges);
        assert_eq!(row.nvm_edges, stats.nvm_edges);
        if let Some(io) = &stats.io {
            assert_eq!(row.io_requests, io.requests);
        }
        if let Some(cache) = &stats.cache {
            assert_eq!(row.cache_hits, cache.hits);
            assert_eq!(row.cache_misses, cache.misses);
        }
    }
}

/// The disabled tracer records nothing — a traced run followed by a
/// disabled run leaves the rings empty.
#[test]
fn disabled_tracer_records_nothing() {
    let _g = trace_lock();
    let (data, root) = flash_scenario(10, DelayMode::Accounting);
    let policy = Scenario::DramPcieFlash.best_policy();
    let (_, samples) = trace_run(&data, root, &policy);
    assert!(!samples.is_empty());

    // Tracer is now disabled; another run must add nothing.
    data.run(root, &policy, &BfsConfig::paper()).unwrap();
    assert!(sembfs::obs::global().drain().is_empty());
}
