//! Seeded-interleaving stress for the concurrent pieces ISSUE 5 leans on:
//! the `ShardedPageCache` under N threads hammering *overlapping* page
//! ranges of a faulted device, and the shared frontier merge of the
//! parallel top-down kernel. Every test fixes its seeds so a failing
//! interleaving reproduces; counter-consistency assertions (cache
//! hit/miss totals vs issued page accesses, `DomainCounters` totals vs
//! device-ground-truth scanned edges) catch lost or double-counted work
//! that correctness-only checks would miss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sembfs::prelude::*;
use sembfs::semext::{
    DelayMode, Device, DeviceProfile, DramBackend, FaultPlan, ReadAt, ShardedCachedStore,
    ShardedPageCache,
};

const PAGE: u64 = 4096;

/// splitmix64 — deterministic per-thread offset streams.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// 8 threads × 256 reads over a 64-page backend through a 7-page cache:
/// constant eviction pressure, every page contended. The clean device
/// lets us assert *exact* counter consistency: with readahead off, every
/// page an `read_at` spans is classified exactly once as a hit or a miss.
#[test]
fn overlapping_readers_keep_exact_hit_miss_accounting() {
    let len = (64 * PAGE) as usize;
    let mut state = 0x5EED_u64;
    let data: Vec<u8> = (0..len).map(|_| (mix(&mut state) >> 56) as u8).collect();

    let device = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
    let cache = ShardedPageCache::with_shards(7 * PAGE, 4);
    let store = ShardedCachedStore::new(DramBackend::new(data.clone()), device, cache.clone());

    let spanned = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let store = &store;
            let data = &data;
            let spanned = &spanned;
            scope.spawn(move || {
                let mut state = 0xABCD_EF00 ^ t;
                for _ in 0..256 {
                    let r = mix(&mut state);
                    let off = (r as usize) % (len - 1);
                    let want = 1 + (r >> 40) as usize % (len - off).min(3 * PAGE as usize);
                    let mut buf = vec![0u8; want];
                    store.read_at(off as u64, &mut buf).unwrap();
                    assert_eq!(&buf[..], &data[off..off + want], "offset {off}");
                    let first = off as u64 / PAGE;
                    let last = (off + want - 1) as u64 / PAGE;
                    spanned.fetch_add(last - first + 1, Ordering::Relaxed);
                }
            });
        }
    });

    let (hits, misses) = cache.stats();
    assert_eq!(
        hits + misses,
        spanned.load(Ordering::Relaxed),
        "every spanned page must be classified exactly once"
    );
    assert!(cache.resident_pages() as u64 <= 7);
    // The aggregate snapshot must equal the sum of its shards — the
    // accumulate-then-merge paths may not lose or double-count.
    let total = cache.snapshot();
    let by_shard = cache.per_shard();
    assert_eq!(
        total.hits,
        by_shard.iter().map(|s| s.hits).sum::<u64>(),
        "shard hit counters disagree with the aggregate"
    );
    assert_eq!(total.misses, by_shard.iter().map(|s| s.misses).sum::<u64>());
    assert_eq!(
        total.evictions,
        by_shard.iter().map(|s| s.evictions).sum::<u64>()
    );
}

/// The same hammering against a *faulted* device (transient EIO + stalls,
/// generous retry budget): data must stay correct, counters must stay
/// monotonic and bounded (retries may re-classify a page, so the exact
/// identity relaxes to a lower bound), and the device must have seen
/// real traffic.
#[test]
fn faulted_device_reads_stay_correct_under_contention() {
    let len = (48 * PAGE) as usize;
    let mut state = 0xFA17_u64;
    let data: Vec<u8> = (0..len).map(|_| (mix(&mut state) >> 56) as u8).collect();

    let plan = FaultPlan::parse("seed=31,eio=0.08,stall=0.05,stall_us=30,retries=24").unwrap();
    let device =
        Device::with_fault_plan(DeviceProfile::intel_ssd_320(), DelayMode::Accounting, plan);
    let cache = ShardedPageCache::with_shards(5 * PAGE, 2);
    let store = ShardedCachedStore::new(
        DramBackend::new(data.clone()),
        device.clone(),
        cache.clone(),
    );

    let spanned = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let store = &store;
            let data = &data;
            let spanned = &spanned;
            scope.spawn(move || {
                let mut state = 0x00DD_F00D ^ t.rotate_left(17);
                for _ in 0..192 {
                    let r = mix(&mut state);
                    let off = (r as usize) % (len - 1);
                    let want = 1 + (r >> 40) as usize % (len - off).min(2 * PAGE as usize);
                    let mut buf = vec![0u8; want];
                    store.read_at(off as u64, &mut buf).unwrap();
                    assert_eq!(&buf[..], &data[off..off + want], "offset {off}");
                    let first = off as u64 / PAGE;
                    let last = (off + want - 1) as u64 / PAGE;
                    spanned.fetch_add(last - first + 1, Ordering::Relaxed);
                }
            });
        }
    });

    let (hits, misses) = cache.stats();
    assert!(
        hits + misses >= spanned.load(Ordering::Relaxed),
        "page accesses were lost: {hits}+{misses} < {}",
        spanned.load(Ordering::Relaxed)
    );
    let io = device.snapshot();
    assert!(io.requests > 0, "the device saw no traffic");
    assert!(io.bytes >= io.requests * PAGE, "sub-page device reads");
}

/// Frontier-merge stress: a dense bipartite layer where all 64 frontier
/// vertices propose every target, swept at 1..=8 workers with tiny work
/// units to maximize interleaving. Exactly-once claims, canonical
/// min-parents, and `DomainCounters` totals equal to the scanned-edge
/// ground truth must all hold on every repetition.
#[test]
fn shared_frontier_merge_claims_exactly_once_under_contention() {
    use sembfs_core::parallel::par_top_down_step;
    use sembfs_core::tree::{new_parent_array, snapshot_parents};
    use sembfs_core::AtomicBitmap;
    use sembfs_csr::{build_csr, BuildOptions, DramForwardGraph, NeighborCtx};
    use sembfs_numa::{DomainCounters, RangePartition};

    let n = 64 + 512u64;
    let mut edges = Vec::new();
    for u in 0..64u32 {
        for w in 64..(64 + 512u32) {
            edges.push((u, w));
        }
    }
    let el = MemEdgeList::new(n, edges);
    let csr = build_csr(&el, BuildOptions::default()).unwrap();
    let g = DramForwardGraph::from_csr(&csr, &RangePartition::new(n, 4));
    let frontier: Vec<u32> = (0..64).collect();

    for rep in 0..6u64 {
        for threads in [2usize, 4, 8] {
            let parent = new_parent_array(n, 0);
            let visited = AtomicBitmap::new(n);
            for &v in &frontier {
                visited.set(v);
            }
            let counters = DomainCounters::new(4);
            // batch 1 ⇒ one frontier vertex per work unit: the unit
            // cursor is hammered 64×domains times per step.
            let out = par_top_down_step(
                &g,
                &frontier,
                &parent,
                &visited,
                1,
                threads,
                &NeighborCtx::dram,
                Some(&counters),
            )
            .unwrap();

            let mut next = out.next.clone();
            next.sort_unstable();
            let before = next.len();
            next.dedup();
            assert_eq!(next.len(), before, "rep {rep}: a vertex was claimed twice");
            assert_eq!(next, (64..64 + 512u32).collect::<Vec<u32>>(), "rep {rep}");
            assert_eq!(out.scanned_edges, 64 * 512, "rep {rep}");
            assert_eq!(
                counters.total_local() + counters.total_remote(),
                out.scanned_edges,
                "rep {rep} threads {threads}: counters lost edges"
            );
            let snap = snapshot_parents(&parent);
            for (w, &p) in snap.iter().enumerate().skip(64) {
                assert_eq!(p, 0, "rep {rep}: non-minimal parent for {w}");
            }
        }
    }
}

/// End-to-end: an 8-thread external-forward run under a recoverable fault
/// plan must (a) stay bit-identical to the clean serial tree and (b)
/// keep the per-thread `DomainCounters` merge equal to the run's own
/// scanned-edge total — the accumulate-then-merge fix, exercised through
/// the full stack rather than the kernel in isolation.
#[test]
fn faulted_parallel_run_keeps_counters_consistent() {
    use sembfs_numa::DomainCounters;

    let edges = KroneckerParams::graph500(10, 61).generate();
    let opts = |fault_plan| ScenarioOptions {
        topology: Topology::new(2, 2),
        fault_plan,
        ..Default::default()
    };
    let data = ScenarioData::build(&edges, Scenario::DramPcieFlash, opts(None)).unwrap();
    let root = select_roots(data.csr().num_vertices(), 1, 5, |v| data.degree(v))[0];
    let policy = AlphaBetaPolicy::new(10.0, 10.0); // external-heavy: NVM every level
                                                   // Canonical min-parent oracle — the legacy serial kernel's first-hit
                                                   // tie-break would be a different (valid but non-canonical) tree.
    let want = reference_bfs(data.csr(), root).parent;

    let plan = FaultPlan::parse("seed=47,eio=0.05,corrupt=0.02,stall=0.03,stall_us=40,retries=20")
        .unwrap();
    let faulted = ScenarioData::build(&edges, Scenario::DramPcieFlash, opts(Some(plan))).unwrap();
    for threads in [2usize, 8] {
        let counters = Arc::new(DomainCounters::new(2));
        let cfg = BfsConfig::paper()
            .with_threads(threads)
            .with_numa_counters(counters.clone());
        let run = faulted.run(root, &policy, &cfg).unwrap();
        assert_eq!(run.parent, want, "threads {threads}: tree diverged");
        assert_eq!(
            counters.total_local() + counters.total_remote(),
            run.scanned_edges(),
            "threads {threads}: merged counters disagree with scanned edges"
        );
        validate_bfs_tree(&run.parent, root, &edges).unwrap();
    }
}
