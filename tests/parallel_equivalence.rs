//! Differential harness for the parallel hybrid BFS kernels (ISSUE 5).
//!
//! Runs the serial canonical `reference_bfs` against the 1/2/4/8-thread
//! hybrid across every storage layout (all-DRAM, external forward graph,
//! cold-tail backward offload) × device profiles × a recoverable
//! `FaultPlan`, asserting the parent trees are *bit-identical* — not just
//! level-equivalent — and that the `ValidationReport`s agree. The
//! min-parent CAS tie-break makes the tree a pure function of the graph,
//! so any divergence is a kernel bug, not an acceptable alternative tree.

use sembfs::prelude::*;
use sembfs::semext::{DeviceProfile, FaultPlan};
use sembfs_csr::{build_csr, BuildOptions};
use sembfs_graph500::validate::ValidationReport;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn kron(scale: u32, seed: u64) -> MemEdgeList {
    KroneckerParams::graph500(scale, seed).generate()
}

/// A fault plan every read survives given the retry budget: transient
/// EIO, checksummed corruption (healed by `verify_pages`), short stalls.
fn recoverable_plan() -> FaultPlan {
    FaultPlan::parse("seed=29,eio=0.04,corrupt=0.03,stall=0.02,stall_us=40,retries=20")
        .expect("valid fault spec")
}

/// The three storage layouts of the ISSUE. `k = 4` puts a meaningful
/// share of backward edges on the device for a Kronecker graph (hubs far
/// exceed degree 4) while the hot prefix stays in DRAM.
fn layouts() -> Vec<(&'static str, Scenario, ScenarioOptions)> {
    let base = ScenarioOptions {
        topology: Topology::new(2, 2),
        ..Default::default()
    };
    vec![
        ("dram", Scenario::DramOnly, base.clone()),
        ("external-forward", Scenario::DramPcieFlash, base.clone()),
        (
            "cold-tail",
            Scenario::DramPcieFlash,
            ScenarioOptions {
                backward_offload_k: Some(4),
                ..base
            },
        ),
    ]
}

/// Serial oracle: canonical tree + its validation report.
fn oracle(edges: &MemEdgeList, root: VertexId) -> (Vec<VertexId>, ValidationReport) {
    let csr = build_csr(edges, BuildOptions::default()).unwrap();
    let parent = reference_bfs(&csr, root).parent;
    let report = validate_bfs_tree(&parent, root, edges).expect("reference tree validates");
    (parent, report)
}

fn assert_all_threads_match(
    edges: &MemEdgeList,
    scenario: Scenario,
    opts: &ScenarioOptions,
    label: &str,
) {
    let data = ScenarioData::build(edges, scenario, opts.clone()).unwrap();
    let roots = select_roots(data.csr().num_vertices(), 2, 7, |v| data.degree(v));
    let policy = scenario.best_policy();
    for &root in &roots {
        let (want_parent, want_report) = oracle(edges, root);
        for threads in THREADS {
            let cfg = BfsConfig::paper().with_threads(threads);
            let run = data.run(root, &policy, &cfg).unwrap();
            assert_eq!(
                run.parent, want_parent,
                "{label} root {root} threads {threads}: parent tree diverged"
            );
            let report = validate_bfs_tree(&run.parent, root, edges).unwrap();
            assert_eq!(
                report, want_report,
                "{label} root {root} threads {threads}: validation report diverged"
            );
        }
    }
}

#[test]
fn every_layout_matches_reference_at_every_thread_count() {
    let edges = kron(11, 41);
    for (label, scenario, opts) in layouts() {
        assert_all_threads_match(&edges, scenario, &opts, label);
    }
}

#[test]
fn device_profiles_do_not_change_the_tree() {
    let edges = kron(10, 77);
    for profile in [
        DeviceProfile::iodrive2(),
        DeviceProfile::intel_ssd_320(),
        DeviceProfile::nvme_gen4(),
    ] {
        for (label, scenario, mut opts) in layouts() {
            if scenario == Scenario::DramOnly {
                continue; // no device to override
            }
            let name = profile.name;
            opts.device_profile_override = Some(profile.clone());
            assert_all_threads_match(&edges, scenario, &opts, &format!("{label}/{name}"));
        }
    }
}

#[test]
fn recoverable_faults_leave_parallel_trees_bit_identical() {
    let edges = kron(10, 53);
    for (label, scenario, mut opts) in layouts() {
        if scenario == Scenario::DramOnly {
            continue; // fault plans apply to the device path
        }
        opts.fault_plan = Some(recoverable_plan());
        assert_all_threads_match(&edges, scenario, &opts, &format!("{label}/faulted"));
    }
}

#[test]
fn fixed_direction_parallel_kernels_match_reference() {
    // Force each kernel to run every level so both parallel paths are
    // exercised end-to-end (the best policies switch almost immediately).
    let edges = kron(10, 19);
    let data = ScenarioData::build(
        &edges,
        Scenario::DramPcieFlash,
        ScenarioOptions {
            topology: Topology::new(2, 2),
            ..Default::default()
        },
    )
    .unwrap();
    let root = select_roots(data.csr().num_vertices(), 1, 3, |v| data.degree(v))[0];
    let (want_parent, want_report) = oracle(&edges, root);
    for direction in [Direction::TopDown, Direction::BottomUp] {
        for threads in THREADS {
            let cfg = BfsConfig::paper().with_threads(threads);
            let run = data.run(root, &FixedPolicy(direction), &cfg).unwrap();
            assert_eq!(
                run.parent, want_parent,
                "{direction:?} threads {threads}: parent tree diverged"
            );
            let report = validate_bfs_tree(&run.parent, root, &edges).unwrap();
            assert_eq!(report, want_report);
        }
    }
}
