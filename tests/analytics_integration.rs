//! Cross-crate checks of the analytics layer against the searcher: the
//! component structure, separation profiles, and BFS results must tell a
//! single consistent story.

use sembfs::analytics::{connected_components, pseudo_diameter, separation_histogram};
use sembfs::prelude::*;

fn setup(scale: u32, seed: u64) -> (MemEdgeList, ScenarioData) {
    let edges = KroneckerParams::graph500(scale, seed).generate();
    let data = ScenarioData::build(
        &edges,
        Scenario::DramPcieFlash,
        ScenarioOptions {
            topology: Topology::new(2, 2),
            ..Default::default()
        },
    )
    .unwrap();
    (edges, data)
}

#[test]
fn bfs_reach_equals_component_size() {
    let (edges, data) = setup(11, 21);
    let cc = connected_components(data.csr());
    let roots = select_roots(data.csr().num_vertices(), 4, 9, |v| data.degree(v));
    for &root in &roots {
        let run = data
            .run(
                root,
                &Scenario::DramPcieFlash.best_policy(),
                &BfsConfig::paper(),
            )
            .unwrap();
        validate_bfs_tree(&run.parent, root, &edges).unwrap();
        let component = cc.labels[root as usize];
        assert_eq!(
            run.visited, cc.sizes[component as usize],
            "BFS from {root} must cover exactly its component"
        );
    }
}

#[test]
fn separation_profile_matches_run_accounting() {
    let (_, data) = setup(10, 5);
    let root = select_roots(data.csr().num_vertices(), 1, 2, |v| data.degree(v))[0];
    let run = data
        .run(
            root,
            &Scenario::DramPcieFlash.best_policy(),
            &BfsConfig::paper(),
        )
        .unwrap();
    let profile = separation_histogram(&run.parent, root).unwrap();
    assert_eq!(profile.reachable(), run.visited);
    assert_eq!(
        profile.reachable() + profile.unreachable,
        data.csr().num_vertices()
    );
    // The profile's eccentricity equals the deepest recorded level with
    // discoveries.
    let deepest = run
        .levels
        .iter()
        .filter(|l| l.discovered > 0)
        .map(|l| l.level)
        .max()
        .unwrap_or(0);
    assert_eq!(profile.eccentricity(), deepest);
}

#[test]
fn pseudo_diameter_at_least_first_sweep() {
    let (_, data) = setup(10, 33);
    let root = select_roots(data.csr().num_vertices(), 1, 3, |v| data.degree(v))[0];
    let run = data
        .run(
            root,
            &Scenario::DramPcieFlash.best_policy(),
            &BfsConfig::paper(),
        )
        .unwrap();
    let first = separation_histogram(&run.parent, root)
        .unwrap()
        .eccentricity();
    let (d, _, _) = pseudo_diameter(&data, root, &Scenario::DramPcieFlash.best_policy()).unwrap();
    assert!(
        d >= first,
        "double sweep ({d}) must not shrink below the first ({first})"
    );
}

#[test]
fn giant_component_dominates_kronecker() {
    let (_, data) = setup(12, 8);
    let cc = connected_components(data.csr());
    assert!(cc.giant_fraction() > 0.4);
    // Every selected root lands in the giant component (they all have
    // edges, and the giant holds the hubs) — spot-check the first.
    let root = select_roots(data.csr().num_vertices(), 1, 1, |v| data.degree(v))[0];
    let giant = cc.giant_id();
    let run = data
        .run(
            root,
            &Scenario::DramPcieFlash.best_policy(),
            &BfsConfig::paper(),
        )
        .unwrap();
    if cc.labels[root as usize] == giant {
        assert_eq!(run.visited, cc.giant_size());
    }
}
