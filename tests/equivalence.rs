//! Cross-searcher and cross-scenario equivalence: every policy and every
//! data layout must produce the same BFS *levels* as the serial reference
//! (parent arrays may differ — any valid tree is acceptable — but level
//! assignments are unique).

use sembfs::prelude::*;
use sembfs_csr::{build_csr, BuildOptions};
use sembfs_graph500::validate::compute_levels;

fn levels_of(parent: &[VertexId], root: VertexId) -> Vec<u32> {
    compute_levels(parent, root).expect("valid tree")
}

fn kron(scale: u32, seed: u64) -> MemEdgeList {
    KroneckerParams::graph500(scale, seed).generate()
}

#[test]
fn hybrid_matches_reference_levels_all_scenarios() {
    let edges = kron(11, 99);
    let csr = build_csr(&edges, BuildOptions::default()).unwrap();
    let opts = ScenarioOptions {
        topology: Topology::new(3, 2),
        ..Default::default()
    };

    let roots = select_roots(csr.num_vertices(), 3, 1, |v| csr.degree(v));
    for scenario in Scenario::ALL {
        let data = ScenarioData::build(&edges, scenario, opts.clone()).unwrap();
        for &root in &roots {
            let expect = levels_of(&reference_bfs(&csr, root).parent, root);
            let run = data
                .run(root, &scenario.best_policy(), &BfsConfig::paper())
                .unwrap();
            let got = levels_of(&run.parent, root);
            assert_eq!(got, expect, "{} root {root}", scenario.label());
        }
    }
}

#[test]
fn fixed_direction_policies_match_reference_levels() {
    let edges = kron(10, 3);
    let csr = build_csr(&edges, BuildOptions::default()).unwrap();
    let data = ScenarioData::build(
        &edges,
        Scenario::DramOnly,
        ScenarioOptions {
            topology: Topology::new(2, 2),
            ..Default::default()
        },
    )
    .unwrap();
    let root = select_roots(csr.num_vertices(), 1, 9, |v| csr.degree(v))[0];
    let expect = levels_of(&reference_bfs(&csr, root).parent, root);

    for policy in [
        FixedPolicy(Direction::TopDown),
        FixedPolicy(Direction::BottomUp),
    ] {
        let run = data.run(root, &policy, &BfsConfig::paper()).unwrap();
        assert_eq!(levels_of(&run.parent, root), expect, "{}", policy.label());
        validate_bfs_tree(&run.parent, root, &edges).unwrap();
    }
}

#[test]
fn beamer_policy_matches_reference_levels() {
    let edges = kron(10, 17);
    let csr = build_csr(&edges, BuildOptions::default()).unwrap();
    let data = ScenarioData::build(
        &edges,
        Scenario::DramOnly,
        ScenarioOptions {
            topology: Topology::new(2, 2),
            ..Default::default()
        },
    )
    .unwrap();
    let root = select_roots(csr.num_vertices(), 1, 2, |v| csr.degree(v))[0];
    let expect = levels_of(&reference_bfs(&csr, root).parent, root);

    let policy = BeamerPolicy::with_defaults(csr.num_values() / 2);
    let cfg = BfsConfig {
        count_frontier_edges: true,
        ..BfsConfig::paper()
    };
    let run = data.run(root, &policy, &cfg).unwrap();
    assert_eq!(levels_of(&run.parent, root), expect);
}

#[test]
fn split_backward_offload_matches_reference_levels() {
    let edges = kron(11, 55);
    let csr = build_csr(&edges, BuildOptions::default()).unwrap();
    let roots = select_roots(csr.num_vertices(), 2, 4, |v| csr.degree(v));
    for k in [1u64, 2, 8, 32] {
        let data = ScenarioData::build(
            &edges,
            Scenario::DramPcieFlash,
            ScenarioOptions {
                topology: Topology::new(2, 2),
                backward_offload_k: Some(k),
                ..Default::default()
            },
        )
        .unwrap();
        for &root in &roots {
            let expect = levels_of(&reference_bfs(&csr, root).parent, root);
            let run = data
                .run(
                    root,
                    &Scenario::DramPcieFlash.best_policy(),
                    &BfsConfig::paper(),
                )
                .unwrap();
            assert_eq!(levels_of(&run.parent, root), expect, "k={k} root={root}");
            validate_bfs_tree(&run.parent, root, &edges).unwrap();
        }
    }
}

#[test]
fn alpha_beta_sweep_always_valid() {
    // Any α/β combination must yield a correct BFS — only performance may
    // change (this is what makes Fig. 7's sweep safe to run).
    let edges = kron(10, 8);
    let csr = build_csr(&edges, BuildOptions::default()).unwrap();
    let data = ScenarioData::build(
        &edges,
        Scenario::DramOnly,
        ScenarioOptions {
            topology: Topology::new(2, 1),
            ..Default::default()
        },
    )
    .unwrap();
    let root = select_roots(csr.num_vertices(), 1, 5, |v| csr.degree(v))[0];
    let expect = levels_of(&reference_bfs(&csr, root).parent, root);
    for alpha in [1e1, 1e3, 1e6] {
        for beta_mult in [0.1, 1.0, 10.0] {
            let policy = AlphaBetaPolicy::new(alpha, alpha * beta_mult);
            let run = data.run(root, &policy, &BfsConfig::paper()).unwrap();
            assert_eq!(
                levels_of(&run.parent, root),
                expect,
                "α={alpha} β={}",
                alpha * beta_mult
            );
        }
    }
}

#[test]
fn throttled_and_accounting_modes_agree_on_results() {
    let edges = kron(9, 77);
    let root;
    let acc_levels;
    {
        let data = ScenarioData::build(
            &edges,
            Scenario::DramPcieFlash,
            ScenarioOptions {
                topology: Topology::new(2, 1),
                delay_mode: DelayMode::Accounting,
                // Scale the device way down so the throttled twin is fast.
                device_scale: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        root = select_roots(data.csr().num_vertices(), 1, 6, |v| data.degree(v))[0];
        let run = data
            .run(
                root,
                &Scenario::DramPcieFlash.best_policy(),
                &BfsConfig::paper(),
            )
            .unwrap();
        acc_levels = levels_of(&run.parent, root);
    }
    let data = ScenarioData::build(
        &edges,
        Scenario::DramPcieFlash,
        ScenarioOptions {
            topology: Topology::new(2, 1),
            delay_mode: DelayMode::Throttled,
            device_scale: 0.01,
            ..Default::default()
        },
    )
    .unwrap();
    let run = data
        .run(
            root,
            &Scenario::DramPcieFlash.best_policy(),
            &BfsConfig::paper(),
        )
        .unwrap();
    assert_eq!(levels_of(&run.parent, root), acc_levels);
}
