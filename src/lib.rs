//! # sembfs — Hybrid BFS with Semi-External Memory
//!
//! A from-scratch Rust reproduction of *“Hybrid BFS Approach Using
//! Semi-External Memory”* (Iwabuchi, Sato, Mizote, Yasui, Fujisawa,
//! Matsuoka — IPPS 2014): a NUMA-aware direction-optimizing BFS whose
//! forward graph is offloaded from DRAM to NVM, evaluated through the
//! Graph500 benchmark.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph500`] — Kronecker generation, edge lists, validation, TEPS
//!   statistics, the 4-step benchmark driver.
//! * [`csr`] — CSR construction and the NUMA-partitioned forward/backward
//!   graphs.
//! * [`semext`] — storage backends, the simulated NVM device model, and
//!   iostat-style metrics.
//! * [`numa`] — the NUMA topology model and range partitioner.
//! * [`core`] — the hybrid BFS itself: step kernels, α/β switching,
//!   scenarios, baselines.
//! * [`query`] — the concurrent point-query engine: bidirectional
//!   shortest paths, worker pool, result cache, latency metrics.
//! * [`obs`] — observability: the span/event tracer, metrics registry
//!   with Prometheus exposition, JSONL/Chrome trace sinks, and the
//!   per-level run-report pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use sembfs::prelude::*;
//!
//! // Graph500 Step 1: a small Kronecker graph.
//! let params = KroneckerParams::graph500(10, 42);
//! let edges = params.generate();
//!
//! // Step 2: build the DRAM+PCIeFlash layout (forward graph offloaded to
//! // a simulated ioDrive2).
//! let data = ScenarioData::build(
//!     &edges,
//!     Scenario::DramPcieFlash,
//!     ScenarioOptions::default(),
//! )
//! .unwrap();
//!
//! // Step 3: hybrid BFS with the paper's best flash thresholds.
//! let root = select_roots(data.csr().num_vertices(), 1, 7, |v| data.degree(v))[0];
//! let run = data
//!     .run(root, &Scenario::DramPcieFlash.best_policy(), &BfsConfig::paper())
//!     .unwrap();
//!
//! // Step 4: validate the tree against the edge list.
//! let report = validate_bfs_tree(&run.parent, root, &edges).unwrap();
//! assert_eq!(report.visited, run.visited);
//! ```

pub use sembfs_analytics as analytics;
pub use sembfs_core as core;
pub use sembfs_csr as csr;
pub use sembfs_dist as dist;
pub use sembfs_graph500 as graph500;
pub use sembfs_numa as numa;
pub use sembfs_obs as obs;
pub use sembfs_query as query;
pub use sembfs_semext as semext;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use sembfs_core::{
        hybrid_bfs, reference_bfs, AlphaBetaPolicy, BeamerPolicy, BfsConfig, BfsRun, Direction,
        DirectionPolicy, FixedPolicy, Scenario, ScenarioData, ScenarioOptions,
    };
    pub use sembfs_csr::{build_csr, BackwardGraph, BuildOptions, CsrGraph, DramForwardGraph};
    pub use sembfs_graph500::{
        select_roots, validate_bfs_tree, BenchmarkSpec, KroneckerParams, MemEdgeList, TepsStats,
        VertexId, INVALID_PARENT,
    };
    pub use sembfs_numa::{RangePartition, Topology};
    pub use sembfs_query::{
        EngineConfig, Query, QueryEngine, QueryError, QueryMix, QueryResult, QueryStats,
        ZipfSampler,
    };
    pub use sembfs_semext::{DelayMode, Device, DeviceProfile, IoSnapshot, TempDir};
}
