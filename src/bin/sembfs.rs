//! `sembfs` — command-line front end for the library.
//!
//! ```text
//! sembfs generate  --scale 18 --out edges.bin            # Graph500 Step 1
//! sembfs info      --scale 18                            # sizes per Table II
//! sembfs bfs       --scale 18 --scenario flash --roots 8 # Steps 2–4
//! sembfs sweep     --scale 16 --scenario flash           # mini Fig. 7
//! sembfs query     --scale 14 --scenario flash --pairs 4 # point queries
//! sembfs serve-sim --scale 14 --scenario flash --clients 8  # load test
//! ```
//!
//! Flags may appear in any order; every command accepts `--seed`.

use std::collections::HashMap;
use std::sync::Arc;

use sembfs::graph500::driver::run_rounds;
use sembfs::graph500::edge_list::generate_edge_file;
use sembfs::graph500::rng::Xoshiro256;
use sembfs::prelude::*;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            // A following `--flag` means this flag is boolean-valued.
            match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                Some(value) => {
                    flags.insert(name.to_string(), value.clone());
                    i += 2;
                }
                None => {
                    flags.insert(name.to_string(), String::new());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    flags
        .get(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scenario_of(flags: &HashMap<String, String>) -> Scenario {
    match flags.get("scenario").map(String::as_str) {
        Some("flash") => Scenario::DramPcieFlash,
        Some("ssd") => Scenario::DramSsd,
        _ => Scenario::DramOnly,
    }
}

/// `--faults seed=1,eio=0.01,...` → a validated plan (exits on a bad spec).
fn fault_plan_of(flags: &HashMap<String, String>) -> Option<sembfs::semext::FaultPlan> {
    let spec = flags.get("faults").filter(|s| !s.is_empty())?;
    match sembfs::semext::FaultPlan::parse(spec) {
        Ok(plan) => Some(plan),
        Err(e) => {
            eprintln!("bad --faults spec: {e}");
            std::process::exit(2);
        }
    }
}

/// One-line fault/resilience summary when the scenario's device carries a
/// fault plan.
fn print_fault_summary(data: &ScenarioData) {
    let Some(dev) = data.device() else { return };
    let Some(faults) = dev.faults() else { return };
    let s = faults.snapshot();
    println!(
        "faults: {} eio, {} corrupt, {} stall | {} retries, {} checksum failures | wear x{:.2}{}",
        s.eio,
        s.corrupt,
        s.stall,
        s.retries,
        s.checksum_failures,
        dev.wear_factor(),
        if dev.is_degraded() { " | DEGRADED" } else { "" }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        usage();
        return;
    };
    let flags = parse_flags(&args[1..]);
    let scale: u32 = flag(&flags, "scale", 16);
    let seed: u64 = flag(&flags, "seed", 1);
    let params = KroneckerParams::graph500(scale, seed);

    match command.as_str() {
        "generate" => {
            let out = flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| format!("kron-s{scale}.edges"));
            let m = generate_edge_file(&params, &out, 1 << 16).expect("generate");
            println!("wrote {m} edges ({} bytes) to {out}", m * 8);
        }
        "info" => {
            let edges = params.generate();
            let data =
                ScenarioData::build(&edges, Scenario::DramOnly, Default::default()).expect("build");
            println!(
                "SCALE {scale}: {} vertices, {} edges",
                params.num_vertices(),
                params.num_edges()
            );
            let fg = data.forward_bytes();
            let bg = data.backward_dram_bytes();
            let st = data.status_bytes();
            for (name, b) in [
                ("forward graph", fg),
                ("backward graph", bg),
                ("status data", st),
            ] {
                println!("  {name:>15}: {:>10.1} MiB", b as f64 / (1 << 20) as f64);
            }
            println!(
                "  {:>15}: {:>10.1} MiB",
                "total",
                (fg + bg + st) as f64 / (1 << 20) as f64
            );
        }
        "bfs" => {
            let scenario = scenario_of(&flags);
            let num_roots: usize = flag(&flags, "roots", 8);
            let trace_out = flags.get("trace-out").filter(|p| !p.is_empty()).cloned();
            // Checksum mode prints *only* runtime-independent lines
            // (parent-tree digests, visited/scanned counts) so two runs of
            // the same seed diff clean — the CI determinism gate.
            let checksum = flags.contains_key("checksum");
            let edges = params.generate();
            let opts = ScenarioOptions {
                delay_mode: sembfs::semext::DelayMode::Throttled,
                fault_plan: fault_plan_of(&flags),
                ..Default::default()
            };
            let data = ScenarioData::build(&edges, scenario, opts).expect("build");
            if trace_out.is_some() {
                data.align_trace_epoch();
                sembfs::obs::global().set_enabled(true);
            }
            let roots = select_roots(params.num_vertices(), num_roots, seed, |v| data.degree(v));
            let policy = scenario.best_policy();
            let mut cfg = BfsConfig::paper();
            if let Some(t) = flags.get("threads").and_then(|v| v.parse().ok()) {
                cfg = cfg.with_threads(t);
            }
            println!(
                "{} | {} | {num_roots} roots | {} threads",
                scenario.label(),
                policy.label(),
                if cfg.threads >= 1 {
                    cfg.threads.to_string()
                } else {
                    "legacy".to_string()
                }
            );
            let mut digests: Vec<(VertexId, u64, u64, u64)> = Vec::new();
            let summary = run_rounds(&roots, &edges, |root| {
                let run = data.run(root, &policy, &cfg).expect("bfs");
                if checksum {
                    digests.push((
                        root,
                        parent_checksum(&run.parent),
                        run.visited,
                        run.scanned_edges(),
                    ));
                }
                (run.parent, run.teps_edges, run.elapsed)
            })
            .expect("all rounds validate");
            if checksum {
                for (root, digest, visited, scanned) in &digests {
                    println!(
                        "root {root}: parent-tree {digest:016x} | visited {visited} | scanned {scanned}"
                    );
                }
            } else {
                println!("{}", summary.teps_stats.to_report());
                println!("score (median): {:.3} MTEPS", summary.median_teps() / 1e6);
                print_fault_summary(&data);
            }
            if let Some(path) = trace_out {
                let tracer = sembfs::obs::global();
                tracer.set_enabled(false);
                let samples = tracer.drain();
                sembfs::obs::write_jsonl(std::path::Path::new(&path), &samples)
                    .expect("write trace");
                let dropped = tracer.dropped();
                println!(
                    "trace: {} samples → {path}{}",
                    samples.len(),
                    if dropped > 0 {
                        format!(" ({dropped} dropped)")
                    } else {
                        String::new()
                    }
                );
                println!("view:  sembfs report {path}");
            }
        }
        "report" => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!("usage: sembfs report TRACE.jsonl [--chrome OUT.json]");
                std::process::exit(2);
            };
            let samples = sembfs::obs::read_jsonl(std::path::Path::new(path)).expect("read trace");
            if let Some(out) = flags.get("chrome").filter(|p| !p.is_empty()) {
                std::fs::write(out, sembfs::obs::chrome_trace(&samples)).expect("write chrome");
                println!("wrote Chrome trace ({} samples) to {out}", samples.len());
            } else {
                let reports = sembfs::obs::build_reports(&samples);
                print!("{}", sembfs::obs::render_reports(&reports));
            }
        }
        "sweep" => {
            let scenario = scenario_of(&flags);
            let num_roots: usize = flag(&flags, "roots", 4);
            let edges = params.generate();
            let opts = ScenarioOptions {
                delay_mode: sembfs::semext::DelayMode::Throttled,
                ..Default::default()
            };
            let data = ScenarioData::build(&edges, scenario, opts).expect("build");
            let roots = select_roots(params.num_vertices(), num_roots, seed, |v| data.degree(v));
            println!(
                "{} | median MTEPS over {} roots",
                scenario.label(),
                roots.len()
            );
            println!("{:>10} {:>10} {:>10} {:>10}", "alpha", "0.1a", "1a", "10a");
            for alpha in [1e2, 1e3, 1e4, 1e5, 1e6] {
                print!("{alpha:>10.0e}");
                for bm in [0.1, 1.0, 10.0] {
                    let policy = AlphaBetaPolicy::new(alpha, alpha * bm);
                    let mut teps: Vec<f64> = roots
                        .iter()
                        .map(|&r| {
                            data.run(r, &policy, &BfsConfig::paper())
                                .expect("bfs")
                                .teps()
                        })
                        .collect();
                    teps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                    print!(" {:>10.2}", teps[teps.len() / 2] / 1e6);
                }
                println!();
            }
        }
        "query" => {
            let scenario = scenario_of(&flags);
            let pairs: usize = flag(&flags, "pairs", 4);
            let workers: usize = flag(&flags, "workers", 2);
            let data = Arc::new(build_query_data(&params, scenario, &flags));
            let engine = QueryEngine::new(
                data.clone(),
                EngineConfig {
                    workers,
                    ..Default::default()
                },
            );
            // Explicit --src/--dst, or degree-selected pairs.
            let endpoints: Vec<(VertexId, VertexId)> = match (flags.get("src"), flags.get("dst")) {
                (Some(s), Some(d)) => vec![(
                    s.parse().expect("--src must be a vertex id"),
                    d.parse().expect("--dst must be a vertex id"),
                )],
                _ => {
                    let picks =
                        select_roots(params.num_vertices(), 2 * pairs, seed, |v| data.degree(v));
                    picks
                        .chunks(2)
                        .filter(|c| c.len() == 2)
                        .map(|c| (c[0], c[1]))
                        .collect()
                }
            };
            println!(
                "{} | {} workers | {} pairs",
                scenario.label(),
                workers,
                endpoints.len()
            );
            for (src, dst) in endpoints {
                let resp = engine
                    .run(Query::ShortestPath { src, dst })
                    .expect("query failed");
                // Cross-check against the serial reference BFS.
                let want = {
                    let run = sembfs::core::reference_bfs(data.csr(), src);
                    let levels =
                        sembfs::graph500::validate::compute_levels(&run.parent, src).expect("tree");
                    let l = levels[dst as usize];
                    (l != sembfs::graph500::validate::INVALID_LEVEL).then_some(l)
                };
                match resp.result {
                    QueryResult::Path { distance, vertices } => {
                        assert_eq!(Some(distance), want, "validation failed for {src}→{dst}");
                        println!(
                            "  {src} → {dst}: {distance} hops via {vertices:?}  ({:?}, validated)",
                            resp.latency
                        );
                    }
                    QueryResult::NoPath => {
                        assert_eq!(None, want, "validation failed for {src}→{dst}");
                        println!(
                            "  {src} → {dst}: unreachable  ({:?}, validated)",
                            resp.latency
                        );
                    }
                    other => panic!("unexpected result {other:?}"),
                }
            }
            println!("{}", engine.stats().report());
            print_fault_summary(&data);
        }
        "serve-sim" => {
            let scenarios: Vec<Scenario> = match flags.get("scenario").map(String::as_str) {
                Some("all") => Scenario::ALL.to_vec(),
                _ => vec![scenario_of(&flags)],
            };
            let clients: usize = flag(&flags, "clients", 8);
            let workers: usize = flag(&flags, "workers", 4);
            let requests: usize = flag(&flags, "requests", 100);
            let queue: usize = flag(&flags, "queue", 64);
            let zipf: f64 = flag(&flags, "zipf", 1.0);
            let result_cache: usize = flag(&flags, "result-cache", 1024);
            let prometheus = flags.contains_key("prometheus");
            for scenario in scenarios {
                let data = Arc::new(build_query_data(&params, scenario, &flags));
                let registry = sembfs::obs::MetricsRegistry::new();
                if let Some(dev) = data.device() {
                    dev.register_metrics(&registry);
                }
                if let Some(cache) = data.page_cache() {
                    cache.register_metrics(&registry);
                }
                let engine = Arc::new(QueryEngine::new(
                    data.clone(),
                    EngineConfig {
                        workers,
                        queue_capacity: queue,
                        result_cache_entries: result_cache,
                    },
                ));
                engine.register_metrics(&registry);
                let sampler = Arc::new(ZipfSampler::from_degrees(&data, zipf, 4096));
                println!(
                    "{} | {clients} clients × {requests} requests | {workers} workers, queue {queue}, zipf θ={zipf}",
                    scenario.label()
                );
                std::thread::scope(|scope| {
                    for c in 0..clients {
                        let engine = engine.clone();
                        let sampler = sampler.clone();
                        scope.spawn(move || {
                            let mix = QueryMix::point_queries();
                            let mut rng = Xoshiro256::seed_from(seed, c as u64 + 1);
                            // Closed loop: overload is retried with the
                            // shared capped-backoff helper (generous
                            // budget — exhaustion here means the pool is
                            // truly starved, not just momentarily full).
                            let policy = sembfs::semext::RetryPolicy {
                                max_retries: 64,
                                base: std::time::Duration::from_micros(200),
                                cap: std::time::Duration::from_millis(20),
                                deadline: std::time::Duration::from_secs(60),
                            };
                            for r in 0..requests {
                                let query = mix.sample(&sampler, &mut rng);
                                sembfs::semext::retry_blocking(
                                    policy,
                                    seed ^ ((c as u64) << 32 | r as u64),
                                    |e| matches!(e, QueryError::Overloaded { .. }),
                                    || engine.run(query),
                                )
                                .unwrap_or_else(|e| panic!("query failed: {e}"));
                            }
                        });
                    }
                });
                println!("{}", engine.stats().report());
                print_fault_summary(&data);
                println!();
                if prometheus {
                    println!("{}", registry.prometheus_text());
                }
            }
        }
        _ => usage(),
    }
}

/// FNV-1a digest of a parent array — stable across runs, platforms, and
/// thread counts (the deterministic kernels guarantee the array itself is).
fn parent_checksum(parent: &[VertexId]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &p in parent {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Build a scenario layout for the query commands: throttled device (so
/// latency percentiles mean something), page cache on NVM scenarios.
fn build_query_data(
    params: &KroneckerParams,
    scenario: Scenario,
    flags: &HashMap<String, String>,
) -> ScenarioData {
    let cache_mb: u64 = flag(flags, "cache-mb", 16);
    let edges = params.generate();
    let opts = ScenarioOptions {
        delay_mode: sembfs::semext::DelayMode::Throttled,
        sort_neighbors: true,
        page_cache_bytes: scenario.device_profile().map(|_| cache_mb << 20),
        fault_plan: fault_plan_of(flags),
        ..Default::default()
    };
    ScenarioData::build(&edges, scenario, opts).expect("build scenario")
}

fn usage() {
    eprintln!(
        "usage: sembfs <command> [flags]\n\
         commands:\n\
         \x20 generate  --scale N [--seed S] [--out FILE]   write a Kronecker edge file\n\
         \x20 info      --scale N [--seed S]                print Table II-style sizes\n\
         \x20 bfs       --scale N [--scenario dram|flash|ssd] [--roots R] [--threads T]\n\
         \x20           [--trace-out TRACE.jsonl] [--faults SPEC] [--checksum]  run the benchmark\n\
         \x20           (--threads T >= 1 uses the deterministic parallel kernels;\n\
         \x20            --checksum prints only run-invariant digests for determinism diffs)\n\
         \x20 report    TRACE.jsonl [--chrome OUT.json]      per-level table from a trace\n\
         \x20 sweep     --scale N [--scenario dram|flash|ssd] [--roots R]  α/β sweep\n\
         \x20 query     --scale N [--scenario dram|flash|ssd] [--src A --dst B | --pairs P]\n\
         \x20           [--workers W] [--cache-mb M] [--faults SPEC]  validated point queries\n\
         \x20 serve-sim --scale N [--scenario dram|flash|ssd|all] [--clients C] [--workers W]\n\
         \x20           [--requests R] [--queue Q] [--zipf THETA] [--result-cache E]\n\
         \x20           [--cache-mb M] [--faults SPEC] [--prometheus]  closed-loop load test\n\
         \n\
         --faults SPEC injects deterministic device faults on NVM scenarios. SPEC is a\n\
         comma list of key=value: seed=N, eio=RATE, corrupt=RATE, stall=RATE,\n\
         stall_us=MICROS, wear_gb=GB, retries=N, degrade=RATIO. Rates are per-request\n\
         probabilities in [0,1]; e.g. --faults seed=7,eio=0.01,corrupt=0.001,stall=0.005"
    );
}
