//! TEPS statistics in the official Graph500 output format.
//!
//! Graph500 runs BFS from 64 roots and reports the distribution of TEPS
//! (traversed edges per second): min, quartiles, max, and — because TEPS
//! is a rate — the **harmonic** mean with its propagated standard
//! deviation. The paper's scores ("4.22 GTEPS") are the *median* TEPS
//! over the 64 roots (§II), which is [`TepsStats::median`] here.

/// Distribution summary of TEPS samples.
///
/// ```
/// use sembfs_graph500::TepsStats;
///
/// let s = TepsStats::from_samples(&[2.0e9, 6.0e9, 4.0e9]);
/// assert_eq!(s.median, 4.0e9);
/// // Harmonic mean — the correct mean for rates — is below the arithmetic.
/// assert!(s.harmonic_mean < 4.0e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TepsStats {
    /// Sample count.
    pub n: usize,
    /// Minimum TEPS.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub first_quartile: f64,
    /// Median — the official Graph500 score.
    pub median: f64,
    /// Third quartile.
    pub third_quartile: f64,
    /// Maximum TEPS.
    pub max: f64,
    /// Harmonic mean (the correct mean for rates).
    pub harmonic_mean: f64,
    /// Standard deviation of the harmonic mean, propagated from the
    /// standard deviation of `1/TEPS` as in the reference code:
    /// `hstddev = hmean² · stddev(1/teps)`.
    pub harmonic_stddev: f64,
}

impl TepsStats {
    /// Summarize a set of TEPS samples.
    ///
    /// # Panics
    /// Panics when `samples` is empty or contains non-positive values
    /// (a BFS that traversed zero edges has no meaningful TEPS and must be
    /// filtered out upstream, as the official benchmark re-draws such
    /// roots).
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(
            !samples.is_empty(),
            "TEPS statistics need at least one sample"
        );
        assert!(
            samples.iter().all(|&x| x > 0.0 && x.is_finite()),
            "TEPS samples must be positive and finite"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = sorted.len();

        let mean_inv = sorted.iter().map(|x| 1.0 / x).sum::<f64>() / n as f64;
        let harmonic_mean = 1.0 / mean_inv;
        let harmonic_stddev = if n > 1 {
            let var_inv = sorted
                .iter()
                .map(|x| (1.0 / x - mean_inv).powi(2))
                .sum::<f64>()
                / (n - 1) as f64;
            harmonic_mean * harmonic_mean * var_inv.sqrt()
        } else {
            0.0
        };

        Self {
            n,
            min: sorted[0],
            first_quartile: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            third_quartile: quantile(&sorted, 0.75),
            max: sorted[n - 1],
            harmonic_mean,
            harmonic_stddev,
        }
    }

    /// Format like the official output, scaled to GTEPS.
    pub fn to_report(&self) -> String {
        format!(
            "min_TEPS: {:.4e}\nfirstquartile_TEPS: {:.4e}\nmedian_TEPS: {:.4e}\n\
             thirdquartile_TEPS: {:.4e}\nmax_TEPS: {:.4e}\n\
             harmonic_mean_TEPS: {:.4e}\nharmonic_stddev_TEPS: {:.4e}",
            self.min,
            self.first_quartile,
            self.median,
            self.third_quartile,
            self.max,
            self.harmonic_mean,
            self.harmonic_stddev
        )
    }
}

/// Linear-interpolation quantile of a sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median of a set of `f64` values (for per-level timing summaries).
pub fn median_of(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    quantile(&sorted, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        let s = TepsStats::from_samples(&[5.0]);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.harmonic_mean, 5.0);
        assert_eq!(s.harmonic_stddev, 0.0);
    }

    #[test]
    fn median_of_odd_and_even() {
        let s = TepsStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.median, 2.0);
        let s = TepsStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_of_rates() {
        // Harmonic mean of (2, 6) = 2/(1/2 + 1/6) = 3.
        let s = TepsStats::from_samples(&[2.0, 6.0]);
        assert!((s.harmonic_mean - 3.0).abs() < 1e-12);
        // Harmonic mean never exceeds the arithmetic mean.
        assert!(s.harmonic_mean <= 4.0);
    }

    #[test]
    fn quartiles_bracket_median() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = TepsStats::from_samples(&samples);
        assert!(s.min <= s.first_quartile);
        assert!(s.first_quartile <= s.median);
        assert!(s.median <= s.third_quartile);
        assert!(s.third_quartile <= s.max);
        assert!((s.median - 50.5).abs() < 1e-9);
    }

    #[test]
    fn order_does_not_matter() {
        let a = TepsStats::from_samples(&[3.0, 1.0, 2.0]);
        let b = TepsStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_rejected() {
        TepsStats::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_sample_rejected() {
        TepsStats::from_samples(&[1.0, 0.0]);
    }

    #[test]
    fn report_contains_all_fields() {
        let r = TepsStats::from_samples(&[1e9, 2e9, 4e9]).to_report();
        for key in [
            "min_TEPS",
            "firstquartile_TEPS",
            "median_TEPS",
            "thirdquartile_TEPS",
            "max_TEPS",
            "harmonic_mean_TEPS",
            "harmonic_stddev_TEPS",
        ] {
            assert!(r.contains(key), "missing {key}");
        }
    }

    #[test]
    fn median_of_helper() {
        assert_eq!(median_of(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of(&[1.0]), 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Harmonic mean is bounded by min and max, and the quantile
            /// chain is monotone, for arbitrary positive samples.
            #[test]
            fn invariants(samples in proptest::collection::vec(0.001f64..1e12, 1..100)) {
                let s = TepsStats::from_samples(&samples);
                // Relative tolerance: reciprocal round-trips lose ulps at 1e12.
                let tol = |x: f64| x * 1e-9 + 1e-9;
                prop_assert!(s.min <= s.first_quartile + tol(s.first_quartile));
                prop_assert!(s.first_quartile <= s.median + tol(s.median));
                prop_assert!(s.median <= s.third_quartile + tol(s.third_quartile));
                prop_assert!(s.third_quartile <= s.max + tol(s.max));
                prop_assert!(s.harmonic_mean >= s.min - tol(s.min));
                prop_assert!(s.harmonic_mean <= s.max + tol(s.max));
            }
        }
    }
}
