//! Deterministic, splittable random number generation.
//!
//! The Kronecker generator must be **parallel and reproducible**: edge `i`
//! must come out identical no matter how work is divided among threads. We
//! derive an independent stream per edge by seeding a small xoshiro-family
//! generator from `splitmix64(seed, i)` — the standard recipe for
//! decorrelated parallel streams — rather than sharing one sequential RNG.

/// Stateless SplitMix64 step: hash `(seed, index)` into a well-mixed u64.
#[inline]
pub fn splitmix64(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — a small, fast, high-quality PRNG (Blackman & Vigna).
/// Implemented locally so generated graphs are stable across `rand` crate
/// versions.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via four SplitMix64 draws (never all-zero).
    pub fn seed_from(seed: u64, stream: u64) -> Self {
        let base = splitmix64(seed, stream);
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            *slot = splitmix64(base, i as u64 + 1);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53-bit mantissa).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via 128-bit multiply (unbiased
    /// enough for graph sampling).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A boolean coin flip.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_sensitive() {
        assert_eq!(splitmix64(42, 0), splitmix64(42, 0));
        assert_ne!(splitmix64(42, 0), splitmix64(42, 1));
        assert_ne!(splitmix64(42, 0), splitmix64(43, 0));
    }

    #[test]
    fn xoshiro_streams_are_deterministic() {
        let mut a = Xoshiro256::seed_from(7, 3);
        let mut b = Xoshiro256::seed_from(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_streams_decorrelate() {
        let mut a = Xoshiro256::seed_from(7, 0);
        let mut b = Xoshiro256::seed_from(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from(1, 1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_roughly_uniform() {
        let mut r = Xoshiro256::seed_from(99, 0);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256::seed_from(5, 5);
        for bound in [1u64, 2, 7, 1000, 1 << 40] {
            for _ in 0..1000 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_hits_all_small_values() {
        let mut r = Xoshiro256::seed_from(11, 0);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
