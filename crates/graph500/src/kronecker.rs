//! Kronecker (R-MAT) edge-list generation — Graph500 Step 1.
//!
//! Each of the `M = N·edge_factor` edges is generated independently: at
//! every one of the `SCALE` recursion levels a quadrant of the adjacency
//! matrix is chosen with the Graph500 initiator probabilities
//! `(A, B, C, D) = (0.57, 0.19, 0.19, 0.05)`; the resulting labels are then
//! scrambled ([`crate::Scrambler`]) and the edge direction randomized, so
//! vertex IDs carry no structural hints. Because every edge has its own
//! RNG stream derived from `(seed, edge_index)`, generation is
//! embarrassingly parallel *and* bit-reproducible for a given seed.

use rayon::prelude::*;

use crate::edge_list::MemEdgeList;
use crate::rng::Xoshiro256;
use crate::scramble::Scrambler;
use crate::VertexId;

/// Parameters of a Kronecker graph instance.
///
/// ```
/// use sembfs_graph500::KroneckerParams;
///
/// let params = KroneckerParams::graph500(10, 42);
/// assert_eq!(params.num_vertices(), 1024);
/// assert_eq!(params.num_edges(), 16_384);
///
/// let edges = params.generate();
/// // Deterministic in the seed:
/// assert_eq!(edges, params.generate());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KroneckerParams {
    /// `N = 2^scale` vertices.
    pub scale: u32,
    /// `M = N · edge_factor` edges.
    pub edge_factor: u64,
    /// Initiator matrix probabilities; must sum to 1.
    pub a: f64,
    /// Probability of the upper-right quadrant.
    pub b: f64,
    /// Probability of the lower-left quadrant.
    pub c: f64,
    /// Probability of the lower-right quadrant.
    pub d: f64,
    /// Generator seed; also seeds the label scrambler.
    pub seed: u64,
}

impl KroneckerParams {
    /// Graph500-compliant parameters at a given scale and seed
    /// (edge factor 16, initiator `(0.57, 0.19, 0.19, 0.05)`).
    pub fn graph500(scale: u32, seed: u64) -> Self {
        Self {
            scale,
            edge_factor: crate::DEFAULT_EDGE_FACTOR,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            seed,
        }
    }

    /// Override the edge factor.
    pub fn with_edge_factor(mut self, edge_factor: u64) -> Self {
        self.edge_factor = edge_factor;
        self
    }

    /// Number of vertices `N = 2^scale`.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of generated (undirected) edges `M`.
    pub fn num_edges(&self) -> u64 {
        self.num_vertices() * self.edge_factor
    }

    /// The scrambler applied to vertex labels.
    pub fn scrambler(&self) -> Scrambler {
        Scrambler::new(self.scale, self.seed ^ 0x5CA8_B1E5_CA8B_1E55)
    }

    /// Generate edge `i` (deterministic in `(seed, i)`).
    pub fn edge(&self, i: u64) -> (VertexId, VertexId) {
        self.edge_with(i, &self.scrambler())
    }

    /// Generate edge `i` reusing a precomputed scrambler (hot path).
    #[inline]
    pub fn edge_with(&self, i: u64, s: &Scrambler) -> (VertexId, VertexId) {
        let mut rng = Xoshiro256::seed_from(self.seed, i);
        let (mut u, mut v) = (0u64, 0u64);
        let ab = self.a + self.b;
        let abc = ab + self.c;
        for _ in 0..self.scale {
            let r = rng.next_f64();
            let (bit_u, bit_v) = if r < self.a {
                (0, 0)
            } else if r < ab {
                (0, 1)
            } else if r < abc {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | bit_u;
            v = (v << 1) | bit_v;
        }
        let (mut u, mut v) = (s.apply(u), s.apply(v));
        if rng.next_bool() {
            std::mem::swap(&mut u, &mut v);
        }
        (u as VertexId, v as VertexId)
    }

    /// Generate the full edge list in parallel into DRAM.
    pub fn generate(&self) -> MemEdgeList {
        let m = self.num_edges();
        let s = self.scrambler();
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .into_par_iter()
            .map(|i| self.edge_with(i, &s))
            .collect();
        MemEdgeList::new(self.num_vertices(), edges)
    }

    /// Generate edges `[start, end)` in parallel (for chunked/streaming
    /// generation when the full list must not be materialized).
    pub fn generate_range(&self, start: u64, end: u64) -> Vec<(VertexId, VertexId)> {
        let s = self.scrambler();
        (start..end)
            .into_par_iter()
            .map(|i| self.edge_with(i, &s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;

    #[test]
    fn graph500_defaults() {
        let p = KroneckerParams::graph500(10, 1);
        assert_eq!(p.num_vertices(), 1024);
        assert_eq!(p.num_edges(), 16_384);
        assert!((p.a + p.b + p.c + p.d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = KroneckerParams::graph500(8, 42);
        let a = p.generate();
        let b = p.generate();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn seeds_change_the_graph() {
        let a = KroneckerParams::graph500(8, 1).generate();
        let b = KroneckerParams::graph500(8, 2).generate();
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn edges_in_range() {
        let p = KroneckerParams::graph500(9, 7);
        let el = p.generate();
        let n = p.num_vertices() as VertexId;
        for &(u, v) in el.as_slice() {
            assert!(u < n && v < n);
        }
        assert_eq!(el.num_edges(), p.num_edges());
    }

    #[test]
    fn generate_range_matches_full_generation() {
        let p = KroneckerParams::graph500(7, 5);
        let full = p.generate();
        let part = p.generate_range(100, 200);
        assert_eq!(&full.as_slice()[100..200], &part[..]);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Kronecker graphs are scale-free-ish: max degree must far exceed
        // the mean (16·2 endpoints per vertex on average).
        let p = KroneckerParams::graph500(12, 3);
        let el = p.generate();
        let mut deg = vec![0u64; p.num_vertices() as usize];
        for &(u, v) in el.as_slice() {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<u64>() as f64 / deg.len() as f64;
        assert!(max as f64 > 10.0 * mean, "max {max} vs mean {mean}");
        // Scrambling must spread the hubs: the top-degree vertex should not
        // always be vertex 0.
        let argmax = deg.iter().enumerate().max_by_key(|(_, &d)| d).unwrap().0;
        let _ = argmax; // any position is legal; just ensure it computed
    }

    #[test]
    fn direction_is_randomized() {
        let p = KroneckerParams::graph500(10, 9);
        let el = p.generate();
        let forward = el.as_slice().iter().filter(|(u, v)| u < v).count();
        let ratio = forward as f64 / el.num_edges() as f64;
        assert!((0.4..0.6).contains(&ratio), "direction bias: {ratio}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Per-edge generation is stable and in-range for any seed.
            #[test]
            fn edge_reproducible(scale in 1u32..16, seed: u64, i in 0u64..10_000) {
                let p = KroneckerParams::graph500(scale, seed);
                let e1 = p.edge(i);
                let e2 = p.edge(i);
                prop_assert_eq!(e1, e2);
                let n = p.num_vertices() as VertexId;
                prop_assert!(e1.0 < n && e1.1 < n);
            }
        }
    }
}
