//! The 4-step Graph500 benchmark driver (§II).
//!
//! Orchestrates root selection and the timed BFS+validation rounds. The
//! BFS kernel itself is supplied as a closure so the driver works with any
//! of the `sembfs-core` searchers (hybrid, top-down-only, bottom-up-only,
//! reference) over any scenario — it only cares about the parent array,
//! the traversed-edge count, and the elapsed time.

use std::time::Duration;

use crate::edge_list::EdgeList;
use crate::rng::Xoshiro256;
use crate::stats::TepsStats;
use crate::validate::{validate_bfs_tree, ValidationError};
use crate::VertexId;

/// Problem specification for one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// `N = 2^scale` vertices.
    pub scale: u32,
    /// `M = N · edge_factor` edges.
    pub edge_factor: u64,
    /// Number of BFS roots (64 in the official benchmark and the paper).
    pub num_roots: usize,
    /// Seed for generation and root selection.
    pub seed: u64,
}

impl BenchmarkSpec {
    /// An official-shaped spec (edge factor 16, 64 roots).
    pub fn official(scale: u32, seed: u64) -> Self {
        Self {
            scale,
            edge_factor: crate::DEFAULT_EDGE_FACTOR,
            num_roots: crate::OFFICIAL_NUM_ROOTS,
            seed,
        }
    }

    /// A reduced spec for tests and quick runs.
    pub fn quick(scale: u32, num_roots: usize, seed: u64) -> Self {
        Self {
            scale,
            edge_factor: crate::DEFAULT_EDGE_FACTOR,
            num_roots,
            seed,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.num_vertices() * self.edge_factor
    }

    /// The matching Kronecker generator parameters.
    pub fn kronecker(&self) -> crate::KroneckerParams {
        crate::KroneckerParams::graph500(self.scale, self.seed).with_edge_factor(self.edge_factor)
    }
}

/// Sample `count` distinct BFS roots with nonzero degree, as the official
/// benchmark does (a zero-degree root traverses no edges and would make
/// TEPS meaningless).
///
/// `degree(v)` supplies vertex degrees; sampling is deterministic in
/// `seed`. Panics if the graph has fewer than `count` vertices with edges.
pub fn select_roots(
    n: u64,
    count: usize,
    seed: u64,
    degree: impl Fn(VertexId) -> u64,
) -> Vec<VertexId> {
    assert!(n > 0, "cannot select roots from an empty graph");
    let mut rng = Xoshiro256::seed_from(seed, 0xB00F);
    let mut roots = Vec::with_capacity(count);
    let mut attempts = 0u64;
    // Distinctness via linear scan: `count` is 64 in practice.
    while roots.len() < count {
        attempts += 1;
        assert!(
            attempts < 100 * (count as u64 + 1) + 10 * n,
            "could not find {count} distinct roots with nonzero degree"
        );
        let v = rng.next_below(n) as VertexId;
        if degree(v) == 0 || roots.contains(&v) {
            continue;
        }
        roots.push(v);
    }
    roots
}

/// The measured result of one BFS round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootBfsOutcome {
    /// The start vertex.
    pub root: VertexId,
    /// Wall time of the BFS (excluding validation).
    pub elapsed: Duration,
    /// Edges traversed, as counted for TEPS (the official convention:
    /// the number of *input* edges within the traversed component).
    pub traversed_edges: u64,
    /// `traversed_edges / elapsed`.
    pub teps: f64,
}

impl RootBfsOutcome {
    /// Build an outcome, computing TEPS.
    pub fn new(root: VertexId, elapsed: Duration, traversed_edges: u64) -> Self {
        let secs = elapsed.as_secs_f64();
        let teps = if secs > 0.0 {
            traversed_edges as f64 / secs
        } else {
            0.0
        };
        Self {
            root,
            elapsed,
            traversed_edges,
            teps,
        }
    }
}

/// Aggregated result of a multi-root benchmark run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-root outcomes, in execution order.
    pub outcomes: Vec<RootBfsOutcome>,
    /// TEPS distribution across roots.
    pub teps_stats: TepsStats,
}

impl RunSummary {
    /// Summarize a set of outcomes.
    ///
    /// # Panics
    /// Panics if `outcomes` is empty or any outcome has zero TEPS.
    pub fn from_outcomes(outcomes: Vec<RootBfsOutcome>) -> Self {
        let teps: Vec<f64> = outcomes.iter().map(|o| o.teps).collect();
        let teps_stats = TepsStats::from_samples(&teps);
        Self {
            outcomes,
            teps_stats,
        }
    }

    /// The official score: median TEPS.
    pub fn median_teps(&self) -> f64 {
        self.teps_stats.median
    }

    /// Mean traversed edges per root (Fig. 10's quantity).
    pub fn mean_traversed_edges(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.traversed_edges as f64)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }
}

/// Run `bfs` once per root, validating every round against `edges`
/// (the benchmark's Step 3 + Step 4 loop).
///
/// `bfs(root)` must return the parent array, the traversed-edge count, and
/// the kernel's elapsed time. Validation failures abort the run.
pub fn run_rounds(
    roots: &[VertexId],
    edges: &dyn EdgeList,
    mut bfs: impl FnMut(VertexId) -> (Vec<VertexId>, u64, Duration),
) -> Result<RunSummary, ValidationError> {
    let mut outcomes = Vec::with_capacity(roots.len());
    for &root in roots {
        let (parent, traversed, elapsed) = bfs(root);
        validate_bfs_tree(&parent, root, edges)?;
        outcomes.push(RootBfsOutcome::new(root, elapsed, traversed));
    }
    Ok(RunSummary::from_outcomes(outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::MemEdgeList;
    use crate::INVALID_PARENT;

    #[test]
    fn spec_arithmetic() {
        let s = BenchmarkSpec::official(27, 1);
        assert_eq!(s.num_vertices(), 1 << 27);
        assert_eq!(s.num_edges(), 1 << 31); // the paper's SCALE 27 instance
        assert_eq!(s.num_roots, 64);
    }

    #[test]
    fn roots_are_distinct_and_nonzero_degree() {
        let deg = |v: VertexId| if v.is_multiple_of(3) { 0 } else { 5 };
        let roots = select_roots(1000, 64, 42, deg);
        assert_eq!(roots.len(), 64);
        let mut sorted = roots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "roots must be distinct");
        assert!(roots.iter().all(|&v| !v.is_multiple_of(3)));
    }

    #[test]
    fn root_selection_deterministic() {
        let deg = |_| 1u64;
        assert_eq!(select_roots(100, 10, 7, deg), select_roots(100, 10, 7, deg));
        assert_ne!(select_roots(100, 10, 7, deg), select_roots(100, 10, 8, deg));
    }

    #[test]
    #[should_panic(expected = "distinct roots")]
    fn impossible_selection_panics() {
        select_roots(10, 5, 1, |_| 0);
    }

    #[test]
    fn outcome_teps() {
        let o = RootBfsOutcome::new(3, Duration::from_millis(500), 1_000_000);
        assert!((o.teps - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn run_rounds_validates_and_summarizes() {
        // Star graph centered on 0.
        let el = MemEdgeList::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let summary = run_rounds(&[0, 0, 0], &el, |root| {
            assert_eq!(root, 0);
            (vec![0, 0, 0, 0, 0], 4, Duration::from_millis(1))
        })
        .unwrap();
        assert_eq!(summary.outcomes.len(), 3);
        assert!((summary.mean_traversed_edges() - 4.0).abs() < 1e-12);
        assert!(summary.median_teps() > 0.0);
    }

    #[test]
    fn run_rounds_rejects_bad_tree() {
        let el = MemEdgeList::new(3, vec![(0, 1), (1, 2)]);
        // Claims 2 is unvisited although it is reachable.
        let r = run_rounds(&[0], &el, |_| {
            (vec![0, 0, INVALID_PARENT], 1, Duration::from_millis(1))
        });
        assert!(r.is_err());
    }
}
