//! Graph500 benchmark substrate for `sembfs`.
//!
//! The paper evaluates everything through the Graph500 benchmark (§II):
//!
//! 1. **Edge list generation** — a Kronecker graph with `N = 2^SCALE`
//!    vertices and `M = N · edge_factor` edges ([`kronecker`]).
//! 2. **Graph construction** — handled by `sembfs-csr` on top of the edge
//!    lists defined here ([`edge_list`]).
//! 3. **BFS** — 64 random start vertices; performance is measured in TEPS
//!    ([`stats`], [`driver`]).
//! 4. **Validation** — the BFS tree is checked against the edge list
//!    ([`validate`]).
//!
//! The edge list can live in DRAM ([`edge_list::MemEdgeList`]) or on
//! (simulated) NVM ([`edge_list::ExtEdgeList`]) exactly as in §V-A Step 1,
//! where the generated list is offloaded and later re-read for graph
//! construction and validation.

pub mod driver;
pub mod edge_list;
pub mod kronecker;
pub mod rng;
pub mod scramble;
pub mod stats;
pub mod validate;

pub use driver::{select_roots, BenchmarkSpec, RootBfsOutcome, RunSummary};
pub use edge_list::{EdgeList, ExtEdgeList, MemEdgeList};
pub use kronecker::KroneckerParams;
pub use scramble::Scrambler;
pub use stats::TepsStats;
pub use validate::{validate_bfs_tree, ValidationError};

/// A vertex identifier. Graph500 SCALEs through 31 fit in `u32`
/// (the paper runs SCALE 26/27).
pub type VertexId = u32;

/// Parent-array entry marking "not visited".
pub const INVALID_PARENT: VertexId = VertexId::MAX;

/// Default Graph500 edge factor (`M = 16·N`).
pub const DEFAULT_EDGE_FACTOR: u64 = 16;

/// Number of BFS roots the official benchmark runs (and the paper uses).
pub const OFFICIAL_NUM_ROOTS: usize = 64;
