//! BFS-tree validation — Graph500 Step 4.
//!
//! The official benchmark does not trust the BFS kernel: after every
//! search it checks the produced parent array against the *edge list*
//! (which in the paper's layout lives on NVM and is streamed back for
//! this step, §V-A Step 4). The checks, per the specification:
//!
//! 1. the root is its own parent, and every other visited vertex's parent
//!    chain reaches the root without cycles;
//! 2. levels derived from the parent chain increase by exactly one per hop
//!    (implicit in the chain resolution);
//! 3. no graph edge connects a visited and an unvisited vertex (the tree
//!    spans the entire connected component of the root);
//! 4. no graph edge spans more than one BFS level;
//! 5. every claimed tree edge `(parent[v], v)` actually exists in the
//!    graph.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::edge_list::EdgeList;
use crate::{VertexId, INVALID_PARENT};

/// Level value marking "not visited".
pub const INVALID_LEVEL: u32 = u32::MAX;

/// Ways a BFS tree can fail validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// `parent[root] != root`.
    RootParentMismatch {
        /// The BFS root.
        root: VertexId,
    },
    /// A parent pointer references a vertex id `>= n`.
    ParentOutOfRange {
        /// The offending vertex.
        v: VertexId,
    },
    /// A non-root vertex is its own parent.
    SelfParent {
        /// The offending vertex.
        v: VertexId,
    },
    /// A visited vertex's parent is unvisited.
    ParentUnvisited {
        /// The offending vertex.
        v: VertexId,
    },
    /// The parent chain from `v` never reaches the root.
    Cycle {
        /// A vertex on the cycle.
        v: VertexId,
    },
    /// A graph edge connects a visited and an unvisited vertex.
    EdgeCrossesFrontier {
        /// Visited endpoint.
        visited: VertexId,
        /// Unvisited endpoint.
        unvisited: VertexId,
    },
    /// A graph edge spans more than one BFS level.
    LevelGap {
        /// One endpoint.
        u: VertexId,
        /// Other endpoint.
        v: VertexId,
    },
    /// A tree edge `(parent[v], v)` does not exist in the graph.
    PhantomTreeEdge {
        /// The child of the phantom edge.
        v: VertexId,
    },
    /// The underlying storage failed while streaming the edge list.
    Storage(String),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RootParentMismatch { root } => write!(f, "root {root} is not its own parent"),
            Self::ParentOutOfRange { v } => write!(f, "vertex {v} has out-of-range parent"),
            Self::SelfParent { v } => write!(f, "non-root vertex {v} is its own parent"),
            Self::ParentUnvisited { v } => write!(f, "vertex {v} has an unvisited parent"),
            Self::Cycle { v } => write!(f, "parent chain through {v} never reaches the root"),
            Self::EdgeCrossesFrontier { visited, unvisited } => {
                write!(
                    f,
                    "edge ({visited}, {unvisited}) crosses the visited boundary"
                )
            }
            Self::LevelGap { u, v } => write!(f, "edge ({u}, {v}) spans more than one level"),
            Self::PhantomTreeEdge { v } => {
                write!(f, "tree edge to {v} does not exist in the graph")
            }
            Self::Storage(e) => write!(f, "storage error during validation: {e}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Outcome of a successful validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Number of visited vertices (size of the root's component).
    pub visited: u64,
    /// Deepest BFS level reached.
    pub max_level: u32,
    /// Per-vertex levels ([`INVALID_LEVEL`] for unvisited vertices).
    pub levels: Vec<u32>,
}

/// Derive per-vertex levels from the parent array, verifying chain
/// integrity (checks 1 and 2).
pub fn compute_levels(parent: &[VertexId], root: VertexId) -> Result<Vec<u32>, ValidationError> {
    let n = parent.len();
    if parent[root as usize] != root {
        return Err(ValidationError::RootParentMismatch { root });
    }
    let mut levels = vec![INVALID_LEVEL; n];
    levels[root as usize] = 0;
    // Transient marker for "on the current chain" (cycle detection).
    const IN_PROGRESS: u32 = u32::MAX - 1;

    let mut stack: Vec<u32> = Vec::new();
    for v0 in 0..n {
        if parent[v0] == INVALID_PARENT || levels[v0] != INVALID_LEVEL {
            continue;
        }
        // Walk up the chain until a resolved vertex (or an error).
        stack.clear();
        let mut v = v0 as VertexId;
        let base_level = loop {
            let p = parent[v as usize];
            if p == INVALID_PARENT {
                // The chain stepped onto an unvisited vertex; the violation
                // belongs to the child that pointed here.
                let child = stack.last().copied().unwrap_or(v);
                return Err(ValidationError::ParentUnvisited { v: child });
            }
            if p as usize >= n {
                return Err(ValidationError::ParentOutOfRange { v });
            }
            if p == v {
                // Self-parent: legal only for the root, whose level is
                // already resolved, so reaching here means a non-root.
                return Err(ValidationError::SelfParent { v });
            }
            levels[v as usize] = IN_PROGRESS;
            stack.push(v);
            match levels[p as usize] {
                INVALID_LEVEL => v = p,
                IN_PROGRESS => return Err(ValidationError::Cycle { v: p }),
                l => break l,
            }
        };
        // Unwind: deepest-pushed vertex is closest to the resolved ancestor.
        let mut level = base_level;
        for &w in stack.iter().rev() {
            level += 1;
            levels[w as usize] = level;
        }
    }
    Ok(levels)
}

/// Validate `parent` as a BFS tree of `edges` rooted at `root`
/// (all five specification checks). Streams the edge list in parallel.
pub fn validate_bfs_tree(
    parent: &[VertexId],
    root: VertexId,
    edges: &dyn EdgeList,
) -> Result<ValidationReport, ValidationError> {
    let n = parent.len();
    assert!(
        (root as usize) < n,
        "root {root} out of range for {n} vertices"
    );
    let levels = compute_levels(parent, root)?;

    // Confirmation bitmap: bit v set when the tree edge (parent[v], v) has
    // been witnessed in the edge list.
    let confirmed: Vec<AtomicU64> = (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
    let confirm = |v: VertexId| {
        confirmed[v as usize / 64].fetch_or(1u64 << (v % 64), Ordering::Relaxed);
    };

    // First typed violation found by any worker; the edge scan itself
    // short-circuits with a sentinel storage error once one is recorded.
    let violation = std::sync::Mutex::new(None::<ValidationError>);
    let fail = |err: ValidationError| -> sembfs_semext::Result<()> {
        let mut slot = violation.lock().expect("violation mutex");
        slot.get_or_insert(err);
        Err(sembfs_semext::Error::Corrupt("validation violation".into()))
    };

    let scan = edges.par_visit_chunks(1 << 16, &|_, chunk| {
        for &(u, v) in chunk {
            let (lu, lv) = (levels[u as usize], levels[v as usize]);
            match (lu == INVALID_LEVEL, lv == INVALID_LEVEL) {
                (true, true) => continue,
                (false, true) => {
                    return fail(ValidationError::EdgeCrossesFrontier {
                        visited: u,
                        unvisited: v,
                    })
                }
                (true, false) => {
                    return fail(ValidationError::EdgeCrossesFrontier {
                        visited: v,
                        unvisited: u,
                    })
                }
                (false, false) => {}
            }
            if lu.abs_diff(lv) > 1 {
                return fail(ValidationError::LevelGap { u, v });
            }
            if parent[v as usize] == u && lv == lu + 1 {
                confirm(v);
            }
            if parent[u as usize] == v && lu == lv + 1 {
                confirm(u);
            }
        }
        Ok(())
    });
    if let Some(err) = violation.into_inner().expect("violation mutex") {
        return Err(err);
    }
    scan.map_err(|e| ValidationError::Storage(e.to_string()))?;

    // Every visited non-root vertex needs a witnessed tree edge.
    let mut visited = 0u64;
    let mut max_level = 0u32;
    for v in 0..n {
        if levels[v] == INVALID_LEVEL {
            continue;
        }
        visited += 1;
        max_level = max_level.max(levels[v]);
        if v as VertexId != root {
            let word = confirmed[v / 64].load(Ordering::Relaxed);
            if word & (1u64 << (v % 64)) == 0 {
                return Err(ValidationError::PhantomTreeEdge { v: v as VertexId });
            }
        }
    }
    Ok(ValidationReport {
        visited,
        max_level,
        levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::MemEdgeList;
    use crate::INVALID_PARENT as X;

    /// Path graph 0-1-2-3 plus an extra edge 1-3? No: keep a simple tree
    /// testbed. Graph: 0-1, 1-2, 2-3, 0-2.
    fn graph() -> MemEdgeList {
        MemEdgeList::new(5, vec![(0, 1), (1, 2), (2, 3), (0, 2)])
    }

    #[test]
    fn valid_tree_passes() {
        // BFS from 0: 1 and 2 at level 1, 3 at level 2, 4 unvisited.
        let parent = vec![0, 0, 0, 2, X];
        let report = validate_bfs_tree(&parent, 0, &graph()).unwrap();
        assert_eq!(report.visited, 4);
        assert_eq!(report.max_level, 2);
        assert_eq!(report.levels, vec![0, 1, 1, 2, INVALID_LEVEL]);
    }

    #[test]
    fn root_must_be_self_parent() {
        let parent = vec![1, 0, 0, 2, X];
        assert_eq!(
            validate_bfs_tree(&parent, 0, &graph()),
            Err(ValidationError::RootParentMismatch { root: 0 })
        );
    }

    #[test]
    fn cycle_is_detected() {
        // 1 and 2 parent each other; disconnected from the root's chain.
        let el = MemEdgeList::new(5, vec![(0, 4), (1, 2)]);
        let parent = vec![0, 2, 1, X, 0];
        assert!(matches!(
            validate_bfs_tree(&parent, 0, &el),
            Err(ValidationError::Cycle { .. })
        ));
    }

    #[test]
    fn self_parent_non_root_rejected() {
        let el = MemEdgeList::new(3, vec![(0, 1)]);
        let parent = vec![0, 0, 2];
        assert_eq!(
            validate_bfs_tree(&parent, 0, &el),
            Err(ValidationError::SelfParent { v: 2 })
        );
    }

    #[test]
    fn unvisited_parent_rejected() {
        let el = MemEdgeList::new(4, vec![(0, 1), (2, 3)]);
        // 3's parent is 2, but 2 is unvisited.
        let parent = vec![0, 0, X, 2];
        assert_eq!(
            validate_bfs_tree(&parent, 0, &el),
            Err(ValidationError::ParentUnvisited { v: 3 })
        );
    }

    #[test]
    fn missed_component_vertex_rejected() {
        // Edge 2-3 exists, 2 visited, 3 not: BFS missed a vertex.
        let parent = vec![0, 0, 0, X, X];
        assert_eq!(
            validate_bfs_tree(&parent, 0, &graph()),
            Err(ValidationError::EdgeCrossesFrontier {
                visited: 2,
                unvisited: 3
            })
        );
    }

    #[test]
    fn phantom_tree_edge_rejected() {
        // Claim 3's parent is 0, but edge (0,3) is not in the graph.
        // Level check alone cannot catch it (level 1 is adjacent to 0), so
        // the witness check must.
        let el = MemEdgeList::new(4, vec![(0, 1), (1, 3), (0, 2)]);
        let parent = vec![0, 0, 0, 0];
        assert_eq!(
            validate_bfs_tree(&parent, 0, &el),
            Err(ValidationError::PhantomTreeEdge { v: 3 })
        );
    }

    #[test]
    fn level_gap_rejected() {
        // Path 0-1-2 plus edge 0-3-... construct: claim 2 at level 2 via 1,
        // but graph also has edge (0, 2)? That would make the tree wrong
        // only if BFS should have found 2 at level 1 — exactly the level
        // gap check. Use: edges 0-1, 1-2, 0-2; parent: 2 via 1 (level 2).
        let el = MemEdgeList::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        let parent = vec![0, 0, 1];
        let err = validate_bfs_tree(&parent, 0, &el).unwrap_err();
        assert_eq!(err, ValidationError::LevelGap { u: 0, v: 2 });
    }

    #[test]
    fn self_loops_are_harmless() {
        let el = MemEdgeList::new(2, vec![(0, 0), (0, 1), (1, 1)]);
        let parent = vec![0, 0];
        let report = validate_bfs_tree(&parent, 0, &el).unwrap();
        assert_eq!(report.visited, 2);
    }

    #[test]
    fn single_vertex_graph() {
        let el = MemEdgeList::new(1, vec![]);
        let parent = vec![0];
        let report = validate_bfs_tree(&parent, 0, &el).unwrap();
        assert_eq!(report.visited, 1);
        assert_eq!(report.max_level, 0);
    }

    #[test]
    fn nonzero_root_works() {
        let parent = vec![2, 2, 2, 2, X];
        let report = validate_bfs_tree(&parent, 2, &graph()).unwrap();
        assert_eq!(report.levels[2], 0);
        assert_eq!(report.visited, 4);
    }

    #[test]
    fn deep_chain_levels() {
        // Long path: ensures the iterative chain resolution handles depth.
        let n = 10_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let el = MemEdgeList::new(n as u64, edges);
        let mut parent: Vec<u32> = (0..n).map(|i| i.saturating_sub(1)).collect();
        parent[0] = 0;
        let report = validate_bfs_tree(&parent, 0, &el).unwrap();
        assert_eq!(report.max_level, n - 1);
        assert_eq!(report.visited, n as u64);
    }
}
