//! Edge lists in DRAM and on semi-external memory.
//!
//! §V-A Step 1: the generated edge list is *offloaded to NVM*, then read
//! back in a streaming fashion during graph construction (Step 2) and
//! validation (Step 4). [`MemEdgeList`] is the in-DRAM representation;
//! [`ExtEdgeList`] stores each edge as a packed little-endian `u64`
//! (`src << 32 | dst`) in any [`ReadAt`] store — a plain file, or a
//! metered [`NvmStore`](sembfs_semext::NvmStore) so edge-list traffic
//! shows up in the device statistics.

use rayon::prelude::*;
use sembfs_semext::ext_array::{write_array_stream, ExtArray, LeBytes};
use sembfs_semext::{Error, FileBackend, ReadAt, Result};
use std::path::Path;

use crate::kronecker::KroneckerParams;
use crate::VertexId;

/// Pack an edge into the on-disk `u64` format.
#[inline]
pub fn pack_edge(u: VertexId, v: VertexId) -> u64 {
    ((u as u64) << 32) | v as u64
}

/// Unpack an on-disk `u64` into an edge.
#[inline]
pub fn unpack_edge(e: u64) -> (VertexId, VertexId) {
    ((e >> 32) as VertexId, e as VertexId)
}

/// Sequential chunk visitor: receives each chunk of edges in order.
pub type ChunkVisitor<'a> = dyn FnMut(&[(VertexId, VertexId)]) -> Result<()> + 'a;

/// Parallel chunk visitor: receives `(chunk_start_edge_index, edges)`.
pub type ParChunkVisitor<'a> = dyn Fn(u64, &[(VertexId, VertexId)]) -> Result<()> + Sync + 'a;

/// A source of undirected edges, visitable in chunks.
///
/// Chunked visitation is the only access pattern the pipeline needs
/// (construction and validation both stream the list), and it is the only
/// pattern an external list can serve efficiently.
pub trait EdgeList: Send + Sync {
    /// Number of edges `M`.
    fn num_edges(&self) -> u64;

    /// Number of vertices `N` in the graph the list belongs to.
    fn num_vertices(&self) -> u64;

    /// Visit all edges sequentially in chunks of at most `chunk_edges`.
    fn visit_chunks(&self, chunk_edges: usize, f: &mut ChunkVisitor<'_>) -> Result<()>;

    /// Visit all edges in parallel, one chunk of at most `chunk_edges` per
    /// task. `f` receives `(chunk_start_edge_index, edges)`.
    fn par_visit_chunks(&self, chunk_edges: usize, f: &ParChunkVisitor<'_>) -> Result<()>;
}

/// An edge list held in DRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemEdgeList {
    num_vertices: u64,
    edges: Vec<(VertexId, VertexId)>,
}

impl MemEdgeList {
    /// Wrap an edge vector for a graph of `num_vertices` vertices.
    pub fn new(num_vertices: u64, edges: Vec<(VertexId, VertexId)>) -> Self {
        Self {
            num_vertices,
            edges,
        }
    }

    /// Borrow the edges.
    pub fn as_slice(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// In-memory size in bytes (tuple representation, as in Fig. 3's
    /// "Edge List" series).
    pub fn byte_size(&self) -> u64 {
        self.edges.len() as u64 * std::mem::size_of::<(VertexId, VertexId)>() as u64
    }
}

impl EdgeList for MemEdgeList {
    fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    fn visit_chunks(&self, chunk_edges: usize, f: &mut ChunkVisitor<'_>) -> Result<()> {
        for chunk in self.edges.chunks(chunk_edges.max(1)) {
            f(chunk)?;
        }
        Ok(())
    }

    fn par_visit_chunks(&self, chunk_edges: usize, f: &ParChunkVisitor<'_>) -> Result<()> {
        let chunk_edges = chunk_edges.max(1);
        self.edges
            .par_chunks(chunk_edges)
            .enumerate()
            .try_for_each(|(i, chunk)| f((i * chunk_edges) as u64, chunk))
    }
}

/// An edge list stored on (semi-)external memory as packed `u64`s.
#[derive(Debug)]
pub struct ExtEdgeList<R> {
    arr: ExtArray<u64, R>,
    num_vertices: u64,
}

impl<R: ReadAt> ExtEdgeList<R> {
    /// Interpret `store` as a packed edge array for a graph of
    /// `num_vertices` vertices.
    pub fn new(store: R, num_vertices: u64) -> Result<Self> {
        Ok(Self {
            arr: ExtArray::new(store)?,
            num_vertices,
        })
    }

    /// On-storage size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.arr.len() * u64::SIZE as u64
    }

    fn read_chunk(
        &self,
        start: u64,
        len: usize,
        packed: &mut Vec<u64>,
        scratch: &mut Vec<u8>,
        out: &mut Vec<(VertexId, VertexId)>,
    ) -> Result<()> {
        packed.clear();
        packed.resize(len, 0);
        self.arr.read_slice(start, packed, scratch)?;
        out.clear();
        out.extend(packed.iter().map(|&e| unpack_edge(e)));
        Ok(())
    }
}

impl ExtEdgeList<FileBackend> {
    /// Open an edge-list file written by [`write_edge_file`].
    pub fn open(path: impl AsRef<Path>, num_vertices: u64) -> Result<Self> {
        Self::new(FileBackend::open(path)?, num_vertices)
    }
}

impl<R: ReadAt> EdgeList for ExtEdgeList<R> {
    fn num_edges(&self) -> u64 {
        self.arr.len()
    }

    fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    fn visit_chunks(&self, chunk_edges: usize, f: &mut ChunkVisitor<'_>) -> Result<()> {
        let chunk_edges = chunk_edges.max(1);
        let m = self.num_edges();
        let (mut packed, mut scratch, mut out) = (Vec::new(), Vec::new(), Vec::new());
        let mut start = 0u64;
        while start < m {
            let len = chunk_edges.min((m - start) as usize);
            self.read_chunk(start, len, &mut packed, &mut scratch, &mut out)?;
            f(&out)?;
            start += len as u64;
        }
        Ok(())
    }

    fn par_visit_chunks(&self, chunk_edges: usize, f: &ParChunkVisitor<'_>) -> Result<()> {
        let chunk_edges = chunk_edges.max(1) as u64;
        let m = self.num_edges();
        let num_chunks = m.div_ceil(chunk_edges);
        (0..num_chunks).into_par_iter().try_for_each_init(
            || (Vec::new(), Vec::new(), Vec::new()),
            |(packed, scratch, out), c| {
                let start = c * chunk_edges;
                let len = chunk_edges.min(m - start) as usize;
                self.read_chunk(start, len, packed, scratch, out)?;
                f(start, out)
            },
        )
    }
}

/// Write `edges` to `path` in the packed `u64` format ("offload the edge
/// list onto NVM", §V-A Step 1). Returns the edge count.
pub fn write_edge_file(
    path: impl AsRef<Path>,
    edges: impl Iterator<Item = (VertexId, VertexId)>,
) -> Result<u64> {
    write_array_stream(path, edges.map(|(u, v)| pack_edge(u, v)))
}

/// Generate a Kronecker edge list directly to a file in bounded memory:
/// edges are produced in parallel per chunk and streamed out chunk by
/// chunk. Returns the edge count.
pub fn generate_edge_file(
    params: &KroneckerParams,
    path: impl AsRef<Path>,
    chunk_edges: usize,
) -> Result<u64> {
    use std::io::Write;
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
    let m = params.num_edges();
    let chunk_edges = chunk_edges.max(1) as u64;
    let mut start = 0u64;
    let mut buf = Vec::new();
    while start < m {
        let end = (start + chunk_edges).min(m);
        let edges = params.generate_range(start, end);
        buf.clear();
        buf.reserve(edges.len() * 8);
        for (u, v) in edges {
            buf.extend_from_slice(&pack_edge(u, v).to_le_bytes());
        }
        w.write_all(&buf)?;
        start = end;
    }
    w.flush().map_err(Error::Io)?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sembfs_semext::{DelayMode, Device, DeviceProfile, NvmStore, TempDir};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sample_edges(n: usize) -> Vec<(VertexId, VertexId)> {
        (0..n as u32).map(|i| (i * 7 % 100, i * 13 % 100)).collect()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (u, v) in [(0u32, 0u32), (1, 2), (u32::MAX - 1, 7), (123_456, 654_321)] {
            assert_eq!(unpack_edge(pack_edge(u, v)), (u, v));
        }
    }

    #[test]
    fn mem_visit_chunks_sees_all_edges() {
        let el = MemEdgeList::new(100, sample_edges(250));
        let mut seen = Vec::new();
        el.visit_chunks(64, &mut |chunk| {
            seen.extend_from_slice(chunk);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, el.as_slice());
    }

    #[test]
    fn mem_par_visit_counts_edges() {
        let el = MemEdgeList::new(100, sample_edges(1000));
        let count = AtomicU64::new(0);
        el.par_visit_chunks(37, &|_, chunk| {
            count.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn ext_roundtrip_matches_mem() {
        let dir = TempDir::new("edge-list").unwrap();
        let path = dir.path().join("edges.bin");
        let edges = sample_edges(777);
        write_edge_file(&path, edges.iter().copied()).unwrap();

        let ext = ExtEdgeList::open(&path, 100).unwrap();
        assert_eq!(ext.num_edges(), 777);
        assert_eq!(ext.byte_size(), 777 * 8);

        let mut seen = Vec::new();
        ext.visit_chunks(100, &mut |chunk| {
            seen.extend_from_slice(chunk);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, edges);
    }

    #[test]
    fn ext_par_visit_chunk_offsets_are_correct() {
        let dir = TempDir::new("edge-par").unwrap();
        let path = dir.path().join("edges.bin");
        let edges = sample_edges(500);
        write_edge_file(&path, edges.iter().copied()).unwrap();
        let ext = ExtEdgeList::open(&path, 100).unwrap();

        let total = AtomicU64::new(0);
        ext.par_visit_chunks(64, &|start, chunk| {
            for (i, &e) in chunk.iter().enumerate() {
                assert_eq!(e, edges[start as usize + i]);
            }
            total.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn metered_edge_list_records_requests() {
        let dir = TempDir::new("edge-metered").unwrap();
        let path = dir.path().join("edges.bin");
        write_edge_file(&path, sample_edges(1000).into_iter()).unwrap();

        let dev = Device::new(DeviceProfile::intel_ssd_320(), DelayMode::Accounting);
        let store = NvmStore::new(FileBackend::open(&path).unwrap(), dev.clone());
        let ext = ExtEdgeList::new(store, 100).unwrap();
        let mut edges_seen = 0u64;
        ext.visit_chunks(128, &mut |chunk| {
            edges_seen += chunk.len() as u64;
            Ok(())
        })
        .unwrap();
        assert_eq!(edges_seen, 1000);
        let snap = dev.snapshot();
        assert_eq!(snap.requests, 8); // ceil(1000/128)
                                      // 8 logical reads of 1000 bytes each, accounted as physical 4 KiB
                                      // block-layer transfers.
        assert_eq!(snap.bytes, 8 * 4096);
    }

    #[test]
    fn generate_edge_file_matches_in_memory_generation() {
        let dir = TempDir::new("edge-gen").unwrap();
        let path = dir.path().join("kron.bin");
        let params = KroneckerParams::graph500(8, 99);
        let m = generate_edge_file(&params, &path, 1000).unwrap();
        assert_eq!(m, params.num_edges());

        let mem = params.generate();
        let ext = ExtEdgeList::open(&path, params.num_vertices()).unwrap();
        let mut seen = Vec::new();
        ext.visit_chunks(512, &mut |chunk| {
            seen.extend_from_slice(chunk);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, mem.as_slice());
    }

    #[test]
    fn error_propagates_from_visitor() {
        let el = MemEdgeList::new(10, sample_edges(10));
        let r = el.visit_chunks(4, &mut |_| Err(Error::Corrupt("stop".into())));
        assert!(r.is_err());
    }
}
