//! Vertex-label scrambling.
//!
//! Raw Kronecker/R-MAT output is heavily biased toward low vertex IDs
//! (vertex 0 is the hub). The Graph500 specification therefore applies a
//! pseudorandom permutation to vertex labels before the edge list is
//! emitted, so implementations cannot exploit label order. [`Scrambler`]
//! is an invertible mixing permutation on `SCALE`-bit integers built from
//! odd-constant multiplications and xor-shifts (each step is a bijection
//! mod `2^SCALE`, so the whole pipeline is a bijection).

/// An invertible pseudorandom permutation over `[0, 2^scale)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scrambler {
    scale: u32,
    mask: u64,
    mul1: u64,
    mul2: u64,
    xor1: u64,
    xor2: u64,
}

impl Scrambler {
    /// A permutation on `scale`-bit labels parameterized by `seed`.
    ///
    /// # Panics
    /// Panics unless `1 <= scale <= 32`.
    pub fn new(scale: u32, seed: u64) -> Self {
        assert!((1..=32).contains(&scale), "scale must be in 1..=32");
        let mask = if scale == 64 {
            u64::MAX
        } else {
            (1u64 << scale) - 1
        };
        // Odd multipliers are invertible mod 2^scale.
        let mul1 = (crate::rng::splitmix64(seed, 1) | 1) & mask | 1;
        let mul2 = (crate::rng::splitmix64(seed, 2) | 1) & mask | 1;
        let xor1 = crate::rng::splitmix64(seed, 3) & mask;
        let xor2 = crate::rng::splitmix64(seed, 4) & mask;
        Self {
            scale,
            mask,
            mul1,
            mul2,
            xor1,
            xor2,
        }
    }

    /// Number of label bits.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// Permute label `v` (must be `< 2^scale`).
    #[inline]
    pub fn apply(&self, v: u64) -> u64 {
        debug_assert!(v <= self.mask);
        let mut x = v;
        x = x.wrapping_mul(self.mul1) & self.mask;
        x ^= self.xor1;
        x = self.xorshift(x);
        x = x.wrapping_mul(self.mul2) & self.mask;
        x ^= self.xor2;
        x
    }

    /// Invert [`apply`](Self::apply).
    #[inline]
    pub fn invert(&self, v: u64) -> u64 {
        debug_assert!(v <= self.mask);
        let mut x = v;
        x ^= self.xor2;
        x = x.wrapping_mul(Self::mod_inverse(self.mul2)) & self.mask;
        x = self.xorshift_invert(x);
        x ^= self.xor1;
        x = x.wrapping_mul(Self::mod_inverse(self.mul1)) & self.mask;
        x
    }

    /// `x ^= x >> (scale/2)` — a bijection on scale-bit values.
    #[inline]
    fn xorshift(&self, x: u64) -> u64 {
        let sh = (self.scale / 2).max(1);
        (x ^ (x >> sh)) & self.mask
    }

    /// Invert the xorshift by repeated re-application.
    #[inline]
    fn xorshift_invert(&self, x: u64) -> u64 {
        let sh = (self.scale / 2).max(1);
        let mut y = x;
        let mut shift = sh;
        while shift < 64 {
            y = (x ^ (y >> sh)) & self.mask;
            shift += sh;
        }
        y
    }

    /// Multiplicative inverse of an odd number mod 2^64 (Newton's method),
    /// masked to the scale on use.
    fn mod_inverse(a: u64) -> u64 {
        debug_assert!(a & 1 == 1);
        let mut x = a; // correct to 3 bits
        for _ in 0..5 {
            x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_bijection_small_scales() {
        for scale in 1..=12u32 {
            let s = Scrambler::new(scale, 12345);
            let n = 1u64 << scale;
            let mut seen = vec![false; n as usize];
            for v in 0..n {
                let p = s.apply(v);
                assert!(p < n, "scale {scale}: {p} out of range");
                assert!(!seen[p as usize], "scale {scale}: collision at {p}");
                seen[p as usize] = true;
            }
        }
    }

    #[test]
    fn invert_undoes_apply() {
        for scale in [1u32, 5, 16, 27, 32] {
            let s = Scrambler::new(scale, 777);
            let n = 1u64 << scale;
            for v in [0u64, 1, 2, n / 3, n / 2, n - 1] {
                if v >= n {
                    continue;
                }
                assert_eq!(s.invert(s.apply(v)), v, "scale {scale}, v {v}");
                assert_eq!(s.apply(s.invert(v)), v, "scale {scale}, v {v}");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scrambler::new(20, 1);
        let b = Scrambler::new(20, 2);
        let distinct = (0..1000u64).filter(|&v| a.apply(v) != b.apply(v)).count();
        assert!(distinct > 900);
    }

    #[test]
    fn scramble_breaks_low_id_bias() {
        // Low input labels should scatter across the full range.
        let s = Scrambler::new(24, 42);
        let n = 1u64 << 24;
        let mut high_half = 0;
        for v in 0..1000u64 {
            if s.apply(v) >= n / 2 {
                high_half += 1;
            }
        }
        assert!(
            (350..=650).contains(&high_half),
            "poor scatter: {high_half}/1000"
        );
    }

    #[test]
    fn mod_inverse_is_inverse() {
        for a in [1u64, 3, 5, 0xDEAD_BEEF | 1, u64::MAX] {
            assert_eq!(a.wrapping_mul(Scrambler::mod_inverse(a)), 1);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        Scrambler::new(0, 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// apply∘invert is the identity for arbitrary labels/scales/seeds.
            #[test]
            fn roundtrip(scale in 1u32..=32, seed: u64, v: u64) {
                let s = Scrambler::new(scale, seed);
                let mask = (1u128 << scale) - 1;
                let v = (v as u128 & mask) as u64;
                prop_assert_eq!(s.invert(s.apply(v)), v);
            }
        }
    }
}
