//! The resident query engine: a bounded submission queue, a worker pool
//! sharing one [`ScenarioData`], and aggregate metrics.
//!
//! Admission control is reject-when-full: [`QueryEngine::submit`] returns
//! [`QueryError::Overloaded`] instead of queueing without bound, so a
//! closed-loop client sees backpressure as an error it can retry, and
//! queue wait never grows past `queue_capacity / service_rate`. The
//! blocking primitives are `std::sync::{Mutex, Condvar}` — one condvar
//! wakes workers, one per-ticket condvar wakes the submitting client.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sembfs_core::{BfsConfig, ScenarioData};
use sembfs_semext::{CacheSnapshot, IoSnapshot};

use crate::bidir::{bidirectional_search, neighborhood};
use crate::metrics::{LatencyHistogram, QueryStats};
use crate::result_cache::ResultCache;
use crate::{Query, QueryResult};

/// Engine sizing knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Maximum queries waiting in the submission queue; a full queue
    /// rejects with [`QueryError::Overloaded`].
    pub queue_capacity: usize,
    /// Entries of the LRU result cache (0 disables it).
    pub result_cache_entries: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            result_cache_entries: 1024,
        }
    }
}

/// Typed failures of submission or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The submission queue is at capacity; retry after backoff.
    Overloaded {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// A query endpoint does not exist in the graph.
    OutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The graph's vertex count.
        num_vertices: u64,
    },
    /// The underlying storage failed.
    Io(String),
    /// The engine shut down before the query ran.
    Closed,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Overloaded { capacity } => {
                write!(f, "submission queue full ({capacity} slots)")
            }
            QueryError::OutOfRange {
                vertex,
                num_vertices,
            } => write!(f, "vertex {vertex} out of range (n = {num_vertices})"),
            QueryError::Io(e) => write!(f, "storage error: {e}"),
            QueryError::Closed => write!(f, "engine closed"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A finished query: the result plus its submit-to-finish latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The answer.
    pub result: QueryResult,
    /// Submission-to-completion latency (queue wait + execution).
    pub latency: Duration,
    /// True when served from the result cache without touching the graph.
    pub cached: bool,
}

/// A handle to one in-flight query; [`wait`](QueryTicket::wait) blocks
/// until a worker fulfills it.
#[derive(Debug)]
pub struct QueryTicket {
    inner: Arc<TicketInner>,
}

#[derive(Debug)]
struct TicketInner {
    slot: Mutex<Option<Result<Response, QueryError>>>,
    done: Condvar,
}

impl TicketInner {
    fn fulfill(&self, outcome: Result<Response, QueryError>) {
        *self.slot.lock().unwrap() = Some(outcome);
        self.done.notify_all();
    }
}

impl QueryTicket {
    fn pending() -> (Self, Arc<TicketInner>) {
        let inner = Arc::new(TicketInner {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        (
            Self {
                inner: inner.clone(),
            },
            inner,
        )
    }

    fn ready(outcome: Result<Response, QueryError>) -> Self {
        let (ticket, inner) = Self::pending();
        *inner.slot.lock().unwrap() = Some(outcome);
        ticket
    }

    /// Block until the query finishes.
    pub fn wait(self) -> Result<Response, QueryError> {
        let mut slot = self.inner.slot.lock().unwrap();
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.inner.done.wait(slot).unwrap();
        }
    }
}

struct PendingQuery {
    query: Query,
    ticket: Arc<TicketInner>,
    submitted: Instant,
}

#[derive(Default)]
struct QueueState {
    waiting: VecDeque<PendingQuery>,
    closed: bool,
}

struct Shared {
    data: Arc<ScenarioData>,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    histogram: Arc<LatencyHistogram>,
    result_cache: ResultCache,
    completed: AtomicU64,
    rejected: AtomicU64,
    result_cache_hits: AtomicU64,
}

fn kind_of(query: &Query) -> sembfs_obs::QueryKind {
    match query {
        Query::ShortestPath { .. } => sembfs_obs::QueryKind::ShortestPath,
        Query::Distance { .. } => sembfs_obs::QueryKind::Distance,
        Query::Reachable { .. } => sembfs_obs::QueryKind::Reachable,
        Query::Neighborhood { .. } => sembfs_obs::QueryKind::Neighborhood,
    }
}

impl Shared {
    fn execute(&self, query: Query) -> Result<QueryResult, QueryError> {
        let io = |e: sembfs_semext::Error| QueryError::Io(e.to_string());
        match query {
            Query::ShortestPath { src, dst } => {
                let out = bidirectional_search(&self.data, src, dst, true).map_err(io)?;
                Ok(match (out.distance, out.path) {
                    (Some(distance), Some(vertices)) => QueryResult::Path { distance, vertices },
                    _ => QueryResult::NoPath,
                })
            }
            Query::Distance { src, dst } => {
                // Whole-graph distances-only sweep (no parent tree): the
                // full level structure from `src` lands in the page cache
                // pattern the scenario is tuned for, and `dst` is a plain
                // array lookup.
                let policy = self.data.scenario().best_policy();
                let run = self
                    .data
                    .run_distances(src, &policy, &BfsConfig::paper())
                    .map_err(io)?;
                let level = run.levels[dst as usize];
                Ok(QueryResult::Distance(
                    (level != sembfs_graph500::validate::INVALID_LEVEL).then_some(level),
                ))
            }
            Query::Reachable { src, dst } => {
                let out = bidirectional_search(&self.data, src, dst, false).map_err(io)?;
                Ok(QueryResult::Reachable(out.distance.is_some()))
            }
            Query::Neighborhood { v, depth } => {
                let counts = neighborhood(&self.data, v, depth).map_err(io)?;
                Ok(QueryResult::Neighborhood { counts })
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let pending = {
                let mut state = self.queue.lock().unwrap();
                loop {
                    if let Some(p) = state.waiting.pop_front() {
                        break p;
                    }
                    if state.closed {
                        return;
                    }
                    state = self.work_ready.wait(state).unwrap();
                }
            };
            let kind = kind_of(&pending.query);
            let outcome = self.execute(pending.query).map(|result| {
                self.result_cache.put(&pending.query, &result);
                let latency = pending.submitted.elapsed();
                self.histogram.record(latency);
                self.completed.fetch_add(1, Ordering::Relaxed);
                Response {
                    result,
                    latency,
                    cached: false,
                }
            });
            let tracer = sembfs_obs::global();
            if tracer.is_enabled() {
                tracer.span(
                    tracer.ns_of(pending.submitted),
                    tracer.now_ns(),
                    sembfs_obs::TraceEvent::Query {
                        kind,
                        cached: false,
                        ok: outcome.is_ok(),
                    },
                );
            }
            pending.ticket.fulfill(outcome);
        }
    }
}

/// A resident pool of query workers over one shared scenario.
pub struct QueryEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    started: Instant,
    cache_base: Option<CacheSnapshot>,
    io_base: Option<IoSnapshot>,
}

impl QueryEngine {
    /// Spawn `config.workers` threads over `data`.
    pub fn new(data: Arc<ScenarioData>, config: EngineConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let cache_base = data.page_cache().map(|c| c.snapshot());
        let io_base = data.device().map(|d| d.snapshot());
        let shared = Arc::new(Shared {
            data,
            queue: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            histogram: Arc::new(LatencyHistogram::new()),
            result_cache: ResultCache::new(config.result_cache_entries),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            result_cache_hits: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sembfs-query-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn query worker")
            })
            .collect();
        Self {
            shared,
            workers,
            queue_capacity: config.queue_capacity,
            started: Instant::now(),
            cache_base,
            io_base,
        }
    }

    /// The graph this engine serves.
    pub fn data(&self) -> &Arc<ScenarioData> {
        &self.shared.data
    }

    /// The admission bound currently in force. While the scenario's
    /// device reports degraded health (error/stall rate past the fault
    /// plan's `degrade` threshold), the engine sheds load: the queue
    /// shrinks to a quarter of its configured capacity so the backlog
    /// drains against a device that is serving slowly and erratically,
    /// and clients see `Overloaded` early instead of queueing behind
    /// retries.
    pub fn effective_queue_capacity(&self) -> usize {
        if self.shared.data.device().is_some_and(|d| d.is_degraded()) {
            (self.queue_capacity / 4).max(1)
        } else {
            self.queue_capacity
        }
    }

    /// Submit a query without blocking. Result-cache hits return an
    /// already-fulfilled ticket; a full queue rejects with
    /// [`QueryError::Overloaded`] (counted in [`QueryStats::rejected`]).
    pub fn submit(&self, query: Query) -> Result<QueryTicket, QueryError> {
        let n = self.shared.data.num_vertices();
        if (query.max_vertex() as u64) >= n {
            return Err(QueryError::OutOfRange {
                vertex: query.max_vertex(),
                num_vertices: n,
            });
        }
        if let Some(result) = self.shared.result_cache.get(&query) {
            self.shared
                .result_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            self.shared.completed.fetch_add(1, Ordering::Relaxed);
            self.shared.histogram.record(Duration::ZERO);
            sembfs_obs::global().instant(sembfs_obs::TraceEvent::Query {
                kind: kind_of(&query),
                cached: true,
                ok: true,
            });
            return Ok(QueryTicket::ready(Ok(Response {
                result,
                latency: Duration::ZERO,
                cached: true,
            })));
        }
        let (ticket, inner) = QueryTicket::pending();
        let capacity = self.effective_queue_capacity();
        {
            let mut state = self.shared.queue.lock().unwrap();
            if state.waiting.len() >= capacity {
                drop(state);
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(QueryError::Overloaded { capacity });
            }
            state.waiting.push_back(PendingQuery {
                query,
                ticket: inner,
                submitted: Instant::now(),
            });
        }
        self.shared.work_ready.notify_one();
        Ok(ticket)
    }

    /// Submit and block for the answer.
    pub fn run(&self, query: Query) -> Result<Response, QueryError> {
        self.submit(query)?.wait()
    }

    /// Register the engine's counters and latency histogram on a metrics
    /// registry (Prometheus exposition). The histogram is shared, so the
    /// registry always exposes live bucket counts.
    pub fn register_metrics(&self, registry: &sembfs_obs::MetricsRegistry) {
        use sembfs_obs::Metric;
        registry.register_histogram(
            "sembfs_query_latency_seconds",
            &[],
            Arc::clone(&self.shared.histogram),
        );
        let shared = Arc::clone(&self.shared);
        registry.register_source(Box::new(move || {
            let labels: &[(&str, &str)] = &[];
            vec![
                Metric::counter(
                    "sembfs_query_completed_total",
                    labels,
                    shared.completed.load(Ordering::Relaxed) as f64,
                ),
                Metric::counter(
                    "sembfs_query_rejected_total",
                    labels,
                    shared.rejected.load(Ordering::Relaxed) as f64,
                ),
                Metric::counter(
                    "sembfs_query_result_cache_hits_total",
                    labels,
                    shared.result_cache_hits.load(Ordering::Relaxed) as f64,
                ),
            ]
        }));
    }

    /// Aggregate metrics since the engine was created: throughput,
    /// latency distribution, and — via the scenario's shared page cache
    /// and device — the global cache hit-rate and NVM traffic this
    /// engine's window produced.
    pub fn stats(&self) -> QueryStats {
        let shared = &self.shared;
        let cache = shared
            .data
            .page_cache()
            .map(|c| c.snapshot())
            .zip(self.cache_base)
            .map(|(now, base)| now.delta(&base));
        let io = shared
            .data
            .device()
            .map(|d| d.snapshot())
            .zip(self.io_base)
            .map(|(now, base)| now.delta(&base));
        QueryStats {
            completed: shared.completed.load(Ordering::Relaxed),
            rejected: shared.rejected.load(Ordering::Relaxed),
            result_cache_hits: shared.result_cache_hits.load(Ordering::Relaxed),
            elapsed: self.started.elapsed(),
            mean_latency: shared.histogram.mean(),
            p50_latency: shared.histogram.quantile(0.5),
            p99_latency: shared.histogram.quantile(0.99),
            max_latency: shared.histogram.max(),
            cache,
            io,
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        {
            let mut state = self.shared.queue.lock().unwrap();
            state.closed = true;
        }
        // Workers drain the remaining queue, then exit on `closed`.
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}
