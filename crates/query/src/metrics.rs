//! Engine metrics: a lock-free log-bucket latency histogram and the
//! aggregate [`QueryStats`] report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sembfs_semext::{CacheSnapshot, IoSnapshot};

/// Number of power-of-two microsecond buckets: bucket `i` holds latencies
/// in `[2^(i-1), 2^i)` µs (bucket 0 is `< 1 µs`), topping out above an
/// hour — more than any query this engine can produce.
const BUCKETS: usize = 42;

/// A fixed log-bucket latency histogram, recordable from any worker
/// without locks.
///
/// Buckets are powers of two in microseconds, so percentile estimates
/// carry at most 2× resolution error — the right fidelity for a
/// throughput report, at the cost of two atomic adds per sample.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Exact sum in nanoseconds, for the mean.
    total_nanos: AtomicU64,
    count: AtomicU64,
    /// Maximum observed, in nanoseconds.
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    fn bucket_of(latency: Duration) -> usize {
        let micros = latency.as_micros() as u64;
        ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        self.buckets[Self::bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
        self.total_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_nanos
            .fetch_max(latency.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed) / count)
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// Latency at quantile `q` (e.g. `0.99`), reported as the upper edge
    /// of the bucket containing that rank; zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper edge of bucket i: 2^i µs (bucket 0 = 1 µs).
                let micros = 1u64 << i.min(63);
                return Duration::from_micros(micros);
            }
        }
        self.max()
    }
}

/// An aggregate engine report over one measurement window.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// Queries answered (including result-cache hits).
    pub completed: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Queries answered straight from the result cache.
    pub result_cache_hits: u64,
    /// Wall-clock span of the window.
    pub elapsed: Duration,
    /// Mean latency.
    pub mean_latency: Duration,
    /// Median latency (log-bucket resolution).
    pub p50_latency: Duration,
    /// 99th-percentile latency (log-bucket resolution).
    pub p99_latency: Duration,
    /// Worst latency.
    pub max_latency: Duration,
    /// Page-cache activity during the window (`None` without a cache).
    pub cache: Option<CacheSnapshot>,
    /// Device activity during the window (`None` in DRAM-only scenarios).
    pub io: Option<IoSnapshot>,
}

impl QueryStats {
    /// Queries per second over the window.
    pub fn qps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.completed as f64 / s
        } else {
            0.0
        }
    }

    /// Global page-cache hit rate over the window, when a cache exists.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache.map(|c| c.hit_rate())
    }

    /// Mean NVM bytes read per completed query (0 without a device).
    pub fn nvm_bytes_per_query(&self) -> f64 {
        match (&self.io, self.completed) {
            (Some(io), c) if c > 0 => io.bytes as f64 / c as f64,
            _ => 0.0,
        }
    }

    /// A compact multi-line human-readable report.
    pub fn report(&self) -> String {
        let mut out = format!(
            "completed {} ({:.1} q/s), rejected {}, result-cache hits {}\n\
             latency mean {:?} / p50 {:?} / p99 {:?} / max {:?}",
            self.completed,
            self.qps(),
            self.rejected,
            self.result_cache_hits,
            self.mean_latency,
            self.p50_latency,
            self.p99_latency,
            self.max_latency,
        );
        if let Some(cache) = &self.cache {
            out.push_str(&format!(
                "\npage cache: {} hits / {} misses (hit rate {:.4})",
                cache.hits,
                cache.misses,
                cache.hit_rate()
            ));
        }
        if let Some(io) = &self.io {
            out.push_str(&format!(
                "\ndevice: {} requests, {} bytes ({:.0} B/query)",
                io.requests,
                io.bytes,
                self.nvm_bytes_per_query()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_ranks() {
        let h = LatencyHistogram::new();
        for micros in [1u64, 2, 4, 100, 100, 100, 100, 10_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 8);
        // p50 falls in the 100 µs cluster → bucket upper edge 128 µs.
        assert_eq!(h.quantile(0.5), Duration::from_micros(128));
        // p99 picks the tail sample's bucket (upper edge ≥ 10 ms sample).
        assert!(h.quantile(0.99) >= Duration::from_micros(10_000));
        assert_eq!(h.max(), Duration::from_micros(10_000));
        assert!(h.mean() > Duration::from_micros(1000));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn sub_microsecond_goes_to_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(300));
        assert_eq!(h.quantile(1.0), Duration::from_micros(1));
    }
}
