//! Engine metrics: the shared log-bucket latency histogram (now provided
//! by `sembfs-obs`, re-exported here for compatibility) and the aggregate
//! [`QueryStats`] report.

use std::time::Duration;

use sembfs_semext::{CacheSnapshot, IoSnapshot};

pub use sembfs_obs::{HistogramSnapshot, LatencyHistogram};

/// An aggregate engine report over one measurement window.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// Queries answered (including result-cache hits).
    pub completed: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Queries answered straight from the result cache.
    pub result_cache_hits: u64,
    /// Wall-clock span of the window.
    pub elapsed: Duration,
    /// Mean latency.
    pub mean_latency: Duration,
    /// Median latency (log-bucket resolution).
    pub p50_latency: Duration,
    /// 99th-percentile latency (log-bucket resolution).
    pub p99_latency: Duration,
    /// Worst latency.
    pub max_latency: Duration,
    /// Page-cache activity during the window (`None` without a cache).
    pub cache: Option<CacheSnapshot>,
    /// Device activity during the window (`None` in DRAM-only scenarios).
    pub io: Option<IoSnapshot>,
}

impl QueryStats {
    /// Queries per second over the window.
    pub fn qps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.completed as f64 / s
        } else {
            0.0
        }
    }

    /// Global page-cache hit rate over the window, when a cache exists.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache.map(|c| c.hit_rate())
    }

    /// Mean NVM bytes read per completed query (0 without a device).
    pub fn nvm_bytes_per_query(&self) -> f64 {
        match (&self.io, self.completed) {
            (Some(io), c) if c > 0 => io.bytes as f64 / c as f64,
            _ => 0.0,
        }
    }

    /// A compact multi-line human-readable report.
    pub fn report(&self) -> String {
        let mut out = format!(
            "completed {} ({:.1} q/s), rejected {}, result-cache hits {}\n\
             latency mean {:?} / p50 {:?} / p99 {:?} / max {:?}",
            self.completed,
            self.qps(),
            self.rejected,
            self.result_cache_hits,
            self.mean_latency,
            self.p50_latency,
            self.p99_latency,
            self.max_latency,
        );
        if let Some(cache) = &self.cache {
            out.push_str(&format!(
                "\npage cache: {} hits / {} misses (hit rate {:.4})",
                cache.hits,
                cache.misses,
                cache.hit_rate()
            ));
        }
        if let Some(io) = &self.io {
            out.push_str(&format!(
                "\ndevice: {} requests, {} bytes ({:.0} B/query)",
                io.requests,
                io.bytes,
                self.nvm_bytes_per_query()
            ));
        }
        out
    }
}
