//! Bidirectional point-to-point BFS over a scenario's data layout.
//!
//! Two level-synchronous searches run toward each other: the source side
//! expands through the *forward* store (NVM-resident in the semi-external
//! scenarios — its frontier stays small, exactly the regime the paper
//! offloads), the destination side through the *backward* store (DRAM).
//! Each round expands whichever frontier is smaller.
//!
//! **Meeting rule.** Candidates are caught at edge-scan time: when the
//! source side scans an edge `(v, w)` and `w` already carries a
//! destination label, the connecting length `dist_s(v) + 1 + dist_t(w)`
//! is a candidate; symmetrically for the destination side. After the
//! source side has run `ds` rounds and the destination side `dt`, every
//! path of length ≤ `ds + dt − 1` has been caught (each such path has an
//! edge both of whose endpoint labels precede one of the two scans of
//! that edge), so the loop keeps expanding while
//! `best.is_none() || ds + dt < best` and the surviving `best` is the
//! exact shortest-path length. An exhausted frontier also terminates:
//! the exhausted side's labels are then exact distances, and the very
//! first edge scan into the opposite endpoint (labeled 0 from the start)
//! recorded the exact candidate — no candidate means unreachable.

use sembfs_core::{ScenarioData, VertexId};
use sembfs_graph500::validate::INVALID_LEVEL;
use sembfs_graph500::INVALID_PARENT;
use sembfs_semext::Result;

/// The outcome of one [`bidirectional_search`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BidirOutcome {
    /// Shortest-path hop count (`None` when disconnected).
    pub distance: Option<u32>,
    /// The reconstructed path (`src` first), when requested and reachable.
    pub path: Option<Vec<VertexId>>,
    /// Edges scanned by both sides together (the query's work metric).
    pub scanned_edges: u64,
}

/// Which search side scans next.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Src,
    Dst,
}

/// Point-to-point shortest path between `src` and `dst` by bidirectional
/// BFS. Set `want_path` to also reconstruct one shortest path (costs two
/// parent arrays); distance-only calls skip them.
///
/// Runs serially on the calling thread by design — the engine's
/// parallelism axis is *queries across workers*, not edges within one
/// query.
pub fn bidirectional_search(
    data: &ScenarioData,
    src: VertexId,
    dst: VertexId,
    want_path: bool,
) -> Result<BidirOutcome> {
    let n = data.num_vertices();
    assert!(
        (src as u64) < n && (dst as u64) < n,
        "endpoint out of range"
    );
    if src == dst {
        return Ok(BidirOutcome {
            distance: Some(0),
            path: want_path.then(|| vec![src]),
            scanned_edges: 0,
        });
    }

    let n = n as usize;
    let mut dist_s = vec![INVALID_LEVEL; n];
    let mut dist_t = vec![INVALID_LEVEL; n];
    dist_s[src as usize] = 0;
    dist_t[dst as usize] = 0;
    // parent_s[x] = predecessor of x toward src; parent_t[x] = successor
    // of x toward dst.
    let mut parent_s = if want_path {
        vec![INVALID_PARENT; n]
    } else {
        Vec::new()
    };
    let mut parent_t = parent_s.clone();

    let mut frontier_s = vec![src];
    let mut frontier_t = vec![dst];
    let mut depth_s = 0u32;
    let mut depth_t = 0u32;
    // (total length, meet edge a → b): a labeled by src side, b by dst side.
    let mut best: Option<(u32, VertexId, VertexId)> = None;
    let mut scanned = 0u64;
    let mut ctx = data.neighbor_ctx();

    loop {
        if let Some((len, _, _)) = best {
            if depth_s + depth_t >= len {
                break;
            }
        }
        let side = if frontier_s.is_empty() || frontier_t.is_empty() {
            break;
        } else if frontier_s.len() <= frontier_t.len() {
            Side::Src
        } else {
            Side::Dst
        };

        match side {
            Side::Src => {
                let mut next = Vec::new();
                for &v in &frontier_s {
                    let dv = dist_s[v as usize];
                    data.for_each_forward_neighbor(v, &mut ctx, &mut |w| {
                        scanned += 1;
                        let wi = w as usize;
                        if dist_s[wi] == INVALID_LEVEL {
                            dist_s[wi] = dv + 1;
                            if want_path {
                                parent_s[wi] = v;
                            }
                            next.push(w);
                        }
                        if dist_t[wi] != INVALID_LEVEL {
                            let total = dv + 1 + dist_t[wi];
                            if best.is_none_or(|(b, _, _)| total < b) {
                                best = Some((total, v, w));
                            }
                        }
                    })?;
                }
                frontier_s = next;
                depth_s += 1;
            }
            Side::Dst => {
                let mut next = Vec::new();
                for &v in &frontier_t {
                    let dv = dist_t[v as usize];
                    data.for_each_backward_neighbor(v, &mut ctx, &mut |w| {
                        scanned += 1;
                        let wi = w as usize;
                        if dist_t[wi] == INVALID_LEVEL {
                            dist_t[wi] = dv + 1;
                            if want_path {
                                parent_t[wi] = v;
                            }
                            next.push(w);
                        }
                        if dist_s[wi] != INVALID_LEVEL {
                            let total = dist_s[wi] + 1 + dv;
                            if best.is_none_or(|(b, _, _)| total < b) {
                                best = Some((total, w, v));
                            }
                        }
                    })?;
                }
                frontier_t = next;
                depth_t += 1;
            }
        }
    }

    let Some((len, meet_a, meet_b)) = best else {
        return Ok(BidirOutcome {
            distance: None,
            path: None,
            scanned_edges: scanned,
        });
    };
    let path = want_path.then(|| {
        // src ← … ← meet_a, then meet_b → … → dst.
        let mut vertices = Vec::with_capacity(len as usize + 1);
        let mut x = meet_a;
        loop {
            vertices.push(x);
            if x == src {
                break;
            }
            x = parent_s[x as usize];
        }
        vertices.reverse();
        let mut x = meet_b;
        loop {
            vertices.push(x);
            if x == dst {
                break;
            }
            x = parent_t[x as usize];
        }
        debug_assert_eq!(vertices.len() as u32, len + 1);
        vertices
    });
    Ok(BidirOutcome {
        distance: Some(len),
        path,
        scanned_edges: scanned,
    })
}

/// Sizes of the BFS rings around `v`: `counts[d]` = vertices exactly `d`
/// hops away, expanded serially through the forward store up to `depth`
/// hops (ring 0 is `v` itself).
pub fn neighborhood(data: &ScenarioData, v: VertexId, depth: u32) -> Result<Vec<u64>> {
    let n = data.num_vertices();
    assert!((v as u64) < n, "vertex out of range");
    let mut dist = vec![INVALID_LEVEL; n as usize];
    dist[v as usize] = 0;
    let mut counts = vec![1u64];
    let mut frontier = vec![v];
    let mut ctx = data.neighbor_ctx();
    for d in 1..=depth {
        let mut next = Vec::new();
        for &u in &frontier {
            data.for_each_forward_neighbor(u, &mut ctx, &mut |w| {
                let wi = w as usize;
                if dist[wi] == INVALID_LEVEL {
                    dist[wi] = d;
                    next.push(w);
                }
            })?;
        }
        if next.is_empty() {
            break;
        }
        counts.push(next.len() as u64);
        frontier = next;
    }
    Ok(counts)
}
