//! Synthetic query workloads: Zipf-distributed vertex popularity and a
//! weighted query-type mix, both deterministic per client seed.
//!
//! Real point-query traffic is heavily skewed toward hub vertices
//! (celebrities, popular articles); ranking vertices by degree and
//! drawing ranks from a Zipf law reproduces that skew, which is exactly
//! what makes the shared page cache and the LRU result cache earn their
//! keep.

use sembfs_core::ScenarioData;
use sembfs_graph500::rng::Xoshiro256;
use sembfs_graph500::VertexId;

use crate::Query;

/// Draws vertices with Zipf-distributed popularity over a degree ranking.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Vertices ordered by descending popularity (rank 0 = hottest).
    ranked: Vec<VertexId>,
    /// Cumulative (unnormalized) rank weights for inverse-CDF sampling.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build over an explicit popularity ranking with exponent `theta`
    /// (≈1.0 for web-like skew; larger = more concentrated).
    pub fn new(ranked: Vec<VertexId>, theta: f64) -> Self {
        assert!(!ranked.is_empty(), "sampler needs at least one vertex");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(ranked.len());
        let mut total = 0.0f64;
        for rank in 0..ranked.len() {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(total);
        }
        Self { ranked, cdf }
    }

    /// Rank the scenario's vertices by descending degree (ties by id) and
    /// keep the `support` hottest as the samplable population.
    pub fn from_degrees(data: &ScenarioData, theta: f64, support: usize) -> Self {
        let n = data.num_vertices();
        let mut vertices: Vec<VertexId> = (0..n as VertexId).collect();
        vertices.sort_by_key(|&v| (std::cmp::Reverse(data.degree(v)), v));
        vertices.truncate(support.max(1));
        Self::new(vertices, theta)
    }

    /// Vertices in the samplable population.
    pub fn support(&self) -> usize {
        self.ranked.len()
    }

    /// Draw one vertex.
    pub fn sample(&self, rng: &mut Xoshiro256) -> VertexId {
        let total = *self.cdf.last().expect("non-empty");
        let x = rng.next_f64() * total;
        let idx = self.cdf.partition_point(|&c| c < x);
        self.ranked[idx.min(self.ranked.len() - 1)]
    }
}

/// Relative weights of the four query types in a simulated client's
/// stream, plus the neighborhood probe depth.
#[derive(Debug, Clone)]
pub struct QueryMix {
    /// Weight of [`Query::ShortestPath`].
    pub path: f64,
    /// Weight of [`Query::Distance`] (a whole-graph sweep — keep small).
    pub distance: f64,
    /// Weight of [`Query::Reachable`].
    pub reachable: f64,
    /// Weight of [`Query::Neighborhood`].
    pub neighborhood: f64,
    /// Depth of sampled neighborhood probes.
    pub neighborhood_depth: u32,
}

impl Default for QueryMix {
    fn default() -> Self {
        Self {
            path: 0.45,
            distance: 0.05,
            reachable: 0.40,
            neighborhood: 0.10,
            neighborhood_depth: 2,
        }
    }
}

impl QueryMix {
    /// A mix without the whole-graph `Distance` sweeps (pure point
    /// queries — the throughput-bench default).
    pub fn point_queries() -> Self {
        Self {
            path: 0.50,
            distance: 0.0,
            reachable: 0.40,
            neighborhood: 0.10,
            neighborhood_depth: 2,
        }
    }

    /// Draw one query, endpoints Zipf-sampled from `sampler`.
    pub fn sample(&self, sampler: &ZipfSampler, rng: &mut Xoshiro256) -> Query {
        let total = self.path + self.distance + self.reachable + self.neighborhood;
        assert!(total > 0.0, "mix weights must not all be zero");
        let x = rng.next_f64() * total;
        let src = sampler.sample(rng);
        if x < self.path {
            Query::ShortestPath {
                src,
                dst: sampler.sample(rng),
            }
        } else if x < self.path + self.distance {
            Query::Distance {
                src,
                dst: sampler.sample(rng),
            }
        } else if x < self.path + self.distance + self.reachable {
            Query::Reachable {
                src,
                dst: sampler.sample(rng),
            }
        } else {
            Query::Neighborhood {
                v: src,
                depth: self.neighborhood_depth,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_low_ranks() {
        let sampler = ZipfSampler::new((0..100).collect(), 1.0);
        let mut rng = Xoshiro256::seed_from(7, 0);
        let mut counts = [0u64; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 must beat rank 10");
        assert!(counts[0] > counts[99] * 5, "head must dominate tail");
        assert!(counts.iter().sum::<u64>() == 20_000);
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let sampler = ZipfSampler::new((0..10).collect(), 0.0);
        let mut rng = Xoshiro256::seed_from(3, 1);
        let mut counts = [0u64; 10];
        for _ in 0..10_000 {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform draw skewed: {counts:?}");
        }
    }

    #[test]
    fn mix_is_deterministic_per_seed() {
        let sampler = ZipfSampler::new((0..50).collect(), 1.0);
        let mix = QueryMix::default();
        let a: Vec<Query> = {
            let mut rng = Xoshiro256::seed_from(42, 9);
            (0..100).map(|_| mix.sample(&sampler, &mut rng)).collect()
        };
        let b: Vec<Query> = {
            let mut rng = Xoshiro256::seed_from(42, 9);
            (0..100).map(|_| mix.sample(&sampler, &mut rng)).collect()
        };
        assert_eq!(a, b);
        // All four kinds appear under the default weights.
        for kind in ["path", "distance", "reachable", "neighborhood"] {
            assert!(a.iter().any(|q| q.kind() == kind), "no {kind} in 100 draws");
        }
    }
}
