//! `sembfs-query` — a concurrent path-query engine over one shared
//! semi-external graph.
//!
//! The rest of the workspace runs one whole-graph BFS at a time; this
//! crate turns a built [`sembfs_core::ScenarioData`] into a resident
//! *engine* (FlashGraph-style) answering many small point queries
//! concurrently:
//!
//! * [`Query::ShortestPath`] — bidirectional BFS, meeting in the middle
//!   over the forward (possibly NVM-resident) and backward (DRAM) CSRs,
//!   with path reconstruction ([`bidir`]).
//! * [`Query::Distance`] — a whole-graph *distances-only* hybrid BFS
//!   ([`sembfs_core::hybrid_bfs_distances`]), the right tool when one
//!   source's full level structure is wanted anyway.
//! * [`Query::Reachable`] — the bidirectional search without path
//!   recording.
//! * [`Query::Neighborhood`] — bounded-depth frontier counts around a
//!   vertex.
//!
//! [`QueryEngine`] owns a worker pool over a *bounded* submission queue
//! (admission control: full ⇒ typed [`QueryError::Overloaded`], never
//! unbounded queueing), an LRU result cache keyed on the canonicalized
//! endpoint pair ([`result_cache`]), and per-query/aggregate metrics —
//! log-bucket latency histogram, QPS, global page-cache hit-rate delta,
//! NVM bytes per query — surfaced as a [`QueryStats`] report
//! ([`metrics`]). Workers share the scenario's sharded page cache and
//! simulated device; all I/O goes through the same `DomainNeighbors`
//! machinery as the BFS kernels.

pub mod bidir;
pub mod engine;
pub mod metrics;
pub mod result_cache;
pub mod workload;

pub use bidir::{bidirectional_search, neighborhood, BidirOutcome};
pub use engine::{EngineConfig, QueryEngine, QueryError, Response};
pub use metrics::{LatencyHistogram, QueryStats};
pub use result_cache::ResultCache;
pub use workload::{QueryMix, ZipfSampler};

use sembfs_graph500::VertexId;

/// A typed request against the engine's graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// Shortest path between two vertices (bidirectional BFS with path
    /// reconstruction).
    ShortestPath {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
    /// Hop distance from `src` to `dst` via a whole-graph distances-only
    /// sweep from `src`.
    Distance {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
    /// Whether `dst` is reachable from `src` (bidirectional, no path).
    Reachable {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
    /// Sizes of the BFS rings around `v` up to `depth` hops.
    Neighborhood {
        /// Center vertex.
        v: VertexId,
        /// Maximum hop count (ring index) to expand to.
        depth: u32,
    },
}

impl Query {
    /// The two endpoints, when the query has a pair shape.
    pub fn endpoints(&self) -> Option<(VertexId, VertexId)> {
        match *self {
            Query::ShortestPath { src, dst }
            | Query::Distance { src, dst }
            | Query::Reachable { src, dst } => Some((src, dst)),
            Query::Neighborhood { .. } => None,
        }
    }

    /// Largest vertex id the query mentions (for admission range checks).
    pub fn max_vertex(&self) -> VertexId {
        match *self {
            Query::ShortestPath { src, dst }
            | Query::Distance { src, dst }
            | Query::Reachable { src, dst } => src.max(dst),
            Query::Neighborhood { v, .. } => v,
        }
    }

    /// Short label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::ShortestPath { .. } => "path",
            Query::Distance { .. } => "distance",
            Query::Reachable { .. } => "reachable",
            Query::Neighborhood { .. } => "neighborhood",
        }
    }
}

/// The answer to a [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// A shortest path: `vertices.len() == distance + 1`, starting at the
    /// query's `src` and ending at its `dst`.
    Path {
        /// Hop count.
        distance: u32,
        /// The path's vertex sequence, `src` first.
        vertices: Vec<VertexId>,
    },
    /// No path exists between the endpoints.
    NoPath,
    /// Hop distance (`None` when unreachable).
    Distance(Option<u32>),
    /// Reachability verdict.
    Reachable(bool),
    /// `counts[d]` = vertices exactly `d` hops from the center (ring 0 is
    /// the center itself).
    Neighborhood {
        /// Per-ring vertex counts.
        counts: Vec<u64>,
    },
}

impl QueryResult {
    /// The distance this result implies, when it has one.
    pub fn distance(&self) -> Option<u32> {
        match self {
            QueryResult::Path { distance, .. } => Some(*distance),
            QueryResult::Distance(d) => *d,
            _ => None,
        }
    }
}
