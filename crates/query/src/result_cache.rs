//! A small LRU cache of finished query results, keyed on the
//! *canonicalized* endpoint pair so `ShortestPath{a,b}` and
//! `ShortestPath{b,a}` share one entry (the underlying Graph500 graphs
//! are undirected; a cached path is reversed on the way out when served
//! for the mirrored orientation).

use std::collections::HashMap;
use std::sync::Mutex;

use sembfs_graph500::VertexId;

use crate::{Query, QueryResult};

/// Pair-query kinds that share the canonical `(lo, hi)` key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PairKind {
    Path,
    Distance,
    Reachable,
}

/// Canonical cache key of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CacheKey {
    Pair {
        kind: PairKind,
        lo: VertexId,
        hi: VertexId,
    },
    Neighborhood {
        v: VertexId,
        depth: u32,
    },
}

impl CacheKey {
    /// The canonical key, plus whether the query's orientation was
    /// swapped to reach it.
    fn of(query: &Query) -> (CacheKey, bool) {
        match *query {
            Query::ShortestPath { src, dst } => pair(PairKind::Path, src, dst),
            Query::Distance { src, dst } => pair(PairKind::Distance, src, dst),
            Query::Reachable { src, dst } => pair(PairKind::Reachable, src, dst),
            Query::Neighborhood { v, depth } => (CacheKey::Neighborhood { v, depth }, false),
        }
    }
}

fn pair(kind: PairKind, src: VertexId, dst: VertexId) -> (CacheKey, bool) {
    (
        CacheKey::Pair {
            kind,
            lo: src.min(dst),
            hi: src.max(dst),
        },
        src > dst,
    )
}

#[derive(Debug)]
struct Entry {
    /// Result stored in canonical orientation (`lo → hi` for pairs).
    result: QueryResult,
    /// Last-touch stamp for LRU eviction.
    stamp: u64,
}

/// A bounded LRU map from canonical query keys to results.
///
/// Eviction scans for the minimum stamp — `O(capacity)`, which is fine
/// for the few-thousand-entry caches the engine configures; the win is
/// skipping multi-millisecond graph searches, not shaving nanoseconds off
/// the bookkeeping.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Look up `query`, reorienting a mirrored path on the way out.
    pub fn get(&self, query: &Query) -> Option<QueryResult> {
        if self.capacity == 0 {
            return None;
        }
        let (key, swapped) = CacheKey::of(query);
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        let entry = inner.map.get_mut(&key)?;
        entry.stamp = stamp;
        let mut result = entry.result.clone();
        if swapped {
            if let QueryResult::Path { vertices, .. } = &mut result {
                vertices.reverse();
            }
        }
        Some(result)
    }

    /// Insert the result of `query`, canonicalizing its orientation.
    pub fn put(&self, query: &Query, result: &QueryResult) {
        if self.capacity == 0 {
            return;
        }
        let (key, swapped) = CacheKey::of(query);
        let mut stored = result.clone();
        if swapped {
            if let QueryResult::Path { vertices, .. } = &mut stored {
                vertices.reverse();
            }
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(
            key,
            Entry {
                result: stored,
                stamp,
            },
        );
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_endpoint_order() {
        let cache = ResultCache::new(8);
        let fwd = Query::ShortestPath { src: 2, dst: 7 };
        let rev = Query::ShortestPath { src: 7, dst: 2 };
        let result = QueryResult::Path {
            distance: 2,
            vertices: vec![2, 5, 7],
        };
        cache.put(&fwd, &result);
        assert_eq!(cache.get(&fwd), Some(result));
        // The mirrored orientation is served reversed.
        assert_eq!(
            cache.get(&rev),
            Some(QueryResult::Path {
                distance: 2,
                vertices: vec![7, 5, 2],
            })
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn kinds_do_not_collide() {
        let cache = ResultCache::new(8);
        cache.put(
            &Query::Distance { src: 1, dst: 2 },
            &QueryResult::Distance(Some(3)),
        );
        assert!(cache.get(&Query::ShortestPath { src: 1, dst: 2 }).is_none());
        assert!(cache.get(&Query::Reachable { src: 1, dst: 2 }).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        let q = |v| Query::Reachable { src: 0, dst: v };
        cache.put(&q(1), &QueryResult::Reachable(true));
        cache.put(&q(2), &QueryResult::Reachable(true));
        cache.get(&q(1)); // touch 1 → 2 becomes LRU
        cache.put(&q(3), &QueryResult::Reachable(false));
        assert!(cache.get(&q(1)).is_some());
        assert!(cache.get(&q(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&q(3)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0);
        cache.put(
            &Query::Reachable { src: 0, dst: 1 },
            &QueryResult::Reachable(true),
        );
        assert!(cache.get(&Query::Reachable { src: 0, dst: 1 }).is_none());
        assert!(cache.is_empty());
    }
}
