//! Property tests: bidirectional point-to-point search must agree with
//! the serial reference BFS on arbitrary graphs, endpoints, and data
//! layouts — and reconstructed paths must be real edge sequences of
//! exactly the claimed length.

use proptest::prelude::*;
use sembfs_core::{reference_bfs, Scenario, ScenarioData, ScenarioOptions};
use sembfs_graph500::edge_list::MemEdgeList;
use sembfs_graph500::validate::{compute_levels, INVALID_LEVEL};
use sembfs_graph500::VertexId;
use sembfs_numa::Topology;
use sembfs_query::bidirectional_search;

const N: u32 = 32;

fn options() -> ScenarioOptions {
    ScenarioOptions {
        topology: Topology::new(2, 2),
        sort_neighbors: true,
        ..Default::default()
    }
}

/// The four layouts under test: every scenario, plus a split backward
/// graph so the DRAM-head + NVM-tail read path is exercised too.
fn layouts(el: &MemEdgeList) -> Vec<(String, ScenarioData)> {
    let mut out = Vec::new();
    for sc in Scenario::ALL {
        out.push((
            sc.label().to_string(),
            ScenarioData::build(el, sc, options()).unwrap(),
        ));
    }
    let mut opts = options();
    opts.backward_offload_k = Some(2);
    out.push((
        "DRAM+SSD split-backward".to_string(),
        ScenarioData::build(el, Scenario::DramSsd, opts).unwrap(),
    ));
    out
}

proptest! {
    /// Bidirectional distance == reference serial BFS distance, in every
    /// layout; any returned path is a valid edge sequence of that length.
    #[test]
    fn bidir_matches_reference_in_all_layouts(
        edges in proptest::collection::vec((0u32..N, 0u32..N), 0..80),
        src in 0u32..N,
        dst in 0u32..N,
    ) {
        let el = MemEdgeList::new(N as u64, edges);
        for (label, data) in layouts(&el) {
            let want = {
                let run = reference_bfs(data.csr(), src);
                let levels = compute_levels(&run.parent, src).unwrap();
                (levels[dst as usize] != INVALID_LEVEL).then_some(levels[dst as usize])
            };
            let got = bidirectional_search(&data, src, dst, true).unwrap();
            prop_assert_eq!(got.distance, want, "{}: {} → {}", &label, src, dst);

            match got.distance {
                None => prop_assert!(got.path.is_none(), "{}: path without distance", &label),
                Some(d) => {
                    let path = got.path.as_ref().unwrap();
                    prop_assert_eq!(path.len() as u32, d + 1, "{}: wrong path length", &label);
                    prop_assert_eq!(path[0], src, "{}: path must start at src", &label);
                    prop_assert_eq!(*path.last().unwrap(), dst, "{}: path must end at dst", &label);
                    for pair in path.windows(2) {
                        prop_assert!(
                            data.csr().neighbors(pair[0]).contains(&pair[1]),
                            "{}: {} → {} is not an edge",
                            &label, pair[0], pair[1]
                        );
                    }
                }
            }
        }
    }

    /// Distance-only calls agree with path calls and never allocate a path.
    #[test]
    fn distance_only_agrees_with_path_mode(
        edges in proptest::collection::vec((0u32..N, 0u32..N), 0..60),
        src in 0u32..N,
        dst in 0u32..N,
    ) {
        let el = MemEdgeList::new(N as u64, edges);
        let data = ScenarioData::build(&el, Scenario::DramPcieFlash, options()).unwrap();
        let with_path = bidirectional_search(&data, src, dst, true).unwrap();
        let without = bidirectional_search(&data, src, dst, false).unwrap();
        prop_assert_eq!(without.distance, with_path.distance);
        prop_assert!(without.path.is_none());
    }

    /// The engine's whole-graph Distance path agrees with the reference
    /// BFS too (it runs `hybrid_bfs_distances` under the hood).
    #[test]
    fn run_distances_matches_reference(
        edges in proptest::collection::vec((0u32..N, 0u32..N), 0..60),
        src in 0u32..N,
    ) {
        let el = MemEdgeList::new(N as u64, edges);
        for sc in Scenario::ALL {
            let data = ScenarioData::build(&el, sc, options()).unwrap();
            let run = reference_bfs(data.csr(), src);
            let want = compute_levels(&run.parent, src).unwrap();
            let got = data
                .run_distances(src, &sc.best_policy(), &sembfs_core::BfsConfig::paper())
                .unwrap();
            prop_assert_eq!(&got.levels, &want, "{} from {}", sc.label(), src);
        }
    }
}

/// Deterministic spot check: a path graph's endpoints meet in the middle.
#[test]
fn path_graph_end_to_end() {
    let el = MemEdgeList::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    let data = ScenarioData::build(&el, Scenario::DramOnly, options()).unwrap();
    let out = bidirectional_search(&data, 0, 5, true).unwrap();
    assert_eq!(out.distance, Some(5));
    assert_eq!(out.path.unwrap(), vec![0, 1, 2, 3, 4, 5]);
    // Disconnected pair.
    let el2 = MemEdgeList::new(4, vec![(0, 1), (2, 3)]);
    let data2 = ScenarioData::build(&el2, Scenario::DramOnly, options()).unwrap();
    let out2 = bidirectional_search(&data2, 0, 3, true).unwrap();
    assert_eq!(out2.distance, None);
    assert!(out2.path.is_none());
    // Trivial self-query.
    let out3 = bidirectional_search(&data2, 2, 2, true).unwrap();
    assert_eq!(out3.distance, Some(0));
    assert_eq!(out3.path.unwrap(), vec![2 as VertexId]);
}
