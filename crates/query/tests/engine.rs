//! Engine-level tests: concurrent submission must produce the same
//! answers as sequential execution, admission control must reject under
//! a tiny queue bound, and the result cache must short-circuit repeats.

use std::sync::Arc;

use sembfs_core::{Scenario, ScenarioData, ScenarioOptions};
use sembfs_graph500::rng::Xoshiro256;
use sembfs_graph500::KroneckerParams;
use sembfs_numa::Topology;
use sembfs_query::{
    EngineConfig, Query, QueryEngine, QueryError, QueryMix, QueryResult, ZipfSampler,
};

fn build(scenario: Scenario) -> Arc<ScenarioData> {
    let el = KroneckerParams::graph500(9, 8).generate();
    let opts = ScenarioOptions {
        topology: Topology::new(2, 2),
        sort_neighbors: true,
        page_cache_bytes: scenario.device_profile().is_some().then_some(2u64 << 20),
        ..Default::default()
    };
    Arc::new(ScenarioData::build(&el, scenario, opts).unwrap())
}

fn mixed_queries(data: &ScenarioData, count: usize) -> Vec<Query> {
    let sampler = ZipfSampler::from_degrees(data, 1.0, 256);
    let mix = QueryMix {
        distance: 0.05,
        ..QueryMix::default()
    };
    let mut rng = Xoshiro256::seed_from(1234, 0);
    (0..count).map(|_| mix.sample(&sampler, &mut rng)).collect()
}

#[test]
fn concurrent_answers_match_sequential() {
    let data = build(Scenario::DramPcieFlash);
    let queries = mixed_queries(&data, 48);

    // Sequential ground truth: one worker, no result cache, one at a time.
    let sequential = QueryEngine::new(
        data.clone(),
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            result_cache_entries: 0,
        },
    );
    let expected: Vec<QueryResult> = queries
        .iter()
        .map(|&q| sequential.run(q).unwrap().result)
        .collect();
    drop(sequential);

    // Concurrent: 4 workers, 4 submitting threads, cache still off so
    // every answer is a fresh computation.
    let engine = Arc::new(QueryEngine::new(
        data,
        EngineConfig {
            workers: 4,
            queue_capacity: 256,
            result_cache_entries: 0,
        },
    ));
    let results: Vec<(usize, QueryResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let engine = engine.clone();
                let queries = &queries;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (i, &q) in queries.iter().enumerate().skip(t).step_by(4) {
                        out.push((i, engine.run(q).unwrap().result));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(results.len(), queries.len());
    for (i, result) in results {
        assert_eq!(result, expected[i], "query {i} ({:?}) diverged", queries[i]);
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, queries.len() as u64);
    assert_eq!(stats.result_cache_hits, 0);
    assert!(stats.qps() > 0.0);
    assert!(stats.p99_latency >= stats.p50_latency);
    // The semi-external scenario's shared page cache saw traffic.
    assert!(stats.cache.unwrap().accesses() > 0);
}

#[test]
fn tiny_queue_bound_triggers_overloaded() {
    let data = build(Scenario::DramOnly);
    let engine = QueryEngine::new(
        data.clone(),
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            result_cache_entries: 0,
        },
    );
    // Whole-graph Distance sweeps keep the single worker busy for
    // milliseconds while submissions arrive in microseconds: the
    // one-slot queue must reject quickly.
    let n = data.num_vertices() as u32;
    let mut tickets = Vec::new();
    let mut rejections = 0u64;
    for i in 0..1000u32 {
        match engine.submit(Query::Distance {
            src: i % n,
            dst: (i + 1) % n,
        }) {
            Ok(t) => tickets.push(t),
            Err(QueryError::Overloaded { capacity }) => {
                assert_eq!(capacity, 1);
                rejections += 1;
                if rejections > 10 {
                    break;
                }
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        rejections > 0,
        "1000 instant submissions never overflowed a 1-slot queue"
    );
    // Accepted work still completes correctly.
    for t in tickets {
        assert!(matches!(t.wait().unwrap().result, QueryResult::Distance(_)));
    }
    assert_eq!(engine.stats().rejected, rejections);
}

#[test]
fn result_cache_short_circuits_repeats() {
    let data = build(Scenario::DramPcieFlash);
    let engine = QueryEngine::new(data, EngineConfig::default());
    let query = Query::ShortestPath { src: 1, dst: 5 };
    let first = engine.run(query).unwrap();
    assert!(!first.cached);
    let repeat = engine.run(query).unwrap();
    assert!(repeat.cached, "repeat must be served from the result cache");
    assert_eq!(repeat.result, first.result);
    // The mirrored orientation hits the same canonical entry, reversed.
    let mirrored = engine.run(Query::ShortestPath { src: 5, dst: 1 }).unwrap();
    assert!(mirrored.cached);
    if let (QueryResult::Path { vertices: a, .. }, QueryResult::Path { vertices: b, .. }) =
        (&first.result, &mirrored.result)
    {
        let mut reversed = b.clone();
        reversed.reverse();
        assert_eq!(&reversed, a);
    }
    assert_eq!(engine.stats().result_cache_hits, 2);
}

#[test]
fn out_of_range_is_rejected_up_front() {
    let data = build(Scenario::DramOnly);
    let n = data.num_vertices();
    let engine = QueryEngine::new(data, EngineConfig::default());
    let err = engine
        .submit(Query::Reachable {
            src: 0,
            dst: n as u32,
        })
        .unwrap_err();
    assert_eq!(
        err,
        QueryError::OutOfRange {
            vertex: n as u32,
            num_vertices: n
        }
    );
}

#[test]
fn degraded_device_sheds_load_with_a_shrunken_queue() {
    let el = KroneckerParams::graph500(9, 8).generate();
    let opts = ScenarioOptions {
        topology: Topology::new(2, 2),
        sort_neighbors: true,
        // A live fault plan so the device carries a health monitor; the
        // rates themselves are irrelevant here — health is forced below.
        fault_plan: Some(sembfs_semext::FaultPlan::parse("eio=0.01,retries=10").unwrap()),
        ..Default::default()
    };
    let data = Arc::new(ScenarioData::build(&el, Scenario::DramSsd, opts).unwrap());
    let engine = QueryEngine::new(
        data.clone(),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            result_cache_entries: 0,
        },
    );
    assert_eq!(engine.effective_queue_capacity(), 64);

    // Drive the health monitor past the degrade threshold by hand.
    let health = data.device().unwrap().faults().unwrap().health();
    for _ in 0..100 {
        health.record_request();
        health.record_error();
    }
    assert!(data.device().unwrap().is_degraded());
    assert_eq!(
        engine.effective_queue_capacity(),
        16,
        "degraded health must shrink admission to a quarter"
    );

    // The shrunken bound is what rejections report.
    let n = data.num_vertices() as u32;
    let mut saw_shed = false;
    for i in 0..1000u32 {
        match engine.submit(Query::Distance {
            src: i % n,
            dst: (i + 1) % n,
        }) {
            Ok(_) => {}
            Err(QueryError::Overloaded { capacity }) => {
                assert_eq!(capacity, 16);
                saw_shed = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(saw_shed, "a degraded 16-slot queue never overflowed");
}

#[test]
fn queries_answer_on_all_three_scenarios() {
    for sc in Scenario::ALL {
        let data = build(sc);
        let engine = QueryEngine::new(data, EngineConfig::default());
        let resp = engine.run(Query::Neighborhood { v: 0, depth: 2 }).unwrap();
        let QueryResult::Neighborhood { counts } = resp.result else {
            panic!("wrong result type");
        };
        assert_eq!(counts[0], 1, "{}", sc.label());
        let resp = engine.run(Query::Reachable { src: 0, dst: 1 }).unwrap();
        assert!(
            matches!(resp.result, QueryResult::Reachable(_)),
            "{}",
            sc.label()
        );
    }
}
