//! Serial top-down BFS — the "reference implementation of Graph500
//! v2.1.4" baseline in Figs. 8/9, in *canonical min-parent* form.
//!
//! The official reference code is a sequential queue-based top-down BFS
//! over a CSR; the paper reports it at 0.04 GTEPS on the DRAM-only
//! machine, two orders of magnitude below NETAL. This reproduction keeps
//! the algorithm (one thread, no direction switching) but runs it
//! level-synchronously with the frontier iterated in ascending vertex
//! order, so every discovered vertex ends up with the **smallest**
//! frontier neighbor as its parent. That canonical tie-break is what the
//! parallel kernels ([`crate::parallel`]) reproduce with a `fetch_min`
//! CAS, making this baseline the bit-exact oracle for the differential
//! harness at any thread count, direction schedule, and data layout.

use sembfs_csr::CsrGraph;

use crate::{VertexId, INVALID_PARENT};

/// Result of the reference BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceRun {
    /// Parent array.
    pub parent: Vec<VertexId>,
    /// Vertices reached (including the root).
    pub visited: u64,
    /// Neighbor entries examined.
    pub scanned_edges: u64,
}

/// Serial level-synchronous top-down BFS over a full CSR.
///
/// The frontier is expanded in ascending vertex order and re-sorted per
/// level, so first-claim order equals min-parent order: each vertex's
/// parent is its smallest neighbor in the previous level. Totals
/// (`visited`, `scanned_edges`) are identical to the FIFO formulation —
/// only the tie-break among equal-level parents is pinned down.
pub fn reference_bfs(csr: &CsrGraph, root: VertexId) -> ReferenceRun {
    let n = csr.num_vertices() as usize;
    assert!((root as usize) < n, "root out of range");
    let mut parent = vec![INVALID_PARENT; n];
    parent[root as usize] = root;
    let mut frontier = vec![root];
    let mut visited = 1u64;
    let mut scanned = 0u64;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in csr.neighbors(v) {
                scanned += 1;
                if parent[w as usize] == INVALID_PARENT {
                    parent[w as usize] = v;
                    visited += 1;
                    next.push(w);
                }
            }
        }
        // Ascending order for the next level keeps the min-parent
        // invariant even when neighbor lists are unsorted.
        next.sort_unstable();
        frontier = next;
    }
    ReferenceRun {
        parent,
        visited,
        scanned_edges: scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sembfs_csr::{build_csr, BuildOptions};
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_graph500::validate_bfs_tree;

    fn csr(edges: Vec<(u32, u32)>, n: u64) -> CsrGraph {
        build_csr(&MemEdgeList::new(n, edges), BuildOptions::default()).unwrap()
    }

    #[test]
    fn path_graph_levels() {
        let g = csr(vec![(0, 1), (1, 2), (2, 3)], 4);
        let run = reference_bfs(&g, 0);
        assert_eq!(run.parent, vec![0, 0, 1, 2]);
        assert_eq!(run.visited, 4);
        // Each edge inspected from both endpoints.
        assert_eq!(run.scanned_edges, 6);
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let g = csr(vec![(0, 1)], 4);
        let run = reference_bfs(&g, 0);
        assert_eq!(run.parent[2], INVALID_PARENT);
        assert_eq!(run.parent[3], INVALID_PARENT);
        assert_eq!(run.visited, 2);
    }

    #[test]
    fn result_validates_on_kronecker() {
        let p = sembfs_graph500::KroneckerParams::graph500(10, 4);
        let el = p.generate();
        let g = build_csr(&el, BuildOptions::default()).unwrap();
        // Pick a root with edges.
        let root = (0..g.num_vertices() as u32)
            .find(|&v| g.degree(v) > 0)
            .unwrap();
        let run = reference_bfs(&g, root);
        let report = validate_bfs_tree(&run.parent, root, &el).unwrap();
        assert_eq!(report.visited, run.visited);
    }

    #[test]
    fn self_loop_only_vertex() {
        let g = csr(vec![(0, 0)], 1);
        let run = reference_bfs(&g, 0);
        assert_eq!(run.visited, 1);
        assert_eq!(run.scanned_edges, 2);
    }
}
