//! Direction-switching policies (§III-C).
//!
//! The paper's rule uses two thresholds on the frontier size relative to
//! the total vertex count: with frontier sizes `n_f(i)` and `n_f(i-1)`,
//!
//! * **TD → BU** when the frontier is *growing* and `n_f(i) > n_all / α`;
//! * **BU → TD** when the frontier is *shrinking* and `n_f(i) < n_all / β`.
//!
//! Larger α switches to bottom-up earlier; larger β switches back to
//! top-down later. The NVM scenarios favor large α (leave the slow
//! forward graph quickly) but *not* large β: the tail levels' frontiers
//! are tiny, so returning to the forward graph early costs little, and
//! the measured optima (§VI-B, Fig. 7) move β *down* as the device slows
//! — `α=1e4, β=10α` for DRAM-only, `α=1e6, β=1α` for DRAM+PCIeFlash,
//! and `α=1e5, β=0.1α` for DRAM+SSD.

use crate::level_stats::Direction;

/// An out-of-band condition the driver reports into the direction
/// decision, alongside the frontier-size inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyEvent {
    /// The semi-external device's health monitor crossed its degradation
    /// threshold: error/stall rates make every forward-graph (top-down)
    /// read expensive and unreliable, so the policy should bias toward
    /// the DRAM-resident bottom-up direction.
    DeviceDegraded,
}

/// Inputs available to a policy when choosing the next level's direction.
#[derive(Debug, Clone, Copy)]
pub struct PolicyCtx {
    /// The direction the previous level ran in.
    pub current: Direction,
    /// BFS level about to execute (1 = first expansion from the root).
    pub level: u32,
    /// Total vertices in the graph (`n_all`).
    pub n_all: u64,
    /// Frontier size after the previous level (`n_frontier(i)`).
    pub frontier: u64,
    /// Frontier size before the previous level (`n_frontier(i-1)`).
    pub prev_frontier: u64,
    /// Sum of degrees of the current frontier, when the driver computed
    /// it (used by edge-based heuristics; `None` otherwise).
    pub frontier_edges: Option<u64>,
    /// Number of still-unvisited vertices.
    pub unvisited: u64,
    /// Out-of-band condition in effect for this decision, when the
    /// driver observed one (e.g. [`PolicyEvent::DeviceDegraded`]).
    pub event: Option<PolicyEvent>,
}

/// A rule choosing each level's direction.
pub trait DirectionPolicy: Send + Sync {
    /// Decide the direction of the next level.
    fn decide(&self, ctx: &PolicyCtx) -> Direction;

    /// A short label for reports.
    fn label(&self) -> String;

    /// The policy's `(α, β)` thresholds, when it has that form. Recorded
    /// with every traced switch decision so a decision sequence can be
    /// replayed offline from the trace alone.
    fn thresholds(&self) -> Option<(f64, f64)> {
        None
    }
}

/// The paper's α/β frontier-size rule.
///
/// ```
/// use sembfs_core::policy::{AlphaBetaPolicy, DirectionPolicy, PolicyCtx};
/// use sembfs_core::Direction;
///
/// let policy = AlphaBetaPolicy::new(1e4, 1e5);
/// let ctx = PolicyCtx {
///     current: Direction::TopDown,
///     level: 3,
///     n_all: 1 << 27,
///     frontier: 1 << 20,       // large and growing …
///     prev_frontier: 1 << 16,
///     frontier_edges: None,
///     unvisited: 1 << 26,
///     event: None,
/// };
/// // … so the rule leaves the (possibly NVM-resident) forward graph:
/// assert_eq!(policy.decide(&ctx), Direction::BottomUp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaBetaPolicy {
    /// Threshold divisor for TD→BU (`switch when n_f > n_all/α`).
    pub alpha: f64,
    /// Threshold divisor for BU→TD (`switch when n_f < n_all/β`).
    pub beta: f64,
}

impl AlphaBetaPolicy {
    /// Create the policy; both thresholds must be positive.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && beta > 0.0, "α and β must be positive");
        Self { alpha, beta }
    }

    /// The paper's best DRAM-only setting: `α = 1e4, β = 10α` (§VI-B).
    pub fn dram_only_best() -> Self {
        Self::new(1e4, 1e5)
    }

    /// The paper's best DRAM+PCIeFlash setting: `α = 1e6, β = 1α`.
    pub fn pcie_flash_best() -> Self {
        Self::new(1e6, 1e6)
    }

    /// The paper's best DRAM+SSD setting: `α = 1e5, β = 0.1α`.
    pub fn ssd_best() -> Self {
        Self::new(1e5, 1e4)
    }
}

impl DirectionPolicy for AlphaBetaPolicy {
    fn decide(&self, ctx: &PolicyCtx) -> Direction {
        // Graceful degradation: while the device is unhealthy every
        // top-down level pays retries and stalls on the forward graph, so
        // the bottom-up (DRAM-resident backward graph) direction wins
        // regardless of the frontier thresholds.
        if ctx.event == Some(PolicyEvent::DeviceDegraded) {
            return Direction::BottomUp;
        }
        let n_all = ctx.n_all as f64;
        let nf = ctx.frontier as f64;
        match ctx.current {
            Direction::TopDown => {
                if ctx.prev_frontier < ctx.frontier && nf > n_all / self.alpha {
                    Direction::BottomUp
                } else {
                    Direction::TopDown
                }
            }
            Direction::BottomUp => {
                if ctx.prev_frontier > ctx.frontier && nf < n_all / self.beta {
                    Direction::TopDown
                } else {
                    Direction::BottomUp
                }
            }
        }
    }

    fn label(&self) -> String {
        format!("hybrid(α={:.0e}, β={:.0e})", self.alpha, self.beta)
    }

    fn thresholds(&self) -> Option<(f64, f64)> {
        Some((self.alpha, self.beta))
    }
}

/// Always run one direction — the paper's *top-down only* and *bottom-up
/// only* baselines in Fig. 8/9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPolicy(pub Direction);

impl DirectionPolicy for FixedPolicy {
    fn decide(&self, _ctx: &PolicyCtx) -> Direction {
        self.0
    }

    fn label(&self) -> String {
        format!("{} only", self.0)
    }
}

/// Beamer et al.'s direction-optimizing heuristic (SC'12), for ablation
/// against the paper's rule: TD→BU when the frontier's outgoing edges
/// exceed `unexplored_edges / α`; BU→TD when the frontier shrinks below
/// `n_all / β`. Uses `frontier_edges` when the driver provides it,
/// falling back to the frontier size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamerPolicy {
    /// Edge-ratio threshold (Beamer's default 14).
    pub alpha: f64,
    /// Vertex-ratio threshold (Beamer's default 24).
    pub beta: f64,
    /// Total edges in the graph (directed entries / 2).
    pub total_edges: u64,
}

impl BeamerPolicy {
    /// Beamer's published defaults.
    pub fn with_defaults(total_edges: u64) -> Self {
        Self {
            alpha: 14.0,
            beta: 24.0,
            total_edges,
        }
    }
}

impl DirectionPolicy for BeamerPolicy {
    fn decide(&self, ctx: &PolicyCtx) -> Direction {
        match ctx.current {
            Direction::TopDown => {
                let mf = ctx.frontier_edges.unwrap_or(ctx.frontier) as f64;
                // Estimate unexplored edges by the unvisited share.
                let mu = self.total_edges as f64 * ctx.unvisited as f64 / ctx.n_all.max(1) as f64;
                if mf > mu / self.alpha {
                    Direction::BottomUp
                } else {
                    Direction::TopDown
                }
            }
            Direction::BottomUp => {
                if (ctx.frontier as f64) < ctx.n_all as f64 / self.beta
                    && ctx.prev_frontier > ctx.frontier
                {
                    Direction::TopDown
                } else {
                    Direction::BottomUp
                }
            }
        }
    }

    fn label(&self) -> String {
        format!("beamer(α={}, β={})", self.alpha, self.beta)
    }

    fn thresholds(&self) -> Option<(f64, f64)> {
        Some((self.alpha, self.beta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(current: Direction, prev: u64, cur: u64, n: u64) -> PolicyCtx {
        PolicyCtx {
            current,
            level: 3,
            n_all: n,
            frontier: cur,
            prev_frontier: prev,
            frontier_edges: None,
            unvisited: n - cur,
            event: None,
        }
    }

    #[test]
    fn alpha_switches_on_growth_past_threshold() {
        let p = AlphaBetaPolicy::new(100.0, 100.0); // threshold n/100
        let n = 10_000;
        // Growing and above threshold (100): switch.
        assert_eq!(
            p.decide(&ctx(Direction::TopDown, 50, 150, n)),
            Direction::BottomUp
        );
        // Growing but below threshold: stay.
        assert_eq!(
            p.decide(&ctx(Direction::TopDown, 50, 90, n)),
            Direction::TopDown
        );
        // Above threshold but shrinking: stay.
        assert_eq!(
            p.decide(&ctx(Direction::TopDown, 200, 150, n)),
            Direction::TopDown
        );
    }

    #[test]
    fn beta_switches_on_shrink_below_threshold() {
        let p = AlphaBetaPolicy::new(100.0, 100.0);
        let n = 10_000;
        // Shrinking and below threshold: switch back.
        assert_eq!(
            p.decide(&ctx(Direction::BottomUp, 200, 50, n)),
            Direction::TopDown
        );
        // Shrinking but above threshold: stay.
        assert_eq!(
            p.decide(&ctx(Direction::BottomUp, 500, 200, n)),
            Direction::BottomUp
        );
        // Below threshold but growing: stay.
        assert_eq!(
            p.decide(&ctx(Direction::BottomUp, 10, 50, n)),
            Direction::BottomUp
        );
    }

    #[test]
    fn larger_alpha_switches_earlier() {
        // α=1e6 → threshold n/1e6 ≈ 0: any growth switches.
        let eager = AlphaBetaPolicy::pcie_flash_best();
        let n = 1 << 27;
        assert_eq!(
            eager.decide(&ctx(Direction::TopDown, 1, 200, n)),
            Direction::BottomUp
        );
        // α=10 → threshold n/10: 200 ≪ n/10 stays top-down.
        let lazy = AlphaBetaPolicy::new(10.0, 10.0);
        assert_eq!(
            lazy.decide(&ctx(Direction::TopDown, 1, 200, n)),
            Direction::TopDown
        );
    }

    #[test]
    fn fixed_policy_never_switches() {
        let p = FixedPolicy(Direction::TopDown);
        assert_eq!(
            p.decide(&ctx(Direction::BottomUp, 9, 1, 10)),
            Direction::TopDown
        );
        assert!(p.label().contains("top-down"));
    }

    #[test]
    fn beamer_switches_on_edge_ratio() {
        let p = BeamerPolicy::with_defaults(1_000_000);
        let mut c = ctx(Direction::TopDown, 10, 100, 10_000);
        // Huge frontier edge count → switch.
        c.frontier_edges = Some(500_000);
        assert_eq!(p.decide(&c), Direction::BottomUp);
        // Tiny frontier edge count → stay.
        c.frontier_edges = Some(10);
        assert_eq!(p.decide(&c), Direction::TopDown);
    }

    #[test]
    fn degraded_device_forces_bottom_up() {
        let p = AlphaBetaPolicy::new(100.0, 100.0);
        let n = 10_000;
        // A tiny shrinking frontier would normally run (or return to)
        // top-down; a degraded device overrides both cases.
        for current in [Direction::TopDown, Direction::BottomUp] {
            let mut c = ctx(current, 200, 50, n);
            assert_eq!(p.decide(&c), Direction::TopDown, "healthy baseline");
            c.event = Some(PolicyEvent::DeviceDegraded);
            assert_eq!(p.decide(&c), Direction::BottomUp, "degraded override");
        }
    }

    #[test]
    fn fixed_policy_ignores_degradation() {
        // The fixed baselines must stay fixed — they exist to measure a
        // single direction, degraded device or not.
        let p = FixedPolicy(Direction::TopDown);
        let mut c = ctx(Direction::TopDown, 200, 50, 10_000);
        c.event = Some(PolicyEvent::DeviceDegraded);
        assert_eq!(p.decide(&c), Direction::TopDown);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_alpha_rejected() {
        AlphaBetaPolicy::new(0.0, 1.0);
    }

    #[test]
    fn labels_mention_parameters() {
        assert!(AlphaBetaPolicy::new(1e4, 1e5).label().contains("1e4"));
        assert!(BeamerPolicy::with_defaults(10).label().contains("beamer"));
    }
}
