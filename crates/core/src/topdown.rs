//! The top-down step (Fig. 1), NUMA-structured per §V-C.
//!
//! All domains expand the *entire* frontier (the frontier is conceptually
//! duplicated per domain, Fig. 6), but domain `k` only examines the
//! neighbor sub-lists living in `k`'s vertex range — so every
//! `tree`/visited write is domain-local. Threads dequeue vertices in
//! fixed batches (64 in the paper) and, on the semi-external path, each
//! batch's neighbor spans are fetched from NVM in ≤4 KiB chunks through
//! the [`NeighborCtx`] reader.

use std::sync::atomic::{AtomicU32, Ordering};

use rayon::prelude::*;
use sembfs_csr::{DomainNeighbors, NeighborCtx};
use sembfs_semext::Result;

use crate::bitmap::AtomicBitmap;
use crate::VertexId;

/// Output of one top-down step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopDownOutput {
    /// The next frontier (unsorted; one entry per newly visited vertex).
    pub next: Vec<VertexId>,
    /// Edges examined (all neighbor entries of the frontier).
    pub scanned_edges: u64,
}

/// Expand `frontier` through `g`, claiming unvisited neighbors.
///
/// `parent` and `visited` are updated atomically; `make_ctx` builds the
/// per-task scratch (supplying the chunk reader appropriate for where `g`
/// lives). `batch` is the dequeue granularity (the paper uses 64).
pub fn top_down_step<G: DomainNeighbors>(
    g: &G,
    frontier: &[VertexId],
    parent: &[AtomicU32],
    visited: &AtomicBitmap,
    batch: usize,
    make_ctx: &(dyn Fn() -> NeighborCtx + Sync),
) -> Result<TopDownOutput> {
    let domains = g.num_domains();
    let batch = batch.max(1);

    // Each (domain, batch) task claims vertices independently; the visited
    // bitmap arbitrates, so no deduplication pass is needed.
    let per_domain: Vec<(Vec<VertexId>, u64)> = (0..domains)
        .into_par_iter()
        .map(|k| -> Result<(Vec<VertexId>, u64)> {
            let tracer = sembfs_obs::global();
            let step_start = tracer.is_enabled().then(|| tracer.now_ns());
            let pieces: Vec<(Vec<VertexId>, u64)> = frontier
                .par_chunks(batch)
                .map_init(make_ctx, |ctx, chunk| -> Result<(Vec<VertexId>, u64)> {
                    let mut next = Vec::new();
                    let mut scanned = 0u64;
                    // One dequeue batch; batch-capable sources may
                    // serve it as a single async submission (§VI-D).
                    g.with_neighbors_batch(k, chunk, ctx, &mut |v, ns| {
                        scanned += ns.len() as u64;
                        for &w in ns {
                            if !visited.get(w) && !visited.test_and_set(w) {
                                parent[w as usize].store(v, Ordering::Relaxed);
                                next.push(w);
                            }
                        }
                    })?;
                    Ok((next, scanned))
                })
                .collect::<Result<Vec<_>>>()?;
            let mut next = Vec::new();
            let mut scanned = 0u64;
            for (n, s) in pieces {
                next.extend(n);
                scanned += s;
            }
            if let Some(start_ns) = step_start {
                tracer.span(
                    start_ns,
                    tracer.now_ns(),
                    sembfs_obs::TraceEvent::Step {
                        dir: sembfs_obs::Dir::TopDown,
                        scanned_edges: scanned,
                    },
                );
            }
            Ok((next, scanned))
        })
        .collect::<Result<Vec<_>>>()?;

    let mut next = Vec::new();
    let mut scanned_edges = 0u64;
    for (n, s) in per_domain {
        next.extend(n);
        scanned_edges += s;
    }
    Ok(TopDownOutput {
        next,
        scanned_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{new_parent_array, snapshot_parents};
    use sembfs_csr::{build_csr, BuildOptions, DramForwardGraph};
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_graph500::INVALID_PARENT;
    use sembfs_numa::RangePartition;

    fn forward(edges: Vec<(u32, u32)>, n: u64, domains: usize) -> DramForwardGraph {
        let el = MemEdgeList::new(n, edges);
        let csr = build_csr(&el, BuildOptions::default()).unwrap();
        DramForwardGraph::from_csr(&csr, &RangePartition::new(n, domains))
    }

    #[test]
    fn expands_one_level() {
        // Star: 0 connected to 1..=4.
        let g = forward(vec![(0, 1), (0, 2), (0, 3), (0, 4)], 5, 2);
        let parent = new_parent_array(5, 0);
        let visited = AtomicBitmap::new(5);
        visited.set(0);

        let out = top_down_step(&g, &[0], &parent, &visited, 64, &NeighborCtx::dram).unwrap();
        let mut next = out.next.clone();
        next.sort_unstable();
        assert_eq!(next, vec![1, 2, 3, 4]);
        assert_eq!(out.scanned_edges, 4);
        let snap = snapshot_parents(&parent);
        assert_eq!(&snap[1..], &[0, 0, 0, 0]);
    }

    #[test]
    fn already_visited_not_reclaimed() {
        let g = forward(vec![(0, 1), (1, 2)], 3, 1);
        let parent = new_parent_array(3, 0);
        let visited = AtomicBitmap::new(3);
        visited.set(0);
        visited.set(2); // pretend 2 was found earlier
        parent[2].store(99, Ordering::Relaxed);

        let out = top_down_step(&g, &[0], &parent, &visited, 64, &NeighborCtx::dram).unwrap();
        assert_eq!(out.next, vec![1]);
        // 2's parent untouched.
        assert_eq!(parent[2].load(Ordering::Relaxed), 99);
    }

    #[test]
    fn scanned_counts_all_frontier_edges() {
        // Triangle 0-1-2 plus leaf 3 on 0.
        let g = forward(vec![(0, 1), (1, 2), (2, 0), (0, 3)], 4, 2);
        let parent = new_parent_array(4, 0);
        let visited = AtomicBitmap::new(4);
        visited.set(0);
        let out = top_down_step(&g, &[0], &parent, &visited, 2, &NeighborCtx::dram).unwrap();
        // Frontier {0} has degree 3 (1, 2, 3).
        assert_eq!(out.scanned_edges, 3);
        assert_eq!(out.next.len(), 3);
    }

    #[test]
    fn each_vertex_claimed_once_under_contention() {
        // Complete-ish bipartite blob: many frontier vertices all pointing
        // at the same targets — exactly one parent must win per target.
        let mut edges = Vec::new();
        for u in 0..32u32 {
            for w in 32..64u32 {
                edges.push((u, w));
            }
        }
        let g = forward(edges, 64, 4);
        let parent = new_parent_array(64, 0);
        let visited = AtomicBitmap::new(64);
        let frontier: Vec<u32> = (0..32).collect();
        for &v in &frontier {
            visited.set(v);
        }
        let out = top_down_step(&g, &frontier, &parent, &visited, 4, &NeighborCtx::dram).unwrap();
        let mut next = out.next.clone();
        next.sort_unstable();
        assert_eq!(next, (32..64).collect::<Vec<u32>>());
        let snap = snapshot_parents(&parent);
        for w in 32..64 {
            let p = snap[w as usize];
            assert!(p < 32, "vertex {w} got parent {p}");
        }
        assert_eq!(out.scanned_edges, 32 * 32);
    }

    #[test]
    fn empty_frontier_is_a_noop() {
        let g = forward(vec![(0, 1)], 2, 1);
        let parent = new_parent_array(2, 0);
        let visited = AtomicBitmap::new(2);
        let out = top_down_step(&g, &[], &parent, &visited, 64, &NeighborCtx::dram).unwrap();
        assert!(out.next.is_empty());
        assert_eq!(out.scanned_edges, 0);
        assert_eq!(snapshot_parents(&parent)[1], INVALID_PARENT);
    }
}
