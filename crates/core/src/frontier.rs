//! Frontier representations and conversions.
//!
//! The top-down step consumes the frontier as a **queue** of vertex IDs
//! (threads dequeue batches of 64, §V-C); the bottom-up step consumes it
//! as a **bitmap** (membership tests from every unvisited vertex). The
//! hybrid driver converts between the two at direction switches.

use rayon::prelude::*;

use crate::bitmap::AtomicBitmap;
use crate::VertexId;

/// Fill `bitmap` with the members of `queue` (bitmap must be pre-cleared).
pub fn queue_to_bitmap(queue: &[VertexId], bitmap: &AtomicBitmap) {
    queue.par_iter().for_each(|&v| bitmap.set(v));
}

/// Collect the set bits of `bitmap` into an ascending queue.
pub fn bitmap_to_queue(bitmap: &AtomicBitmap) -> Vec<VertexId> {
    let words = bitmap.num_words();
    // Parallel over word blocks, then concatenate in order.
    let blocks: Vec<Vec<VertexId>> = (0..words.div_ceil(1024))
        .into_par_iter()
        .map(|blk| {
            let mut out = Vec::new();
            let start = blk * 1024;
            let end = (start + 1024).min(words);
            for wi in start..end {
                let mut w = bitmap.word(wi);
                while w != 0 {
                    let bit = w.trailing_zeros();
                    w &= w - 1;
                    let v = (wi * 64) as u64 + bit as u64;
                    if v < bitmap.len() {
                        out.push(v as VertexId);
                    }
                }
            }
            out
        })
        .collect();
    let mut queue = Vec::with_capacity(blocks.iter().map(Vec::len).sum());
    for b in blocks {
        queue.extend(b);
    }
    queue
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_queue_bitmap_queue() {
        let queue: Vec<u32> = vec![0, 5, 63, 64, 100, 9999];
        let bm = AtomicBitmap::new(10_000);
        queue_to_bitmap(&queue, &bm);
        assert_eq!(bm.count_ones(), queue.len() as u64);
        assert_eq!(bitmap_to_queue(&bm), queue);
    }

    #[test]
    fn empty_conversions() {
        let bm = AtomicBitmap::new(100);
        queue_to_bitmap(&[], &bm);
        assert!(bitmap_to_queue(&bm).is_empty());
    }

    #[test]
    fn large_dense_bitmap() {
        let n = 100_000u64;
        let bm = AtomicBitmap::new(n);
        let queue: Vec<u32> = (0..n as u32).step_by(3).collect();
        queue_to_bitmap(&queue, &bm);
        assert_eq!(bitmap_to_queue(&bm), queue);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// queue → bitmap → queue is the sorted dedup of the input.
            #[test]
            fn conversion_roundtrip(
                raw in proptest::collection::vec(0u32..5000, 0..300),
                len in 5000u64..6000,
            ) {
                let bm = AtomicBitmap::new(len);
                queue_to_bitmap(&raw, &bm);
                let mut expect = raw.clone();
                expect.sort_unstable();
                expect.dedup();
                prop_assert_eq!(bitmap_to_queue(&bm), expect);
            }
        }
    }
}
