//! Deterministic parallel BFS step kernels (`ParallelBfs`).
//!
//! The legacy kernels in [`crate::topdown`]/[`crate::bottomup`] are
//! parallel over the rayon shim but *racy in the parent choice*: whichever
//! thread wins `test_and_set` keeps its parent, so two runs of the same
//! search can produce different (both valid) trees. These kernels instead
//! run an explicit worker pool with a canonical **min-parent** tie-break,
//! so the tree is bit-identical to [`crate::reference_bfs`] at any thread
//! count, direction schedule, and data layout:
//!
//! * **Top-down** claims vertices with `fetch_min` on the shared atomic
//!   parent array. Every frontier neighbor of `w` proposes itself; the
//!   smallest proposal survives, and exactly one proposer (the one that
//!   observed `INVALID_PARENT`) appends `w` to its thread-local next
//!   buffer. Buffers are concatenated after the join — no global lock.
//!   Visited bits are set only *after* the step, otherwise a larger
//!   early proposer would suppress a smaller later one.
//! * **Bottom-up** range-partitions the unvisited vertices (each has a
//!   unique owner, so plain stores suffice) and takes the *minimum*
//!   frontier neighbor via [`BottomUpSource::search_parent_min`] instead
//!   of the first hit, which depends on the adjacency layout.
//!
//! Both graphs derive from the same bidirectional CSR, so "`w`'s smallest
//! frontier neighbor" is the same vertex in either direction — the min
//! rule commutes with the α/β switch schedule.
//!
//! Work distribution is chunked work-stealing: a shared atomic cursor
//! over (domain × frontier-chunk) units top-down and (domain ×
//! vertex-range) units bottom-up. Idle workers immediately claim the next
//! unit, so on the semi-external path all workers issue page reads
//! concurrently and their throttled `Device::wait_until` windows overlap.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use sembfs_csr::{DomainNeighbors, NeighborCtx};
use sembfs_numa::{DomainCounters, LocalDomainCounters, RangePartition};
use sembfs_semext::Result;

use crate::bitmap::AtomicBitmap;
use crate::bottomup::{BottomUpOutput, BottomUpSource};
use crate::topdown::TopDownOutput;
use crate::{VertexId, INVALID_PARENT};

/// Vertices per bottom-up work unit (same granularity as the legacy
/// kernel's inner chunks).
const BOTTOM_UP_CHUNK: u64 = 4096;

/// One top-down worker's step result: its next-frontier buffer, scanned
/// edges, and (when NUMA accounting is on) its private counter deltas.
type WorkerOutput = Result<(Vec<VertexId>, u64, Option<LocalDomainCounters>)>;

/// Deterministic parallel top-down step over `threads` explicit workers.
///
/// Semantics match [`crate::topdown::top_down_step`] except for the
/// tie-break: each discovered vertex gets its **smallest** frontier
/// neighbor as parent (`fetch_min` claim), so the result is independent
/// of the worker schedule. `counters`, when given, accrue per-domain
/// locality: each neighbor-list visit is charged from the frontier
/// vertex's owning domain to the list's domain, accumulated thread-local
/// and merged once per step.
#[allow(clippy::too_many_arguments)]
pub fn par_top_down_step<G: DomainNeighbors>(
    g: &G,
    frontier: &[VertexId],
    parent: &[AtomicU32],
    visited: &AtomicBitmap,
    batch: usize,
    threads: usize,
    make_ctx: &(dyn Fn() -> NeighborCtx + Sync),
    counters: Option<&DomainCounters>,
) -> Result<TopDownOutput> {
    let domains = g.num_domains();
    let batch = batch.max(1);
    let num_chunks = frontier.len().div_ceil(batch);
    let total_units = domains * num_chunks;
    if total_units == 0 {
        return Ok(TopDownOutput {
            next: Vec::new(),
            scanned_edges: 0,
        });
    }
    // Owner partition of the *frontier* vertices, for locality charging.
    let part = counters.map(|_| RangePartition::new(g.num_vertices(), domains));

    let cursor = AtomicUsize::new(0);
    let workers = threads.max(1).min(total_units);

    let results: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let part = part.as_ref();
                scope.spawn(move || {
                    let tracer = sembfs_obs::global();
                    let step_start = tracer.is_enabled().then(|| tracer.now_ns());
                    let mut ctx = make_ctx();
                    let mut next = Vec::new();
                    let mut scanned = 0u64;
                    let mut local = counters.map(|_| LocalDomainCounters::new(domains));
                    loop {
                        let u = cursor.fetch_add(1, Ordering::Relaxed);
                        if u >= total_units {
                            break;
                        }
                        let k = u / num_chunks;
                        let c = u % num_chunks;
                        let chunk = &frontier[c * batch..((c + 1) * batch).min(frontier.len())];
                        g.with_neighbors_batch(k, chunk, &mut ctx, &mut |v, ns| {
                            scanned += ns.len() as u64;
                            if let (Some(local), Some(part)) = (local.as_mut(), part) {
                                local.record(part.domain_of(v as u64), k, ns.len() as u64);
                            }
                            for &w in ns {
                                // Visited bits are stable during the
                                // step (set after the join below), so
                                // every frontier neighbor of an
                                // unvisited w gets to propose.
                                if !visited.get(w) {
                                    let prev = parent[w as usize].fetch_min(v, Ordering::Relaxed);
                                    if prev == INVALID_PARENT {
                                        next.push(w);
                                    }
                                }
                            }
                        })?;
                    }
                    if let Some(start_ns) = step_start {
                        tracer.span(
                            start_ns,
                            tracer.now_ns(),
                            sembfs_obs::TraceEvent::Step {
                                dir: sembfs_obs::Dir::TopDown,
                                scanned_edges: scanned,
                            },
                        );
                    }
                    Ok((next, scanned, local))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel top-down worker panicked"))
            .collect()
    });

    let mut next = Vec::new();
    let mut scanned_edges = 0u64;
    for r in results {
        let (n, s, local) = r?;
        next.extend(n);
        scanned_edges += s;
        if let (Some(counters), Some(local)) = (counters, local) {
            counters.merge(&local);
        }
    }
    // Exactly one worker claimed each discovered vertex, so the merged
    // buffers are duplicate-free; publish the visited bits now that no
    // smaller parent proposal can arrive.
    for &w in &next {
        visited.set(w);
    }
    Ok(TopDownOutput {
        next,
        scanned_edges,
    })
}

/// Deterministic parallel bottom-up step over `threads` explicit workers.
///
/// Semantics match [`crate::bottomup::bottom_up_step`] except each
/// discovered vertex takes its **smallest** frontier neighbor
/// ([`BottomUpSource::search_parent_min`]), so the parent tree matches
/// the min-parent top-down claim and [`crate::reference_bfs`]. Note the
/// edge accounting differs from the first-hit kernel: the min scan always
/// pays the full degree of every probed vertex.
#[allow(clippy::too_many_arguments)]
pub fn par_bottom_up_step<B: BottomUpSource>(
    b: &B,
    frontier: &AtomicBitmap,
    next: &AtomicBitmap,
    parent: &[AtomicU32],
    visited: &AtomicBitmap,
    threads: usize,
    make_ctx: &(dyn Fn() -> NeighborCtx + Sync),
    counters: Option<&DomainCounters>,
) -> Result<BottomUpOutput> {
    let part = b.partition();
    let domains = part.num_domains();
    // Work units: BOTTOM_UP_CHUNK-vertex ranges, never straddling a
    // domain boundary (probes stay domain-local, as in the legacy kernel).
    let mut units: Vec<(usize, std::ops::Range<u64>)> = Vec::new();
    for k in 0..domains {
        let range = part.range(k);
        let mut s = range.start;
        while s < range.end {
            let e = (s + BOTTOM_UP_CHUNK).min(range.end);
            units.push((k, s..e));
            s = e;
        }
    }
    if units.is_empty() {
        return Ok(BottomUpOutput {
            discovered: 0,
            dram_edges: 0,
            nvm_edges: 0,
        });
    }

    let cursor = AtomicUsize::new(0);
    let workers = threads.max(1).min(units.len());
    let units = &units;

    let results: Vec<Result<(BottomUpOutput, Option<LocalDomainCounters>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let tracer = sembfs_obs::global();
                        let step_start = tracer.is_enabled().then(|| tracer.now_ns());
                        let mut ctx = make_ctx();
                        let mut out = BottomUpOutput {
                            discovered: 0,
                            dram_edges: 0,
                            nvm_edges: 0,
                        };
                        let mut local = counters.map(|_| LocalDomainCounters::new(domains));
                        loop {
                            let u = cursor.fetch_add(1, Ordering::Relaxed);
                            if u >= units.len() {
                                break;
                            }
                            let (k, ref range) = units[u];
                            for w in range.clone() {
                                let w = w as VertexId;
                                if visited.get(w) {
                                    continue;
                                }
                                let so = b.search_parent_min(w, &mut ctx, |v| frontier.get(v))?;
                                out.dram_edges += so.dram_edges;
                                out.nvm_edges += so.nvm_edges;
                                if let Some(local) = local.as_mut() {
                                    // Probes read w's own adjacency list —
                                    // domain-local by construction.
                                    local.record(k, k, so.dram_edges + so.nvm_edges);
                                }
                                if let Some(p) = so.parent {
                                    // w has a unique owner unit: plain
                                    // store, and the frontier bitmap (not
                                    // visited) arbitrates searches, so
                                    // setting bits mid-step is safe.
                                    parent[w as usize].store(p, Ordering::Relaxed);
                                    visited.set(w);
                                    next.set(w);
                                    out.discovered += 1;
                                }
                            }
                        }
                        if let Some(start_ns) = step_start {
                            tracer.span(
                                start_ns,
                                tracer.now_ns(),
                                sembfs_obs::TraceEvent::Step {
                                    dir: sembfs_obs::Dir::BottomUp,
                                    scanned_edges: out.dram_edges + out.nvm_edges,
                                },
                            );
                        }
                        Ok((out, local))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel bottom-up worker panicked"))
                .collect()
        });

    let mut total = BottomUpOutput {
        discovered: 0,
        dram_edges: 0,
        nvm_edges: 0,
    };
    for r in results {
        let (out, local) = r?;
        total.discovered += out.discovered;
        total.dram_edges += out.dram_edges;
        total.nvm_edges += out.nvm_edges;
        if let (Some(counters), Some(local)) = (counters, local) {
            counters.merge(&local);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{new_parent_array, snapshot_parents};
    use sembfs_csr::{build_csr, BackwardGraph, BuildOptions, DramForwardGraph};
    use sembfs_graph500::edge_list::MemEdgeList;

    fn forward(edges: Vec<(u32, u32)>, n: u64, domains: usize) -> DramForwardGraph {
        let el = MemEdgeList::new(n, edges);
        let csr = build_csr(&el, BuildOptions::default()).unwrap();
        DramForwardGraph::from_csr(&csr, &RangePartition::new(n, domains))
    }

    #[test]
    fn expands_one_level() {
        let g = forward(vec![(0, 1), (0, 2), (0, 3), (0, 4)], 5, 2);
        let parent = new_parent_array(5, 0);
        let visited = AtomicBitmap::new(5);
        visited.set(0);
        let out = par_top_down_step(&g, &[0], &parent, &visited, 64, 4, &NeighborCtx::dram, None)
            .unwrap();
        let mut next = out.next.clone();
        next.sort_unstable();
        assert_eq!(next, vec![1, 2, 3, 4]);
        assert_eq!(out.scanned_edges, 4);
        assert_eq!(&snapshot_parents(&parent)[1..], &[0, 0, 0, 0]);
        for w in 1..5 {
            assert!(visited.get(w));
        }
    }

    #[test]
    fn contended_targets_get_min_parent() {
        // Complete bipartite 32×32: every target is proposed by all 32
        // frontier vertices; the canonical winner is always vertex 0.
        let mut edges = Vec::new();
        for u in 0..32u32 {
            for w in 32..64u32 {
                edges.push((u, w));
            }
        }
        let g = forward(edges, 64, 4);
        let frontier: Vec<u32> = (0..32).collect();
        for threads in [1, 2, 4, 8] {
            let parent = new_parent_array(64, 0);
            let visited = AtomicBitmap::new(64);
            for &v in &frontier {
                visited.set(v);
            }
            let out = par_top_down_step(
                &g,
                &frontier,
                &parent,
                &visited,
                4,
                threads,
                &NeighborCtx::dram,
                None,
            )
            .unwrap();
            assert_eq!(out.next.len(), 32, "{threads} threads");
            assert_eq!(out.scanned_edges, 32 * 32);
            let snap = snapshot_parents(&parent);
            for (w, &p) in snap.iter().enumerate().skip(32) {
                assert_eq!(p, 0, "vertex {w} at {threads} threads");
            }
        }
    }

    #[test]
    fn claims_are_exactly_once() {
        // Each discovered vertex must appear in exactly one next buffer.
        let mut edges = Vec::new();
        for u in 0..16u32 {
            for w in 16..176u32 {
                edges.push((u, w));
            }
        }
        let g = forward(edges, 176, 2);
        let frontier: Vec<u32> = (0..16).collect();
        let parent = new_parent_array(176, 0);
        let visited = AtomicBitmap::new(176);
        for &v in &frontier {
            visited.set(v);
        }
        let out = par_top_down_step(
            &g,
            &frontier,
            &parent,
            &visited,
            2,
            8,
            &NeighborCtx::dram,
            None,
        )
        .unwrap();
        let mut next = out.next.clone();
        next.sort_unstable();
        let deduped = next.len();
        next.dedup();
        assert_eq!(next.len(), deduped, "a vertex was claimed twice");
        assert_eq!(next, (16..176).collect::<Vec<u32>>());
    }

    #[test]
    fn bottom_up_takes_min_frontier_neighbor() {
        // Vertex 3's backward neighbors are [2, 0, 1] (unsorted build);
        // with frontier {1, 2} the first-hit kernel would pick 2, the
        // deterministic kernel must pick 1.
        let el = MemEdgeList::new(4, vec![(3, 2), (3, 0), (3, 1)]);
        let csr = build_csr(&el, BuildOptions::default()).unwrap();
        let bg = BackwardGraph::new(csr, RangePartition::new(4, 1));
        let parent = new_parent_array(4, 0);
        let visited = AtomicBitmap::new(4);
        visited.set(1);
        visited.set(2);
        let frontier = AtomicBitmap::new(4);
        frontier.set(1);
        frontier.set(2);
        let next = AtomicBitmap::new(4);
        let out = par_bottom_up_step(
            &bg,
            &frontier,
            &next,
            &parent,
            &visited,
            4,
            &NeighborCtx::dram,
            None,
        )
        .unwrap();
        assert_eq!(out.discovered, 1);
        assert_eq!(parent[3].load(Ordering::Relaxed), 1);
        assert!(next.get(3));
    }

    #[test]
    fn thread_counts_agree_with_each_other() {
        // A denser random-ish graph; every thread count must produce the
        // same parent array from the same frontier.
        let p = sembfs_graph500::KroneckerParams::graph500(8, 8);
        let el = p.generate();
        let csr = build_csr(&el, BuildOptions::default()).unwrap();
        let n = csr.num_vertices();
        let g = DramForwardGraph::from_csr(&csr, &RangePartition::new(n, 4));
        let root = (0..n as u32).find(|&v| csr.degree(v) > 0).unwrap();
        let run = |threads: usize| {
            let parent = new_parent_array(n, root);
            let visited = AtomicBitmap::new(n);
            visited.set(root);
            let mut frontier = vec![root];
            while !frontier.is_empty() {
                let out = par_top_down_step(
                    &g,
                    &frontier,
                    &parent,
                    &visited,
                    8,
                    threads,
                    &NeighborCtx::dram,
                    None,
                )
                .unwrap();
                frontier = out.next;
            }
            snapshot_parents(&parent)
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), base, "{threads} threads diverged");
        }
    }

    #[test]
    fn counters_sum_to_scanned_edges() {
        let g = forward(vec![(0, 1), (0, 2), (1, 3), (2, 3)], 4, 2);
        let counters = DomainCounters::new(2);
        let parent = new_parent_array(4, 0);
        let visited = AtomicBitmap::new(4);
        visited.set(0);
        let out = par_top_down_step(
            &g,
            &[0],
            &parent,
            &visited,
            64,
            2,
            &NeighborCtx::dram,
            Some(&counters),
        )
        .unwrap();
        assert_eq!(
            counters.total_local() + counters.total_remote(),
            out.scanned_edges
        );
    }
}
