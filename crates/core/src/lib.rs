//! `sembfs-core` — the hybrid BFS with semi-external memory of
//! Iwabuchi et al. (IPPS 2014).
//!
//! The algorithm (§III) combines a **top-down** step (expand the frontier
//! through the forward graph) with a **bottom-up** step (let unvisited
//! vertices search the frontier through the backward graph), switching
//! directions by the frontier-size thresholds α and β (§III-C). The
//! paper's contribution (§V) is the *data layout*: the forward graph —
//! touched only while the frontier is small — is offloaded to NVM, while
//! the backward graph and BFS status data stay in DRAM, NUMA-partitioned.
//!
//! Layer map:
//!
//! * [`bitmap`], [`frontier`], [`tree`] — BFS status data (§IV-A):
//!   visited/frontier bitmaps, queues, the parent tree.
//! * [`topdown`], [`bottomup`] — the two step kernels, generic over where
//!   their graph lives (DRAM or metered NVM).
//! * [`policy`] — direction-switching: the paper's α/β rule, fixed
//!   directions (the Fig. 8 baselines), and a Beamer-style heuristic for
//!   ablation.
//! * [`parallel`] — deterministic parallel step kernels: chunked
//!   work-stealing top-down with a min-parent `fetch_min` claim and
//!   range-partitioned bottom-up, bit-identical to [`reference_bfs`] at
//!   any thread count (`BfsConfig::threads`).
//! * [`hybrid`] — the level-synchronous driver with per-level
//!   instrumentation ([`level_stats`]).
//! * [`mod@reference`] — the serial Graph500-reference-style BFS baseline.
//! * [`scenario`] — Table I's machine scenarios: *DRAM-only*,
//!   *DRAM+PCIeFlash*, *DRAM+SSD*; builds the full data layout and runs
//!   any searcher on it.

pub mod bitmap;
pub mod bottomup;
pub mod energy;
pub mod frontier;
pub mod hybrid;
pub mod level_stats;
pub mod parallel;
pub mod policy;
pub mod reference;
pub mod scenario;
pub mod topdown;
pub mod tree;

pub use bitmap::AtomicBitmap;
pub use bottomup::{BottomUpSource, SearchOutcome};
pub use energy::PowerModel;
pub use hybrid::{hybrid_bfs, hybrid_bfs_distances, BfsConfig, BfsRun, DistanceRun};
pub use level_stats::{Direction, LevelStats};
pub use parallel::{par_bottom_up_step, par_top_down_step};
pub use policy::{
    AlphaBetaPolicy, BeamerPolicy, DirectionPolicy, FixedPolicy, PolicyCtx, PolicyEvent,
};
pub use reference::reference_bfs;
pub use scenario::{AccessPath, Scenario, ScenarioData, ScenarioOptions};
pub use tree::status_data_bytes;

pub use sembfs_graph500::{VertexId, INVALID_PARENT};
