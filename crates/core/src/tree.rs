//! The BFS tree and status-data sizing.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::{VertexId, INVALID_PARENT};

/// Allocate a parent array with every vertex unvisited and `root` its own
/// parent (the Graph500 convention).
pub fn new_parent_array(n: u64, root: VertexId) -> Vec<AtomicU32> {
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INVALID_PARENT)).collect();
    parent[root as usize].store(root, Ordering::Relaxed);
    parent
}

/// Snapshot an atomic parent array into a plain vector (end of BFS).
pub fn snapshot_parents(parent: &[AtomicU32]) -> Vec<VertexId> {
    parent.iter().map(|p| p.load(Ordering::Relaxed)).collect()
}

/// Size in bytes of the BFS status data for an `n`-vertex graph on an
/// `ℓ`-domain topology — the "BFS Status Data" rows of Table II and
/// Fig. 3: the parent tree (`4n`), the visited bitmap (`n/8`), the
/// frontier and next bitmaps (`n/8` each), and the per-domain top-down
/// queues (worst case one entry per vertex, `4n` total).
pub fn status_data_bytes(n: u64, _domains: usize) -> u64 {
    let tree = 4 * n;
    let bitmaps = 3 * n.div_ceil(8);
    let queues = 4 * n;
    tree + bitmaps + queues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_array_initial_state() {
        let p = new_parent_array(5, 2);
        let snap = snapshot_parents(&p);
        assert_eq!(
            snap,
            vec![
                INVALID_PARENT,
                INVALID_PARENT,
                2,
                INVALID_PARENT,
                INVALID_PARENT
            ]
        );
    }

    #[test]
    fn snapshot_reflects_stores() {
        let p = new_parent_array(3, 0);
        p[1].store(0, Ordering::Relaxed);
        assert_eq!(snapshot_parents(&p), vec![0, 0, INVALID_PARENT]);
    }

    #[test]
    fn status_size_scales_linearly() {
        let a = status_data_bytes(1 << 20, 4);
        let b = status_data_bytes(1 << 21, 4);
        assert_eq!(b, 2 * a);
        // 8n + 3n/8 ≈ 8.375 bytes per vertex.
        assert_eq!(a, 8 * (1 << 20) + 3 * ((1 << 20) / 8));
    }
}
