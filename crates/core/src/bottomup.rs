//! The bottom-up step (Fig. 2) and its neighbor sources.
//!
//! Every unvisited vertex probes its neighbor list for a frontier member
//! and stops at the first hit ("the bottom-up approach terminates the
//! vertex searches … once we find [a frontier vertex]"). Vertices are
//! scanned per NUMA domain over the backward graph's local range (§V-C).
//!
//! [`BottomUpSource`] abstracts where the neighbor list lives:
//!
//! * [`BackwardGraph`] — fully in DRAM (the paper's implemented layout);
//! * [`SplitBackwardGraph`] — DRAM head + NVM tail (§VI-E, the extension
//!   the paper only *estimates*; here it actually runs, counting how many
//!   probes spill to external memory for Fig. 14).

use std::sync::atomic::{AtomicU32, Ordering};

use rayon::prelude::*;
use sembfs_csr::{BackwardGraph, NeighborCtx, SplitBackwardGraph};
use sembfs_numa::RangePartition;
use sembfs_semext::{ReadAt, Result};

use crate::bitmap::AtomicBitmap;
use crate::VertexId;

/// Result of probing one vertex's neighbors for a frontier member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// The frontier neighbor found, if any (becomes the parent).
    pub parent: Option<VertexId>,
    /// Neighbor entries examined in DRAM.
    pub dram_edges: u64,
    /// Neighbor entries examined on external memory.
    pub nvm_edges: u64,
}

/// A neighbor source for the bottom-up probe.
pub trait BottomUpSource: Send + Sync {
    /// The NUMA vertex partition.
    fn partition(&self) -> &RangePartition;

    /// Probe `w`'s neighbors in order; stop at the first neighbor for
    /// which `in_frontier` is true.
    fn search_parent(
        &self,
        w: VertexId,
        ctx: &mut NeighborCtx,
        in_frontier: impl Fn(VertexId) -> bool,
    ) -> Result<SearchOutcome>;

    /// Probe *all* of `w`'s neighbors and return the **smallest** frontier
    /// member. The deterministic parallel kernel uses this instead of
    /// [`search_parent`](Self::search_parent): first-hit order depends on
    /// the adjacency layout (neighbor sorting is optional), while the
    /// minimum is layout-invariant — the same canonical parent the
    /// min-parent top-down claim and [`crate::reference_bfs`] produce.
    fn search_parent_min(
        &self,
        w: VertexId,
        ctx: &mut NeighborCtx,
        in_frontier: impl Fn(VertexId) -> bool,
    ) -> Result<SearchOutcome>;

    /// Full degree of `w` (used for TEPS edge accounting).
    fn full_degree(&self, w: VertexId, ctx: &mut NeighborCtx) -> Result<u64>;
}

impl BottomUpSource for BackwardGraph {
    fn partition(&self) -> &RangePartition {
        BackwardGraph::partition(self)
    }

    fn search_parent(
        &self,
        w: VertexId,
        _ctx: &mut NeighborCtx,
        in_frontier: impl Fn(VertexId) -> bool,
    ) -> Result<SearchOutcome> {
        let mut scanned = 0u64;
        for &v in self.neighbors(w) {
            scanned += 1;
            if in_frontier(v) {
                return Ok(SearchOutcome {
                    parent: Some(v),
                    dram_edges: scanned,
                    nvm_edges: 0,
                });
            }
        }
        Ok(SearchOutcome {
            parent: None,
            dram_edges: scanned,
            nvm_edges: 0,
        })
    }

    fn search_parent_min(
        &self,
        w: VertexId,
        _ctx: &mut NeighborCtx,
        in_frontier: impl Fn(VertexId) -> bool,
    ) -> Result<SearchOutcome> {
        let mut scanned = 0u64;
        let mut best: Option<VertexId> = None;
        for &v in self.neighbors(w) {
            scanned += 1;
            if in_frontier(v) && best.is_none_or(|b| v < b) {
                best = Some(v);
            }
        }
        Ok(SearchOutcome {
            parent: best,
            dram_edges: scanned,
            nvm_edges: 0,
        })
    }

    fn full_degree(&self, w: VertexId, _ctx: &mut NeighborCtx) -> Result<u64> {
        Ok(self.degree(w))
    }
}

impl<R: ReadAt> BottomUpSource for SplitBackwardGraph<R> {
    fn partition(&self) -> &RangePartition {
        SplitBackwardGraph::partition(self)
    }

    fn search_parent(
        &self,
        w: VertexId,
        ctx: &mut NeighborCtx,
        in_frontier: impl Fn(VertexId) -> bool,
    ) -> Result<SearchOutcome> {
        // Hot head first — usually terminates here (§VI-E's premise).
        let mut dram_edges = 0u64;
        for &v in self.head_neighbors(w) {
            dram_edges += 1;
            if in_frontier(v) {
                return Ok(SearchOutcome {
                    parent: Some(v),
                    dram_edges,
                    nvm_edges: 0,
                });
            }
        }
        // Cold tail: stream from external memory.
        let mut nvm_edges = 0u64;
        let parent = self.with_tail_neighbors(w, ctx, |ns| {
            for &v in ns {
                nvm_edges += 1;
                if in_frontier(v) {
                    return Some(v);
                }
            }
            None
        })?;
        Ok(SearchOutcome {
            parent,
            dram_edges,
            nvm_edges,
        })
    }

    fn search_parent_min(
        &self,
        w: VertexId,
        ctx: &mut NeighborCtx,
        in_frontier: impl Fn(VertexId) -> bool,
    ) -> Result<SearchOutcome> {
        // The minimum may hide in either half: scan the DRAM head *and*
        // the NVM tail completely, then take the smaller hit.
        let mut dram_edges = 0u64;
        let mut best: Option<VertexId> = None;
        for &v in self.head_neighbors(w) {
            dram_edges += 1;
            if in_frontier(v) && best.is_none_or(|b| v < b) {
                best = Some(v);
            }
        }
        let mut nvm_edges = 0u64;
        let tail_best = self.with_tail_neighbors(w, ctx, |ns| {
            let mut tb: Option<VertexId> = None;
            for &v in ns {
                nvm_edges += 1;
                if in_frontier(v) && tb.is_none_or(|b| v < b) {
                    tb = Some(v);
                }
            }
            tb
        })?;
        if let Some(t) = tail_best {
            if best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        }
        Ok(SearchOutcome {
            parent: best,
            dram_edges,
            nvm_edges,
        })
    }

    fn full_degree(&self, w: VertexId, _ctx: &mut NeighborCtx) -> Result<u64> {
        Ok(self.head_neighbors(w).len() as u64 + self.tail_degree(w)?)
    }
}

/// Output of one bottom-up step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BottomUpOutput {
    /// Vertices discovered (set in `next`).
    pub discovered: u64,
    /// Neighbor entries probed in DRAM.
    pub dram_edges: u64,
    /// Neighbor entries probed on external memory (split layout only).
    pub nvm_edges: u64,
}

/// Run one bottom-up step: every unvisited vertex probes `frontier`
/// (bitmap of the previous level) through `b`; finds are recorded in
/// `parent`, `visited`, and `next`.
pub fn bottom_up_step<B: BottomUpSource>(
    b: &B,
    frontier: &AtomicBitmap,
    next: &AtomicBitmap,
    parent: &[AtomicU32],
    visited: &AtomicBitmap,
    make_ctx: &(dyn Fn() -> NeighborCtx + Sync),
) -> Result<BottomUpOutput> {
    let part = b.partition();
    let domains = part.num_domains();

    let outs: Vec<BottomUpOutput> = (0..domains)
        .into_par_iter()
        .map(|k| -> Result<BottomUpOutput> {
            let tracer = sembfs_obs::global();
            let step_start = tracer.is_enabled().then(|| tracer.now_ns());
            let range = part.range(k);
            // Chunk the local range so large domains parallelize inside.
            let chunks: Vec<std::ops::Range<u64>> = {
                let mut v = Vec::new();
                let mut s = range.start;
                while s < range.end {
                    let e = (s + 4096).min(range.end);
                    v.push(s..e);
                    s = e;
                }
                v
            };
            let pieces: Vec<BottomUpOutput> = chunks
                .into_par_iter()
                .map_init(make_ctx, |ctx, chunk| -> Result<BottomUpOutput> {
                    let mut out = BottomUpOutput {
                        discovered: 0,
                        dram_edges: 0,
                        nvm_edges: 0,
                    };
                    for w in chunk {
                        let w = w as VertexId;
                        if visited.get(w) {
                            continue;
                        }
                        let so = b.search_parent(w, ctx, |v| frontier.get(v))?;
                        out.dram_edges += so.dram_edges;
                        out.nvm_edges += so.nvm_edges;
                        if let Some(p) = so.parent {
                            parent[w as usize].store(p, Ordering::Relaxed);
                            visited.set(w);
                            next.set(w);
                            out.discovered += 1;
                        }
                    }
                    Ok(out)
                })
                .collect::<Result<Vec<_>>>()?;
            let domain_out = pieces.into_iter().fold(
                BottomUpOutput {
                    discovered: 0,
                    dram_edges: 0,
                    nvm_edges: 0,
                },
                |a, b| BottomUpOutput {
                    discovered: a.discovered + b.discovered,
                    dram_edges: a.dram_edges + b.dram_edges,
                    nvm_edges: a.nvm_edges + b.nvm_edges,
                },
            );
            if let Some(start_ns) = step_start {
                tracer.span(
                    start_ns,
                    tracer.now_ns(),
                    sembfs_obs::TraceEvent::Step {
                        dir: sembfs_obs::Dir::BottomUp,
                        scanned_edges: domain_out.dram_edges + domain_out.nvm_edges,
                    },
                );
            }
            Ok(domain_out)
        })
        .collect::<Result<Vec<_>>>()?;

    Ok(outs.into_iter().fold(
        BottomUpOutput {
            discovered: 0,
            dram_edges: 0,
            nvm_edges: 0,
        },
        |a, b| BottomUpOutput {
            discovered: a.discovered + b.discovered,
            dram_edges: a.dram_edges + b.dram_edges,
            nvm_edges: a.nvm_edges + b.nvm_edges,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{new_parent_array, snapshot_parents};
    use sembfs_csr::backward::split_csr;
    use sembfs_csr::{build_csr, BuildOptions, CsrGraph};
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_semext::ext_csr::{write_csr_files, ExtCsr};
    use sembfs_semext::{FileBackend, TempDir};

    fn backward(edges: Vec<(u32, u32)>, n: u64, domains: usize) -> BackwardGraph {
        let el = MemEdgeList::new(n, edges);
        let csr = build_csr(
            &el,
            BuildOptions {
                sort_neighbors: true,
                ..Default::default()
            },
        )
        .unwrap();
        BackwardGraph::new(csr, RangePartition::new(n, domains))
    }

    #[test]
    fn discovers_level_from_frontier() {
        // Star: 0 is the frontier, 1..=4 unvisited.
        let bg = backward(vec![(0, 1), (0, 2), (0, 3), (0, 4)], 5, 2);
        let parent = new_parent_array(5, 0);
        let visited = AtomicBitmap::new(5);
        visited.set(0);
        let frontier = AtomicBitmap::new(5);
        frontier.set(0);
        let next = AtomicBitmap::new(5);

        let out =
            bottom_up_step(&bg, &frontier, &next, &parent, &visited, &NeighborCtx::dram).unwrap();
        assert_eq!(out.discovered, 4);
        assert_eq!(next.count_ones(), 4);
        assert_eq!(&snapshot_parents(&parent)[1..], &[0, 0, 0, 0]);
    }

    #[test]
    fn early_termination_counts_fewer_probes() {
        // Vertex 3 has neighbors [0, 1, 2] sorted; frontier contains 0 →
        // one probe suffices.
        let bg = backward(vec![(3, 0), (3, 1), (3, 2)], 4, 1);
        let parent = new_parent_array(4, 0);
        let visited = AtomicBitmap::new(4);
        visited.set(0);
        let frontier = AtomicBitmap::new(4);
        frontier.set(0);
        let next = AtomicBitmap::new(4);

        let out =
            bottom_up_step(&bg, &frontier, &next, &parent, &visited, &NeighborCtx::dram).unwrap();
        assert_eq!(out.discovered, 1);
        // 3 probed once (hit 0 immediately); 1 and 2 probed their single
        // neighbor (3, not in frontier) once each.
        assert_eq!(out.dram_edges, 3);
        assert_eq!(parent[3].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn no_frontier_discovers_nothing() {
        let bg = backward(vec![(0, 1)], 2, 1);
        let parent = new_parent_array(2, 0);
        let visited = AtomicBitmap::new(2);
        let frontier = AtomicBitmap::new(2);
        let next = AtomicBitmap::new(2);
        let out =
            bottom_up_step(&bg, &frontier, &next, &parent, &visited, &NeighborCtx::dram).unwrap();
        assert_eq!(out.discovered, 0);
        assert_eq!(next.count_ones(), 0);
    }

    fn split_source(
        csr: &CsrGraph,
        k: u64,
        domains: usize,
        dir: &TempDir,
    ) -> SplitBackwardGraph<FileBackend> {
        let (head, ti, tv) = split_csr(csr, k);
        let ip = dir.path().join("tail.index");
        let vp = dir.path().join("tail.values");
        write_csr_files(&ip, &vp, &ti, &tv).unwrap();
        let tail = ExtCsr::new(
            FileBackend::open(&ip).unwrap(),
            FileBackend::open(&vp).unwrap(),
        )
        .unwrap()
        .with_dram_index()
        .unwrap();
        SplitBackwardGraph::new(
            head,
            tail,
            RangePartition::new(csr.num_vertices(), domains),
            k,
        )
    }

    #[test]
    fn split_source_spills_to_tail() {
        // Vertex 5 has neighbors [0,1,2,3,4]; keep 2 in DRAM. Frontier
        // contains only 4 → head misses (2 probes), tail finds it (3rd
        // tail probe).
        let el = MemEdgeList::new(6, vec![(5, 0), (5, 1), (5, 2), (5, 3), (5, 4)]);
        let csr = build_csr(
            &el,
            BuildOptions {
                sort_neighbors: true,
                ..Default::default()
            },
        )
        .unwrap();
        let dir = TempDir::new("bu-split").unwrap();
        let sbg = split_source(&csr, 2, 1, &dir);

        let mut ctx = NeighborCtx::dram();
        let so = sbg.search_parent(5, &mut ctx, |v| v == 4).unwrap();
        assert_eq!(so.parent, Some(4));
        assert_eq!(so.dram_edges, 2);
        assert_eq!(so.nvm_edges, 3);
        assert_eq!(sbg.full_degree(5, &mut ctx).unwrap(), 5);
    }

    #[test]
    fn min_search_returns_smallest_frontier_neighbor() {
        // Vertex 3 has neighbors [2, 0, 1] (unsorted build): first-hit
        // against frontier {1, 2} would return 2, the min scan returns 1.
        let el = MemEdgeList::new(4, vec![(3, 2), (3, 0), (3, 1)]);
        let csr = build_csr(&el, BuildOptions::default()).unwrap();
        let bg = BackwardGraph::new(csr, RangePartition::new(4, 1));
        let mut ctx = NeighborCtx::dram();
        let in_frontier = |v: VertexId| v == 1 || v == 2;
        let so = bg.search_parent_min(3, &mut ctx, in_frontier).unwrap();
        assert_eq!(so.parent, Some(1));
        // The min scan always pays the full degree.
        assert_eq!(so.dram_edges, 3);
    }

    #[test]
    fn min_search_spans_head_and_tail() {
        // Vertex 5 sorted neighbors [0,1,2,3,4], head limit 2 → head
        // holds [0,1], tail [2,3,4]. With frontier {1,3} the min is in
        // the head; with frontier {3,4} it is in the tail.
        let el = MemEdgeList::new(6, vec![(5, 0), (5, 1), (5, 2), (5, 3), (5, 4)]);
        let csr = build_csr(
            &el,
            BuildOptions {
                sort_neighbors: true,
                ..Default::default()
            },
        )
        .unwrap();
        let dir = TempDir::new("bu-minsplit").unwrap();
        let sbg = split_source(&csr, 2, 1, &dir);
        let mut ctx = NeighborCtx::dram();
        let so = sbg
            .search_parent_min(5, &mut ctx, |v| v == 1 || v == 3)
            .unwrap();
        assert_eq!(so.parent, Some(1));
        assert_eq!((so.dram_edges, so.nvm_edges), (2, 3));
        let so = sbg
            .search_parent_min(5, &mut ctx, |v| v == 3 || v == 4)
            .unwrap();
        assert_eq!(so.parent, Some(3));
    }

    #[test]
    fn split_source_head_hit_avoids_nvm() {
        let el = MemEdgeList::new(6, vec![(5, 0), (5, 1), (5, 2), (5, 3), (5, 4)]);
        let csr = build_csr(
            &el,
            BuildOptions {
                sort_neighbors: true,
                ..Default::default()
            },
        )
        .unwrap();
        let dir = TempDir::new("bu-split-hit").unwrap();
        let sbg = split_source(&csr, 2, 1, &dir);
        let mut ctx = NeighborCtx::dram();
        let so = sbg.search_parent(5, &mut ctx, |v| v == 0).unwrap();
        assert_eq!(so.parent, Some(0));
        assert_eq!(so.dram_edges, 1);
        assert_eq!(so.nvm_edges, 0);
    }

    #[test]
    fn split_step_equals_dram_step() {
        // A random-ish graph: both layouts must discover identical levels.
        let el = MemEdgeList::new(
            16,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (2, 5),
                (3, 6),
                (4, 7),
                (5, 8),
                (0, 9),
                (9, 10),
                (10, 11),
                (0, 12),
                (12, 13),
                (13, 14),
                (14, 15),
            ],
        );
        let csr = build_csr(
            &el,
            BuildOptions {
                sort_neighbors: true,
                ..Default::default()
            },
        )
        .unwrap();
        let dir = TempDir::new("bu-eq").unwrap();
        let sbg = split_source(&csr, 1, 2, &dir);
        let bg = BackwardGraph::new(csr, RangePartition::new(16, 2));

        let run = |do_split: bool| -> (u64, Vec<u32>) {
            let parent = new_parent_array(16, 0);
            let visited = AtomicBitmap::new(16);
            visited.set(0);
            let frontier = AtomicBitmap::new(16);
            frontier.set(0);
            let next = AtomicBitmap::new(16);
            let out = if do_split {
                bottom_up_step(
                    &sbg,
                    &frontier,
                    &next,
                    &parent,
                    &visited,
                    &NeighborCtx::dram,
                )
                .unwrap()
            } else {
                bottom_up_step(&bg, &frontier, &next, &parent, &visited, &NeighborCtx::dram)
                    .unwrap()
            };
            (out.discovered, snapshot_parents(&parent))
        };
        let (d1, p1) = run(false);
        let (d2, p2) = run(true);
        assert_eq!(d1, d2);
        assert_eq!(p1, p2);
    }
}
