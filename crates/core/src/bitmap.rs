//! Concurrent bitmaps for BFS status data.
//!
//! NETAL's status data (§IV-A) includes "bitmaps for BFS status memories":
//! the visited set and the frontier/next sets used by the bottom-up phase.
//! [`AtomicBitmap`] packs one bit per vertex into `AtomicU64` words;
//! `test_and_set` is the claim operation that makes the top-down step's
//! `tree(w) = -1` check-and-mark atomic.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::VertexId;

/// A fixed-size concurrent bitmap, one bit per vertex.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: u64,
}

impl AtomicBitmap {
    /// An all-zero bitmap over `len` bits.
    pub fn new(len: u64) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: VertexId) -> bool {
        debug_assert!((i as u64) < self.len);
        let w = self.words[i as usize / 64].load(Ordering::Relaxed);
        w & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i` (no return).
    #[inline]
    pub fn set(&self, i: VertexId) {
        debug_assert!((i as u64) < self.len);
        self.words[i as usize / 64].fetch_or(1u64 << (i % 64), Ordering::Relaxed);
    }

    /// Atomically set bit `i`, returning whether it was **already set**.
    /// Exactly one concurrent caller observes `false` — the claim winner.
    #[inline]
    pub fn test_and_set(&self, i: VertexId) -> bool {
        debug_assert!((i as u64) < self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i as usize / 64].fetch_or(mask, Ordering::Relaxed);
        prev & mask != 0
    }

    /// Clear every bit.
    pub fn clear(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum()
    }

    /// The raw word at index `wi` (for fast scanning).
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        self.words[wi].load(Ordering::Relaxed)
    }

    /// Number of 64-bit words.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Iterate the indices of set bits (ascending).
    pub fn iter_ones(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.words.len())
            .flat_map(move |wi| {
                let mut w = self.words[wi].load(Ordering::Relaxed);
                std::iter::from_fn(move || {
                    if w == 0 {
                        return None;
                    }
                    let bit = w.trailing_zeros();
                    w &= w - 1;
                    Some((wi * 64) as VertexId + bit as VertexId)
                })
            })
            .filter(move |&i| (i as u64) < self.len)
    }

    /// Heap size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let b = AtomicBitmap::new(200);
        assert!(!b.get(63));
        b.set(63);
        b.set(64);
        b.set(199);
        assert!(b.get(63));
        assert!(b.get(64));
        assert!(b.get(199));
        assert!(!b.get(0));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn test_and_set_reports_prior_state() {
        let b = AtomicBitmap::new(10);
        assert!(!b.test_and_set(5));
        assert!(b.test_and_set(5));
        assert!(b.get(5));
    }

    #[test]
    fn clear_resets() {
        let b = AtomicBitmap::new(100);
        for i in 0..100 {
            b.set(i);
        }
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn iter_ones_ascending() {
        let b = AtomicBitmap::new(300);
        for i in [0u32, 1, 63, 64, 65, 128, 299] {
            b.set(i);
        }
        let ones: Vec<u32> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 1, 63, 64, 65, 128, 299]);
    }

    #[test]
    fn iter_ones_empty() {
        let b = AtomicBitmap::new(100);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn exactly_one_claim_winner() {
        let b = std::sync::Arc::new(AtomicBitmap::new(64));
        let winners = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                let winners = winners.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if !b.test_and_set(17) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn size_accounting() {
        let b = AtomicBitmap::new(129);
        assert_eq!(b.num_words(), 3);
        assert_eq!(b.byte_size(), 24);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// iter_ones returns exactly the set of inserted indices.
            #[test]
            fn iter_matches_inserts(
                len in 1u64..1000,
                bits in proptest::collection::btree_set(0u32..1000, 0..50),
            ) {
                let bits: Vec<u32> =
                    bits.into_iter().filter(|&b| (b as u64) < len).collect();
                let bm = AtomicBitmap::new(len);
                for &i in &bits {
                    bm.set(i);
                }
                let got: Vec<u32> = bm.iter_ones().collect();
                prop_assert_eq!(got, bits);
            }
        }
    }
}
