//! Per-level instrumentation.
//!
//! Every analysis figure in the paper is a projection of per-level data:
//! Fig. 10 sums scanned edges by direction, Fig. 11 relates per-level
//! top-down slowdown to the level's average degree, Figs. 12/13 are I/O
//! statistics windowed per run. [`LevelStats`] records everything the
//! figures need for each BFS level.

use std::time::Duration;

use sembfs_semext::{CacheSnapshot, IoSnapshot};

/// Search direction of one BFS level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Expand frontier vertices through the forward graph.
    TopDown,
    /// Probe the frontier from unvisited vertices through the backward
    /// graph.
    BottomUp,
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::TopDown => write!(f, "top-down"),
            Direction::BottomUp => write!(f, "bottom-up"),
        }
    }
}

/// Measurements of a single BFS level.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Level number (root is level 0; this records the step producing
    /// level `level`).
    pub level: u32,
    /// The direction the step ran in.
    pub direction: Direction,
    /// Size of the *input* frontier the step consumed.
    pub frontier_size: u64,
    /// Vertices discovered by the step (the output frontier size).
    pub discovered: u64,
    /// Edges examined by the step (top-down: all edges out of the
    /// frontier; bottom-up: probes until a parent is found).
    pub scanned_edges: u64,
    /// Of `scanned_edges`, how many were served from external memory
    /// (forward-graph reads in top-down, tail reads in split bottom-up).
    pub nvm_edges: u64,
    /// Wall time of the step.
    pub elapsed: Duration,
    /// I/O-statistics delta of the monitored NVM device over this step,
    /// when a device is being monitored.
    pub io: Option<IoSnapshot>,
    /// Page-cache counter delta over this step, when a cache is being
    /// monitored (hit-rate per level: the levels whose working set fits
    /// DRAM run at cache speed, the rest pay the device).
    pub cache: Option<CacheSnapshot>,
    /// Worker threads the step ran on (exact for the deterministic
    /// parallel kernels, the shim's effective parallelism otherwise).
    pub threads: usize,
}

impl LevelStats {
    /// Average degree of the expanded frontier — Fig. 11's x-axis
    /// ("the average number of edges to search for a vertex in a single
    /// level"). Zero for an empty frontier.
    pub fn avg_degree(&self) -> f64 {
        if self.frontier_size == 0 {
            0.0
        } else {
            self.scanned_edges as f64 / self.frontier_size as f64
        }
    }

    /// Edges scanned per second in this level.
    pub fn scan_rate(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.scanned_edges as f64 / s
        } else {
            0.0
        }
    }

    /// Overlapped-wait ratio of the level's device window, in `[0, 1)`:
    /// the fraction of summed per-request response time hidden by
    /// concurrent in-flight requests (`1 − wall/Σresponse`). Zero when the
    /// requests were fully serialized (wall ≥ Σresponse) and `None` when
    /// no device was monitored or the level did no I/O.
    pub fn overlap(&self) -> Option<f64> {
        let io = self.io.as_ref()?;
        if io.response_ns == 0 {
            return None;
        }
        Some((1.0 - io.wall_ns() as f64 / io.response_ns as f64).max(0.0))
    }
}

/// Sum the scanned edges of `levels` run in `dir` (Fig. 10's bars).
pub fn scanned_edges_by_direction(levels: &[LevelStats], dir: Direction) -> u64 {
    levels
        .iter()
        .filter(|l| l.direction == dir)
        .map(|l| l.scanned_edges)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(dir: Direction, frontier: u64, scanned: u64) -> LevelStats {
        LevelStats {
            level: 1,
            direction: dir,
            frontier_size: frontier,
            discovered: 0,
            scanned_edges: scanned,
            nvm_edges: 0,
            elapsed: Duration::from_millis(10),
            io: None,
            cache: None,
            threads: 1,
        }
    }

    #[test]
    fn avg_degree() {
        let l = mk(Direction::TopDown, 4, 100);
        assert!((l.avg_degree() - 25.0).abs() < 1e-12);
        assert_eq!(mk(Direction::TopDown, 0, 0).avg_degree(), 0.0);
    }

    #[test]
    fn by_direction_sums() {
        let levels = vec![
            mk(Direction::TopDown, 1, 10),
            mk(Direction::BottomUp, 5, 100),
            mk(Direction::TopDown, 2, 7),
        ];
        assert_eq!(scanned_edges_by_direction(&levels, Direction::TopDown), 17);
        assert_eq!(
            scanned_edges_by_direction(&levels, Direction::BottomUp),
            100
        );
    }

    #[test]
    fn scan_rate() {
        let l = mk(Direction::TopDown, 1, 1000);
        assert!((l.scan_rate() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn overlap_ratio_from_io_window() {
        let mut l = mk(Direction::TopDown, 1, 10);
        assert_eq!(l.overlap(), None);
        // 4 requests, 100ns response each, over a 100ns wall window:
        // 4 in flight → 75% of the wait was hidden.
        l.io = Some(IoSnapshot {
            requests: 4,
            bytes: 4 * 4096,
            sectors: 32,
            response_ns: 400,
            service_ns: 100,
            first_arrival_ns: 0,
            last_completion_ns: 100,
            queued_at_arrival: 6,
        });
        assert!((l.overlap().unwrap() - 0.75).abs() < 1e-12);
        // Fully serialized: wall equals summed response → zero overlap.
        l.io = Some(IoSnapshot {
            requests: 2,
            bytes: 8192,
            sectors: 16,
            response_ns: 200,
            service_ns: 200,
            first_arrival_ns: 0,
            last_completion_ns: 200,
            queued_at_arrival: 0,
        });
        assert_eq!(l.overlap(), Some(0.0));
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::TopDown.to_string(), "top-down");
        assert_eq!(Direction::BottomUp.to_string(), "bottom-up");
    }
}
