//! Power modeling for the Green Graph500 claim.
//!
//! The paper's implementation "achieved 4.35 MTEPS/W … and ranked 4th on
//! November 2013 edition of the Green Graph500 list in the Big Data
//! category by using only a single fat server heavily equipped with
//! NVMs" (§I, §VIII). The energy argument is architectural: NVM lets one
//! node hold a graph that would otherwise need several DRAM-provisioned
//! nodes, and flash watts are far cheaper than DRAM watts.
//!
//! There is no power meter in a simulation, so this module is an
//! **estimate** built from documented 2013-era component powers; the
//! `ext_green500` bench combines it with measured (simulated) TEPS to
//! reproduce the *shape* of the claim — single NVM-equipped node vs a
//! DRAM cluster of equal capacity.

/// Component power constants (watts), 2013-era server class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Base node power: CPUs + board + fans + PSU loss. The paper's 4-way
    /// Opteron 6172 box idles high; 4 × 80 W TDP + ~100 W platform.
    pub node_base_w: f64,
    /// DRAM power per GiB provisioned (DDR3: ~0.65 W/GiB active).
    pub dram_w_per_gib: f64,
    /// One PCIe flash card (FusionIO ioDrive2: ~25 W max).
    pub pcie_flash_w: f64,
    /// One SATA SSD (Intel SSD 320: ~4 W active).
    pub sata_ssd_w: f64,
}

impl PowerModel {
    /// Constants for the paper's testbed class.
    pub fn era_2013() -> Self {
        Self {
            node_base_w: 420.0,
            dram_w_per_gib: 0.65,
            pcie_flash_w: 25.0,
            sata_ssd_w: 4.0,
        }
    }

    /// Power of one node with `dram_gib` of DRAM, `flash` PCIe cards, and
    /// `ssd` SATA drives.
    pub fn node_watts(&self, dram_gib: f64, flash: u32, ssd: u32) -> f64 {
        self.node_base_w
            + dram_gib * self.dram_w_per_gib
            + flash as f64 * self.pcie_flash_w
            + ssd as f64 * self.sata_ssd_w
    }

    /// The Green Graph500 metric.
    pub fn mteps_per_watt(&self, teps: f64, watts: f64) -> f64 {
        assert!(watts > 0.0, "power must be positive");
        teps / 1e6 / watts
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::era_2013()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_watts_composition() {
        let m = PowerModel::era_2013();
        let base = m.node_watts(0.0, 0, 0);
        assert_eq!(base, 420.0);
        let with_dram = m.node_watts(128.0, 0, 0);
        assert!((with_dram - (420.0 + 128.0 * 0.65)).abs() < 1e-9);
        let with_flash = m.node_watts(64.0, 1, 0);
        assert!(with_flash < with_dram, "half DRAM + flash beats full DRAM");
    }

    #[test]
    fn mteps_per_watt_matches_paper_arithmetic() {
        // The paper's Green Graph500 entry: a machine around 1 kW at a few
        // GTEPS gives single-digit MTEPS/W.
        let m = PowerModel::era_2013();
        let mpw = m.mteps_per_watt(4.22e9, 970.0);
        assert!((4.0..5.0).contains(&mpw), "got {mpw}");
    }

    #[test]
    fn dram_dominates_at_scale() {
        // A 1 TiB DRAM provision costs more than 25 flash cards.
        let m = PowerModel::era_2013();
        assert!(1024.0 * m.dram_w_per_gib > 25.0 * m.pcie_flash_w);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn zero_watts_rejected() {
        PowerModel::era_2013().mteps_per_watt(1.0, 0.0);
    }
}
