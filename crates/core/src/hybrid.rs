//! The hybrid BFS driver (§III-C, §V-C).
//!
//! A level-synchronous loop that starts top-down from the root, consults a
//! [`DirectionPolicy`] before every level, converts the frontier between
//! queue and bitmap forms at switches, and records a [`LevelStats`] per
//! level (including the monitored NVM device's I/O delta, which feeds
//! Figs. 11–13).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sembfs_csr::{DomainNeighbors, NeighborCtx};
use sembfs_numa::DomainCounters;
use sembfs_semext::{ChunkedReader, Device, Result, ShardedPageCache};

use crate::bitmap::AtomicBitmap;
use crate::bottomup::{bottom_up_step, BottomUpSource};
use crate::frontier::{bitmap_to_queue, queue_to_bitmap};
use crate::level_stats::{Direction, LevelStats};
use crate::parallel::{par_bottom_up_step, par_top_down_step};
use crate::policy::{DirectionPolicy, PolicyCtx, PolicyEvent};
use crate::topdown::top_down_step;
use crate::tree::{new_parent_array, snapshot_parents};
use crate::VertexId;

/// Tunables of a hybrid BFS execution.
#[derive(Debug, Clone, Default)]
pub struct BfsConfig {
    /// Vertices dequeued per thread per batch in the top-down step
    /// (the paper uses 64).
    pub batch: usize,
    /// Chunk reader used for semi-external neighbor reads (pass
    /// [`ChunkedReader::for_device`] of the forward device; ignored for
    /// DRAM graphs).
    pub reader: Option<ChunkedReader>,
    /// Device whose I/O statistics are snapshotted per level.
    pub io_monitor: Option<Arc<Device>>,
    /// Compute the frontier's outgoing-edge count each level and expose it
    /// to the policy (needed by [`crate::BeamerPolicy`]; costs one degree
    /// lookup per frontier vertex).
    pub count_frontier_edges: bool,
    /// Submit each top-down dequeue batch as one asynchronous device
    /// batch (`libaio`-style aggregation, §VI-D) instead of synchronous
    /// per-vertex reads. Only affects semi-external forward graphs.
    pub aggregate_io: bool,
    /// Page cache fronting the forward graph's stores: its counters are
    /// snapshotted per level ([`LevelStats::cache`]) and its presence
    /// enables coalesced span prefetches in the batched top-down path.
    pub cache_monitor: Option<Arc<ShardedPageCache>>,
    /// Re-budget the monitored cache to this many bytes before the run
    /// (spare-DRAM sweeps; `None` keeps the cache's current budget).
    pub cache_capacity_bytes: Option<u64>,
    /// Set the monitored cache's sequential readahead window, in pages
    /// (`None` keeps the current window).
    pub cache_readahead_pages: Option<usize>,
    /// Worker threads for the deterministic parallel kernels
    /// ([`crate::parallel`]). `0` (the default) keeps the legacy
    /// shim-parallel kernels; `>= 1` runs exactly that many explicit
    /// workers with min-parent tie-breaking, so the tree is bit-identical
    /// to [`crate::reference_bfs`] at any count.
    pub threads: usize,
    /// Per-domain locality counters charged by the parallel kernels
    /// (thread-local accumulate, merged once per step). Ignored when
    /// `threads == 0`.
    pub numa_counters: Option<Arc<DomainCounters>>,
}

impl BfsConfig {
    /// The paper's defaults: batch of 64, no monitoring, synchronous
    /// `read(2)` I/O. Honors `SEMBFS_BFS_THREADS` (worker count for the
    /// deterministic parallel kernels; unset or `0` keeps the legacy
    /// kernels) so test/CI matrices can flip every entry point at once.
    pub fn paper() -> Self {
        let threads = std::env::var("SEMBFS_BFS_THREADS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        Self {
            batch: 64,
            reader: None,
            io_monitor: None,
            count_frontier_edges: false,
            aggregate_io: false,
            cache_monitor: None,
            cache_capacity_bytes: None,
            cache_readahead_pages: None,
            threads,
            numa_counters: None,
        }
    }

    /// Run the deterministic parallel kernels on exactly `threads` workers
    /// (`0` restores the legacy kernels).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attach per-domain locality counters (parallel kernels only).
    pub fn with_numa_counters(mut self, counters: Arc<DomainCounters>) -> Self {
        self.numa_counters = Some(counters);
        self
    }

    /// Enable `libaio`-style batched I/O submissions (§VI-D).
    pub fn with_aggregation(mut self) -> Self {
        self.aggregate_io = true;
        self
    }

    /// Attach an I/O monitor.
    pub fn with_monitor(mut self, dev: Arc<Device>) -> Self {
        self.io_monitor = Some(dev);
        self
    }

    /// Use a specific chunk reader for external reads.
    pub fn with_reader(mut self, reader: ChunkedReader) -> Self {
        self.reader = Some(reader);
        self
    }

    /// Attach a page-cache monitor (per-level counter deltas + batched
    /// span prefetches).
    pub fn with_cache_monitor(mut self, cache: Arc<ShardedPageCache>) -> Self {
        self.cache_monitor = Some(cache);
        self
    }

    /// Re-budget the monitored cache before the run.
    pub fn with_cache_capacity(mut self, bytes: u64) -> Self {
        self.cache_capacity_bytes = Some(bytes);
        self
    }

    /// Set the monitored cache's readahead window before the run.
    pub fn with_cache_readahead(mut self, pages: usize) -> Self {
        self.cache_readahead_pages = Some(pages);
        self
    }
}

fn obs_dir(d: Direction) -> sembfs_obs::Dir {
    match d {
        Direction::TopDown => sembfs_obs::Dir::TopDown,
        Direction::BottomUp => sembfs_obs::Dir::BottomUp,
    }
}

/// The result of one hybrid BFS.
#[derive(Debug, Clone)]
pub struct BfsRun {
    /// Parent array (`INVALID_PARENT` for unreached vertices).
    pub parent: Vec<VertexId>,
    /// Per-level measurements.
    pub levels: Vec<LevelStats>,
    /// Vertices reached (including the root).
    pub visited: u64,
    /// Undirected input edges inside the traversed component — the edge
    /// count the official TEPS metric divides by (half the summed degree
    /// of visited vertices).
    pub teps_edges: u64,
    /// Total kernel wall time (sum of level times).
    pub elapsed: Duration,
}

impl BfsRun {
    /// TEPS of this run.
    pub fn teps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.teps_edges as f64 / s
        } else {
            0.0
        }
    }

    /// Edges actually scanned, summed over levels (Fig. 10's "total").
    pub fn scanned_edges(&self) -> u64 {
        self.levels.iter().map(|l| l.scanned_edges).sum()
    }
}

/// The result of a distances-only hybrid BFS ([`hybrid_bfs_distances`]).
#[derive(Debug, Clone)]
pub struct DistanceRun {
    /// Per-vertex hop count from the root
    /// ([`sembfs_graph500::validate::INVALID_LEVEL`] for unreached).
    pub levels: Vec<u32>,
    /// Vertices reached (including the root).
    pub visited: u64,
    /// Deepest level reached (0 for an isolated root).
    pub max_level: u32,
    /// Total kernel wall time (sum of level times).
    pub elapsed: Duration,
}

/// Run a hybrid BFS from `root` recording only per-vertex *distances* —
/// no parent tree is built and no TEPS edge sweep runs.
///
/// Consumers that only need eccentricities or point distances (the
/// pseudo-diameter double sweep, the query engine's `Distance` path) would
/// otherwise pay for a parent array *and* an `O(n·depth)` parent-chain
/// walk to recover levels; this entry point writes each level number
/// directly as its frontier is discovered. One `n`-word scratch array is
/// shared with the step kernels (they scribble parent ids into it, which
/// are overwritten with the level number before the next step reads
/// nothing from it — the kernels arbitrate purely through the visited
/// bitmap).
pub fn hybrid_bfs_distances<G, B, P>(
    forward: &G,
    backward: &B,
    root: VertexId,
    policy: &P,
    cfg: &BfsConfig,
) -> Result<DistanceRun>
where
    G: DomainNeighbors,
    B: BottomUpSource,
    P: DirectionPolicy + ?Sized,
{
    let n = forward.num_vertices();
    assert_eq!(
        n,
        backward.partition().num_vertices(),
        "graph size mismatch"
    );
    assert!((root as u64) < n, "root out of range");
    let batch = if cfg.batch == 0 { 64 } else { cfg.batch };
    let reader = cfg.reader.unwrap_or_else(ChunkedReader::unmerged);
    let aggregate = cfg.aggregate_io;
    if let Some(cache) = &cfg.cache_monitor {
        if let Some(bytes) = cfg.cache_capacity_bytes {
            cache.set_capacity_bytes(bytes);
        }
        if let Some(pages) = cfg.cache_readahead_pages {
            cache.set_readahead_pages(pages);
        }
    }
    let ctx_cache = cfg.cache_monitor.clone();
    let make_ctx = move || {
        let mut ctx = NeighborCtx::new(reader);
        if aggregate {
            ctx = ctx.with_aggregation();
        }
        if let Some(cache) = &ctx_cache {
            ctx = ctx.with_cache(cache.clone());
        }
        ctx
    };

    // The kernels' scratch array: they store parent ids for vertices they
    // claim; we overwrite each claim with its level before returning.
    let scratch = new_parent_array(n, root);
    let visited = AtomicBitmap::new(n);
    visited.set(root);

    let mut queue: Vec<VertexId> = vec![root];
    let mut front_bm = AtomicBitmap::new(n);
    let mut next_bm = AtomicBitmap::new(n);
    let mut bitmap_current = false;

    let mut direction = Direction::TopDown;
    let mut prev_frontier = 0u64;
    let mut frontier_size = 1u64;
    let mut visited_count = 1u64;
    let mut level = 1u32;
    let mut max_level = 0u32;
    let mut elapsed = Duration::ZERO;

    while frontier_size > 0 {
        let frontier_edges = if cfg.count_frontier_edges {
            let mut ctx = make_ctx();
            let mut sum = 0u64;
            if bitmap_current {
                for v in front_bm.iter_ones() {
                    sum += backward.full_degree(v, &mut ctx)?;
                }
            } else {
                for &v in &queue {
                    sum += backward.full_degree(v, &mut ctx)?;
                }
            }
            Some(sum)
        } else {
            None
        };
        let event = cfg
            .io_monitor
            .as_ref()
            .is_some_and(|d| d.is_degraded())
            .then_some(PolicyEvent::DeviceDegraded);
        let decided = policy.decide(&PolicyCtx {
            current: direction,
            level,
            n_all: n,
            frontier: frontier_size,
            prev_frontier,
            frontier_edges,
            unvisited: n - visited_count,
            event,
        });

        match decided {
            Direction::TopDown if bitmap_current => {
                queue = bitmap_to_queue(&front_bm);
                bitmap_current = false;
            }
            Direction::BottomUp if !bitmap_current => {
                front_bm.clear();
                queue_to_bitmap(&queue, &front_bm);
                bitmap_current = true;
            }
            _ => {}
        }
        direction = decided;

        let t0 = Instant::now();
        let discovered = match direction {
            Direction::TopDown => {
                let out = if cfg.threads >= 1 {
                    par_top_down_step(
                        forward,
                        &queue,
                        &scratch,
                        &visited,
                        batch,
                        cfg.threads,
                        &make_ctx,
                        cfg.numa_counters.as_deref(),
                    )?
                } else {
                    top_down_step(forward, &queue, &scratch, &visited, batch, &make_ctx)?
                };
                for &w in &out.next {
                    scratch[w as usize].store(level, Ordering::Relaxed);
                }
                let d = out.next.len() as u64;
                queue = out.next;
                d
            }
            Direction::BottomUp => {
                next_bm.clear();
                let out = if cfg.threads >= 1 {
                    par_bottom_up_step(
                        backward,
                        &front_bm,
                        &next_bm,
                        &scratch,
                        &visited,
                        cfg.threads,
                        &make_ctx,
                        cfg.numa_counters.as_deref(),
                    )?
                } else {
                    bottom_up_step(backward, &front_bm, &next_bm, &scratch, &visited, &make_ctx)?
                };
                std::mem::swap(&mut front_bm, &mut next_bm);
                for w in front_bm.iter_ones() {
                    scratch[w as usize].store(level, Ordering::Relaxed);
                }
                out.discovered
            }
        };
        elapsed += t0.elapsed();

        if discovered > 0 {
            max_level = level;
        }
        visited_count += discovered;
        prev_frontier = frontier_size;
        frontier_size = discovered;
        level += 1;
    }

    // The root's slot holds its self-parent (== root); every other claimed
    // slot was overwritten with its level. Unreached slots hold
    // INVALID_PARENT, which is the same bit pattern as INVALID_LEVEL.
    scratch[root as usize].store(0, Ordering::Relaxed);
    Ok(DistanceRun {
        levels: snapshot_parents(&scratch),
        visited: visited_count,
        max_level,
        elapsed,
    })
}

/// Run a hybrid BFS from `root` over `forward`/`backward` using `policy`.
///
/// The first level always runs top-down from the root (§III-C: "we first
/// start BFS from a source vertex by using the top-down approach").
pub fn hybrid_bfs<G, B, P>(
    forward: &G,
    backward: &B,
    root: VertexId,
    policy: &P,
    cfg: &BfsConfig,
) -> Result<BfsRun>
where
    G: DomainNeighbors,
    B: BottomUpSource,
    P: DirectionPolicy + ?Sized,
{
    let n = forward.num_vertices();
    assert_eq!(
        n,
        backward.partition().num_vertices(),
        "graph size mismatch"
    );
    assert!((root as u64) < n, "root out of range");
    let batch = if cfg.batch == 0 { 64 } else { cfg.batch };
    let reader = cfg.reader.unwrap_or_else(ChunkedReader::unmerged);
    let aggregate = cfg.aggregate_io;
    if let Some(cache) = &cfg.cache_monitor {
        if let Some(bytes) = cfg.cache_capacity_bytes {
            cache.set_capacity_bytes(bytes);
        }
        if let Some(pages) = cfg.cache_readahead_pages {
            cache.set_readahead_pages(pages);
        }
    }
    let ctx_cache = cfg.cache_monitor.clone();
    let make_ctx = move || {
        let mut ctx = NeighborCtx::new(reader);
        if aggregate {
            ctx = ctx.with_aggregation();
        }
        if let Some(cache) = &ctx_cache {
            ctx = ctx.with_cache(cache.clone());
        }
        ctx
    };

    let parent = new_parent_array(n, root);
    let visited = AtomicBitmap::new(n);
    visited.set(root);

    let tracer = sembfs_obs::global();
    let run_start_ns = tracer.is_enabled().then(|| tracer.now_ns());

    // Frontier state: queue form for top-down, bitmap form for bottom-up.
    let mut queue: Vec<VertexId> = vec![root];
    let mut front_bm = AtomicBitmap::new(n);
    let mut next_bm = AtomicBitmap::new(n);
    let mut bitmap_current = false;

    let mut levels: Vec<LevelStats> = Vec::new();
    let mut direction = Direction::TopDown;
    let mut prev_frontier = 0u64;
    let mut frontier_size = 1u64;
    let mut visited_count = 1u64;
    let mut level = 1u32;
    let mut elapsed = Duration::ZERO;
    let mut was_degraded = false;
    // Worker count recorded per level: exact for the explicit pool, the
    // shim's effective parallelism for the legacy kernels.
    let level_threads = if cfg.threads >= 1 {
        cfg.threads
    } else {
        rayon::current_num_threads()
    };

    while frontier_size > 0 {
        // Policy decision for this level. The frontier's outgoing-edge
        // count is computable in either representation — a bitmap frontier
        // (after a bottom-up level) sums over its set bits, so Beamer-style
        // policies keep seeing `frontier_edges` across direction switches.
        let frontier_edges = if cfg.count_frontier_edges {
            let mut ctx = make_ctx();
            let mut sum = 0u64;
            if bitmap_current {
                for v in front_bm.iter_ones() {
                    sum += backward.full_degree(v, &mut ctx)?;
                }
            } else {
                for &v in &queue {
                    sum += backward.full_degree(v, &mut ctx)?;
                }
            }
            Some(sum)
        } else {
            None
        };

        // Per-level device-health check: the monitored device reports
        // degraded once its fault rate crosses the plan's threshold, and
        // the policy is told so it can bias to the DRAM-resident
        // bottom-up direction. The transition is traced once per edge
        // (healthy→degraded), not per level.
        let degraded = cfg.io_monitor.as_ref().is_some_and(|d| d.is_degraded());
        if degraded && !was_degraded && tracer.is_enabled() {
            if let Some(faults) = cfg.io_monitor.as_ref().and_then(|d| d.faults()) {
                let (errors, requests) = faults.health().counts();
                tracer.instant(sembfs_obs::TraceEvent::Degraded { errors, requests });
            }
        }
        was_degraded = degraded;
        let event = degraded.then_some(PolicyEvent::DeviceDegraded);

        let decided = policy.decide(&PolicyCtx {
            current: direction,
            level,
            n_all: n,
            frontier: frontier_size,
            prev_frontier,
            frontier_edges,
            unvisited: n - visited_count,
            event,
        });

        // Record the decision with its full inputs: level, both frontier
        // sizes, n_all, unvisited, and the policy's α/β when it has that
        // form — enough to re-feed the policy offline and replay the
        // direction sequence from the trace alone.
        if tracer.is_enabled() {
            let (alpha, beta) = policy.thresholds().unwrap_or((0.0, 0.0));
            tracer.instant(sembfs_obs::TraceEvent::Switch {
                level,
                from: obs_dir(direction),
                to: obs_dir(decided),
                frontier: frontier_size,
                prev_frontier,
                n_all: n,
                unvisited: n - visited_count,
                alpha,
                beta,
            });
        }

        // Convert the frontier representation if the direction demands it.
        match decided {
            Direction::TopDown if bitmap_current => {
                queue = bitmap_to_queue(&front_bm);
                bitmap_current = false;
            }
            Direction::BottomUp if !bitmap_current => {
                front_bm.clear();
                queue_to_bitmap(&queue, &front_bm);
                bitmap_current = true;
            }
            _ => {}
        }
        direction = decided;

        let level_start_ns = tracer.is_enabled().then(|| tracer.now_ns());
        let io_before = cfg.io_monitor.as_ref().map(|d| d.snapshot());
        let cache_before = cfg.cache_monitor.as_ref().map(|c| c.snapshot());
        let t0 = Instant::now();
        let (discovered, scanned, nvm_edges) = match direction {
            Direction::TopDown => {
                let out = if cfg.threads >= 1 {
                    par_top_down_step(
                        forward,
                        &queue,
                        &parent,
                        &visited,
                        batch,
                        cfg.threads,
                        &make_ctx,
                        cfg.numa_counters.as_deref(),
                    )?
                } else {
                    top_down_step(forward, &queue, &parent, &visited, batch, &make_ctx)?
                };
                let d = out.next.len() as u64;
                // NVM share of top-down scans: with an external forward
                // graph every scanned edge is read from NVM (Fig. 10's
                // edge-level attribution); DRAM forward graphs contribute
                // none.
                let nvm = if forward.is_external() {
                    out.scanned_edges
                } else {
                    0
                };
                queue = out.next;
                (d, out.scanned_edges, nvm)
            }
            Direction::BottomUp => {
                next_bm.clear();
                let out = if cfg.threads >= 1 {
                    par_bottom_up_step(
                        backward,
                        &front_bm,
                        &next_bm,
                        &parent,
                        &visited,
                        cfg.threads,
                        &make_ctx,
                        cfg.numa_counters.as_deref(),
                    )?
                } else {
                    bottom_up_step(backward, &front_bm, &next_bm, &parent, &visited, &make_ctx)?
                };
                // The produced set becomes the next level's frontier.
                std::mem::swap(&mut front_bm, &mut next_bm);
                (
                    out.discovered,
                    out.dram_edges + out.nvm_edges,
                    out.nvm_edges,
                )
            }
        };
        let dt = t0.elapsed();
        elapsed += dt;
        let io = match (&cfg.io_monitor, io_before) {
            (Some(d), Some(before)) => Some(d.snapshot().delta(&before)),
            _ => None,
        };
        let cache = match (&cfg.cache_monitor, cache_before) {
            (Some(c), Some(before)) => Some(c.snapshot().delta(&before)),
            _ => None,
        };

        if let Some(start_ns) = level_start_ns {
            tracer.span(
                start_ns,
                tracer.now_ns(),
                sembfs_obs::TraceEvent::Level {
                    level,
                    dir: obs_dir(direction),
                    frontier: frontier_size,
                    discovered,
                    scanned_edges: scanned,
                    nvm_edges,
                    io_requests: io.as_ref().map_or(0, |i| i.requests),
                    io_bytes: io.as_ref().map_or(0, |i| i.bytes),
                    io_response_ns: io.as_ref().map_or(0, |i| i.response_ns),
                    io_wall_ns: io.as_ref().map_or(0, |i| i.wall_ns()),
                    cache_hits: cache.as_ref().map_or(0, |c| c.hits),
                    cache_misses: cache.as_ref().map_or(0, |c| c.misses),
                    threads: level_threads as u64,
                },
            );
        }

        visited_count += discovered;
        levels.push(LevelStats {
            level,
            direction,
            frontier_size,
            discovered,
            scanned_edges: scanned,
            nvm_edges,
            elapsed: dt,
            io,
            cache,
            threads: level_threads,
        });

        prev_frontier = frontier_size;
        frontier_size = discovered;
        level += 1;
    }

    // The run span closes here — the TEPS degree sweep below is
    // accounting, not traversal, and must not inflate the traced run.
    let run_end_ns = run_start_ns.map(|_| tracer.now_ns());

    // TEPS edge accounting: half the summed degree of visited vertices.
    use rayon::prelude::*;
    let degree_sum: u64 = (0..n.div_ceil(4096))
        .into_par_iter()
        .map_init(make_ctx, |ctx, blk| -> Result<u64> {
            let mut sum = 0u64;
            for v in blk * 4096..((blk + 1) * 4096).min(n) {
                if visited.get(v as VertexId) {
                    sum += backward.full_degree(v as VertexId, ctx)?;
                }
            }
            Ok(sum)
        })
        .try_reduce(|| 0, |a, b| Ok(a + b))?;

    if let (Some(start_ns), Some(end_ns)) = (run_start_ns, run_end_ns) {
        tracer.span(
            start_ns,
            end_ns,
            sembfs_obs::TraceEvent::Run {
                root: root as u64,
                visited: visited_count,
                teps_edges: degree_sum / 2,
                levels: levels.len() as u64,
            },
        );
    }

    Ok(BfsRun {
        parent: snapshot_parents(&parent),
        levels,
        visited: visited_count,
        teps_edges: degree_sum / 2,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AlphaBetaPolicy, FixedPolicy};
    use sembfs_csr::{build_csr, BackwardGraph, BuildOptions, DramForwardGraph};
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_graph500::INVALID_PARENT;
    use sembfs_numa::RangePartition;

    fn graphs(edges: Vec<(u32, u32)>, n: u64, domains: usize) -> (DramForwardGraph, BackwardGraph) {
        let el = MemEdgeList::new(n, edges);
        let csr = build_csr(
            &el,
            BuildOptions {
                sort_neighbors: true,
                ..Default::default()
            },
        )
        .unwrap();
        let part = RangePartition::new(n, domains);
        (
            DramForwardGraph::from_csr(&csr, &part),
            BackwardGraph::new(csr, part),
        )
    }

    /// Star with a tail: 0-{1,2,3,4}, 4-5, 5-6.
    fn star_tail() -> (DramForwardGraph, BackwardGraph) {
        graphs(vec![(0, 1), (0, 2), (0, 3), (0, 4), (4, 5), (5, 6)], 8, 2)
    }

    #[test]
    fn basic_levels_and_parents() {
        let (fg, bg) = star_tail();
        let run = hybrid_bfs(
            &fg,
            &bg,
            0,
            &AlphaBetaPolicy::new(1e4, 1e4),
            &BfsConfig::paper(),
        )
        .unwrap();
        assert_eq!(run.visited, 7); // vertex 7 is isolated
        assert_eq!(run.parent[7], INVALID_PARENT);
        assert_eq!(run.parent[0], 0);
        assert_eq!(run.parent[6], 5);
        // Levels: 1 (finds 4 vertices), 2 (finds 5), 3 (finds 6), 4 (empty
        // frontier never recorded — the loop stops when discovery is 0, so
        // the last recorded level discovered 0 or the chain ended).
        assert!(run.levels.len() >= 3);
        assert_eq!(run.levels[0].frontier_size, 1);
        assert_eq!(run.levels[0].discovered, 4);
    }

    #[test]
    fn first_level_is_top_down() {
        let (fg, bg) = star_tail();
        // Even with a policy that prefers bottom-up, level 1 starts from
        // the root top-down *unless* the policy explicitly overrides —
        // the paper's flow starts top-down; FixedPolicy(BottomUp) is the
        // explicit override.
        let run = hybrid_bfs(
            &fg,
            &bg,
            0,
            &AlphaBetaPolicy::new(1.0, 1e9),
            &BfsConfig::paper(),
        )
        .unwrap();
        assert_eq!(run.levels[0].direction, Direction::TopDown);
    }

    #[test]
    fn eager_policy_switches_to_bottom_up() {
        let (fg, bg) = star_tail();
        // α huge → threshold ~0 → switch as soon as the frontier grows.
        let run = hybrid_bfs(
            &fg,
            &bg,
            0,
            &AlphaBetaPolicy::new(1e9, 1e9),
            &BfsConfig::paper(),
        )
        .unwrap();
        assert!(run
            .levels
            .iter()
            .any(|l| l.direction == Direction::BottomUp));
        // Tree must still be complete.
        assert_eq!(run.visited, 7);
    }

    #[test]
    fn bottom_up_only_from_level_one() {
        let (fg, bg) = star_tail();
        let run = hybrid_bfs(
            &fg,
            &bg,
            0,
            &FixedPolicy(Direction::BottomUp),
            &BfsConfig::paper(),
        )
        .unwrap();
        assert!(run
            .levels
            .iter()
            .all(|l| l.direction == Direction::BottomUp));
        assert_eq!(run.visited, 7);
        assert_eq!(run.parent[6], 5);
    }

    #[test]
    fn teps_edges_counts_component_edges() {
        let (fg, bg) = star_tail();
        let run = hybrid_bfs(
            &fg,
            &bg,
            0,
            &AlphaBetaPolicy::new(1e4, 1e4),
            &BfsConfig::paper(),
        )
        .unwrap();
        // The component has 6 undirected edges.
        assert_eq!(run.teps_edges, 6);
        assert!(run.teps() > 0.0);
    }

    #[test]
    fn isolated_root_traverses_nothing() {
        let (fg, bg) = graphs(vec![(0, 1)], 4, 2);
        let run = hybrid_bfs(
            &fg,
            &bg,
            3,
            &AlphaBetaPolicy::new(1e4, 1e4),
            &BfsConfig::paper(),
        )
        .unwrap();
        assert_eq!(run.visited, 1);
        assert_eq!(run.teps_edges, 0);
        // One level ran (the empty expansion of the root).
        assert_eq!(run.levels.len(), 1);
        assert_eq!(run.levels[0].discovered, 0);
    }

    #[test]
    fn scanned_edges_totals_match_levels() {
        let (fg, bg) = star_tail();
        let run = hybrid_bfs(
            &fg,
            &bg,
            0,
            &AlphaBetaPolicy::new(2.0, 4.0),
            &BfsConfig::paper(),
        )
        .unwrap();
        let per_level: u64 = run.levels.iter().map(|l| l.scanned_edges).sum();
        assert_eq!(run.scanned_edges(), per_level);
    }

    #[test]
    fn distances_match_parent_tree_levels() {
        use sembfs_graph500::validate::{compute_levels, INVALID_LEVEL};
        let (fg, bg) = star_tail();
        for policy in [
            FixedPolicy(Direction::TopDown),
            FixedPolicy(Direction::BottomUp),
        ] {
            let run = hybrid_bfs(&fg, &bg, 0, &policy, &BfsConfig::paper()).unwrap();
            let want = compute_levels(&run.parent, 0).unwrap();
            let got = hybrid_bfs_distances(&fg, &bg, 0, &policy, &BfsConfig::paper()).unwrap();
            assert_eq!(got.levels, want, "policy {policy:?}");
            assert_eq!(got.visited, run.visited);
            assert_eq!(got.max_level, 3);
            assert_eq!(got.levels[7], INVALID_LEVEL);
        }
        // Hybrid policy (switches mid-run) must agree too.
        let hybrid = hybrid_bfs_distances(
            &fg,
            &bg,
            0,
            &AlphaBetaPolicy::new(1e9, 1e9),
            &BfsConfig::paper(),
        )
        .unwrap();
        assert_eq!(hybrid.levels[6], 3);
        assert_eq!(hybrid.levels[0], 0);
    }

    #[test]
    fn parallel_threads_match_reference_tree() {
        use crate::reference::reference_bfs;
        let p = sembfs_graph500::KroneckerParams::graph500(9, 8);
        let el = p.generate();
        let csr = build_csr(&el, BuildOptions::default()).unwrap();
        let n = csr.num_vertices();
        let part = RangePartition::new(n, 4);
        let fg = DramForwardGraph::from_csr(&csr, &part);
        let root = (0..n as u32).find(|&v| csr.degree(v) > 0).unwrap();
        let want = reference_bfs(&csr, root);
        let bg = BackwardGraph::new(csr, part);
        for policy in [
            &FixedPolicy(Direction::TopDown) as &dyn DirectionPolicy,
            &FixedPolicy(Direction::BottomUp),
            &AlphaBetaPolicy::new(14.0, 24.0),
        ] {
            for threads in [1, 2, 4] {
                let cfg = BfsConfig::paper().with_threads(threads);
                let run = hybrid_bfs(&fg, &bg, root, policy, &cfg).unwrap();
                assert_eq!(run.parent, want.parent, "{threads} threads");
                assert_eq!(run.visited, want.visited);
                assert!(run.levels.iter().all(|l| l.threads == threads));
            }
        }
    }

    #[test]
    fn parallel_counters_account_every_scanned_edge() {
        let (fg, bg) = star_tail();
        let counters = Arc::new(sembfs_numa::DomainCounters::new(2));
        let cfg = BfsConfig::paper()
            .with_threads(2)
            .with_numa_counters(counters.clone());
        let run = hybrid_bfs(&fg, &bg, 0, &AlphaBetaPolicy::new(1e4, 1e4), &cfg).unwrap();
        assert_eq!(
            counters.total_local() + counters.total_remote(),
            run.scanned_edges()
        );
    }

    #[test]
    fn degraded_monitor_biases_all_levels_bottom_up() {
        use sembfs_semext::{DelayMode, DeviceProfile, FaultPlan};
        let (fg, bg) = star_tail();
        // A lazy policy that would otherwise run top-down throughout.
        let policy = AlphaBetaPolicy::new(1.0, 1e9);

        // Pre-degrade the device: the health monitor has seen a fault
        // rate far past the plan's threshold.
        let dev = sembfs_semext::Device::with_fault_plan(
            DeviceProfile::dram(),
            DelayMode::Accounting,
            FaultPlan::parse("degrade=0.1").unwrap(),
        );
        let health = dev.faults().unwrap().health();
        for _ in 0..100 {
            health.record_request();
            health.record_error();
        }
        assert!(dev.is_degraded());

        let cfg = BfsConfig::paper().with_monitor(dev);
        let run = hybrid_bfs(&fg, &bg, 0, &policy, &cfg).unwrap();
        assert!(
            run.levels
                .iter()
                .all(|l| l.direction == Direction::BottomUp),
            "degraded device must force bottom-up: {:?}",
            run.levels.iter().map(|l| l.direction).collect::<Vec<_>>()
        );
        // The traversal itself is unaffected.
        assert_eq!(run.visited, 7);
        assert_eq!(run.parent[6], 5);

        // Same graph with a healthy monitor stays top-down.
        let healthy = sembfs_semext::Device::unmetered();
        let cfg = BfsConfig::paper().with_monitor(healthy);
        let run = hybrid_bfs(&fg, &bg, 0, &policy, &cfg).unwrap();
        assert!(run.levels.iter().all(|l| l.direction == Direction::TopDown));
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn out_of_range_root_panics() {
        let (fg, bg) = graphs(vec![(0, 1)], 2, 1);
        let _ = hybrid_bfs(
            &fg,
            &bg,
            5,
            &FixedPolicy(Direction::TopDown),
            &BfsConfig::paper(),
        );
    }
}
