//! The machine scenarios of Table I and their data layouts (§V-A, §VI-A).
//!
//! * **DRAM-only** — everything in DRAM (the 128 GB machine).
//! * **DRAM+PCIeFlash** — forward graph offloaded to a FusionIO ioDrive2
//!   model; backward graph + status data in DRAM (the 64 GB machine).
//! * **DRAM+SSD** — same layout on an Intel SSD 320 model.
//!
//! [`ScenarioData::build`] performs the paper's Steps 1–2: construct both
//! CSR graphs from the edge list, write the forward graph's per-domain
//! index/value files to the scenario's device, and (optionally, §VI-E)
//! split the backward graph's cold tail onto the same device.
//! [`ScenarioData::run`] then executes any policy's BFS over that layout.

use std::path::PathBuf;
use std::sync::Arc;

use sembfs_csr::backward::split_csr;
use sembfs_csr::{
    build_csr, BackwardGraph, BuildOptions, CsrGraph, DramForwardGraph, ExtForwardGraph,
    SplitBackwardGraph,
};
use sembfs_graph500::edge_list::EdgeList;
use sembfs_numa::{RangePartition, Topology};
use sembfs_semext::ext_csr::{write_csr_files, ExtCsr};
use sembfs_semext::{
    ChunkedReader, DelayMode, Device, DeviceProfile, FaultPlan, FileBackend, MmapBackend, NvmStore,
    PageIntegrity, Result, ShardedCachedStore, ShardedPageCache, TempDir,
};

use crate::hybrid::{hybrid_bfs, hybrid_bfs_distances, BfsConfig, BfsRun, DistanceRun};
use crate::policy::DirectionPolicy;
use crate::tree::status_data_bytes;
use crate::{AlphaBetaPolicy, VertexId};

use sembfs_csr::{DomainNeighbors, NeighborCtx};

/// Hand every forward neighbor of `v` (across all domains) to `f`.
fn visit_forward<G: DomainNeighbors>(
    g: &G,
    v: VertexId,
    ctx: &mut NeighborCtx,
    f: &mut dyn FnMut(VertexId),
) -> Result<()> {
    for k in 0..g.num_domains() {
        g.with_neighbors(k, v, ctx, |ns| {
            for &w in ns {
                f(w);
            }
        })?;
    }
    Ok(())
}

/// The three machine configurations of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// All datasets in DRAM.
    DramOnly,
    /// Forward graph on PCIe flash (FusionIO ioDrive2 model).
    DramPcieFlash,
    /// Forward graph on SATA SSD (Intel SSD 320 model).
    DramSsd,
}

impl Scenario {
    /// All three scenarios, in the paper's presentation order.
    pub const ALL: [Scenario; 3] = [
        Scenario::DramOnly,
        Scenario::DramPcieFlash,
        Scenario::DramSsd,
    ];

    /// The paper's label for the scenario.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::DramOnly => "DRAM-only",
            Scenario::DramPcieFlash => "DRAM+PCIeFlash",
            Scenario::DramSsd => "DRAM+SSD",
        }
    }

    /// The simulated device profile backing the scenario's NVM, if any.
    pub fn device_profile(&self) -> Option<DeviceProfile> {
        match self {
            Scenario::DramOnly => None,
            Scenario::DramPcieFlash => Some(DeviceProfile::iodrive2()),
            Scenario::DramSsd => Some(DeviceProfile::intel_ssd_320()),
        }
    }

    /// The best α/β the paper found for this scenario (§VI-B).
    pub fn best_policy(&self) -> AlphaBetaPolicy {
        match self {
            Scenario::DramOnly => AlphaBetaPolicy::dram_only_best(),
            Scenario::DramPcieFlash => AlphaBetaPolicy::pcie_flash_best(),
            Scenario::DramSsd => AlphaBetaPolicy::ssd_best(),
        }
    }
}

/// Build-time options for a scenario's data layout.
#[derive(Debug, Clone)]
pub struct ScenarioOptions {
    /// NUMA topology model (`ℓ` domains).
    pub topology: Topology,
    /// Whether simulated devices really delay callers
    /// ([`DelayMode::Throttled`], benches) or only record
    /// ([`DelayMode::Accounting`], tests).
    pub delay_mode: DelayMode,
    /// Slow-down/speed-up factor applied to the device profiles (1.0 =
    /// paper-era hardware as calibrated in `DeviceProfile`).
    pub device_scale: f64,
    /// Pin the forward graph's index arrays in DRAM (ablation; the paper
    /// reads them from NVM).
    pub dram_index: bool,
    /// `Some(k)`: offload the backward graph's per-vertex tail beyond `k`
    /// edges to the device (§VI-E). `None`: backward graph fully in DRAM.
    pub backward_offload_k: Option<u64>,
    /// Replace the scenario's device profile (for studies across device
    /// generations; ignored in the DRAM-only scenario).
    pub device_profile_override: Option<DeviceProfile>,
    /// How offloaded files are read: the paper's explicit `read(2)` path
    /// or `mmap(2)` (ablation; both are metered by the device model).
    pub access_path: AccessPath,
    /// Model the OS page cache with this many bytes of spare DRAM: file
    /// pages of the offloaded forward graph are cached with CLOCK
    /// replacement, and only misses reach the device. `None` disables the
    /// model (every read hits the device — a pessimistic bound the paper's
    /// SCALE 27 runs approach, while its SCALE 26 runs sit near the fully
    /// cached end; see Fig. 8 vs Fig. 9).
    pub page_cache_bytes: Option<u64>,
    /// Lock stripes of the modeled page cache (`None` = the cache's
    /// default). Only meaningful with `page_cache_bytes`.
    pub cache_shards: Option<usize>,
    /// Sequential readahead window of the modeled page cache, in 4 KiB
    /// pages (0 disables readahead, the deterministic default).
    pub cache_readahead_pages: usize,
    /// Directory for the "NVM" files; a fresh temp dir when `None`.
    pub data_dir: Option<PathBuf>,
    /// Sort adjacency lists during construction (deterministic layout).
    pub sort_neighbors: bool,
    /// Deterministic fault-injection plan for the scenario's simulated
    /// device (`None` = fault-free; ignored in the DRAM-only scenario,
    /// which has no device).
    pub fault_plan: Option<FaultPlan>,
    /// Seal per-page checksums over the offloaded files at build time and
    /// verify every fill against them. This is what turns silent
    /// corruption (torn pages, injected bit-flips) into a typed
    /// `ChecksumMismatch` instead of a wrong-but-valid BFS tree, and what
    /// lets the retry path *heal* `corrupt` faults.
    pub verify_pages: bool,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        Self {
            topology: Topology::detect(),
            delay_mode: DelayMode::Accounting,
            device_scale: 1.0,
            dram_index: false,
            backward_offload_k: None,
            device_profile_override: None,
            access_path: AccessPath::Pread,
            page_cache_bytes: None,
            cache_shards: None,
            cache_readahead_pages: 0,
            data_dir: None,
            sort_neighbors: false,
            fault_plan: None,
            verify_pages: true,
        }
    }
}

impl ScenarioOptions {
    /// Options for wall-clock measurement (throttled devices).
    pub fn measured() -> Self {
        Self {
            delay_mode: DelayMode::Throttled,
            ..Default::default()
        }
    }
}

/// How offloaded files are accessed (§V-B1: the paper uses POSIX
/// `read(2)`; `mmap` is the obvious alternative the ablation compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessPath {
    /// Positional `read(2)`/`pread` syscalls — the paper's path.
    #[default]
    Pread,
    /// Memory-mapped files (page faults instead of syscalls).
    Mmap,
}

/// Where the forward graph lives.
#[derive(Debug)]
pub enum ForwardStore {
    /// In DRAM (the DRAM-only scenario).
    Dram(DramForwardGraph),
    /// On the scenario's simulated NVM device, read with `pread`.
    Ext(ExtForwardGraph<NvmStore<FileBackend>>),
    /// On the device, read through `mmap`.
    ExtMmap(ExtForwardGraph<NvmStore<MmapBackend>>),
    /// On the device, fronted by a modeled OS page cache (sharded, data-
    /// holding; hits never touch the device).
    ExtCached(ExtForwardGraph<ShardedCachedStore<FileBackend>>),
}

/// Where the backward graph lives.
#[derive(Debug)]
pub enum BackwardStore {
    /// Fully in DRAM (the paper's implemented layout).
    Dram(BackwardGraph),
    /// DRAM head + NVM tail (§VI-E).
    Split(SplitBackwardGraph<NvmStore<FileBackend>>),
}

/// A fully constructed scenario: both graphs in their configured homes,
/// the device model, and the scratch directory keeping the files alive.
#[derive(Debug)]
pub struct ScenarioData {
    scenario: Scenario,
    options: ScenarioOptions,
    forward: ForwardStore,
    backward: BackwardStore,
    csr: CsrGraph,
    partition: RangePartition,
    device: Option<Arc<Device>>,
    page_cache: Option<Arc<ShardedPageCache>>,
    _tempdir: Option<TempDir>,
}

impl ScenarioData {
    /// Execute the paper's graph-construction step for `scenario`.
    pub fn build(
        edges: &dyn EdgeList,
        scenario: Scenario,
        options: ScenarioOptions,
    ) -> Result<Self> {
        let csr = build_csr(
            edges,
            BuildOptions {
                sort_neighbors: options.sort_neighbors,
                ..Default::default()
            },
        )?;
        Self::from_csr(csr, scenario, options)
    }

    /// Assemble a scenario from an already-built full CSR.
    pub fn from_csr(csr: CsrGraph, scenario: Scenario, options: ScenarioOptions) -> Result<Self> {
        let n = csr.num_vertices();
        let partition = RangePartition::new(n, options.topology.domains());

        let device = scenario.device_profile().map(|default_profile| {
            let profile = options
                .device_profile_override
                .clone()
                .unwrap_or(default_profile)
                .scaled(options.device_scale);
            match &options.fault_plan {
                Some(plan) if !plan.is_noop() => {
                    Device::with_fault_plan(profile, options.delay_mode, plan.clone())
                }
                _ => Device::new(profile, options.delay_mode),
            }
        });

        let needs_files = device.is_some();
        let tempdir = if needs_files && options.data_dir.is_none() {
            Some(TempDir::new("scenario")?)
        } else if let Some(dir) = &options.data_dir {
            std::fs::create_dir_all(dir)?;
            None
        } else {
            None
        };
        let dir: Option<PathBuf> = if needs_files {
            Some(match (&options.data_dir, &tempdir) {
                (Some(d), _) => d.clone(),
                (None, Some(t)) => t.path().to_path_buf(),
                _ => unreachable!("files need a directory"),
            })
        } else {
            None
        };

        // Forward graph: build in DRAM, then offload when the scenario has
        // a device (§V-A Step 2: "construct the forward graph on DRAM …
        // and offload the constructed forward graph to NVM").
        let page_cache = match (&device, options.page_cache_bytes) {
            (Some(_), Some(bytes)) => {
                let cache = match options.cache_shards {
                    Some(shards) => ShardedPageCache::with_shards(bytes, shards),
                    None => ShardedPageCache::new(bytes),
                };
                cache.set_readahead_pages(options.cache_readahead_pages);
                Some(cache)
            }
            _ => None,
        };
        // Checksum sealing for a freshly written offload file. The seal
        // reads through a bare `FileBackend` — the file was just written by
        // this process, so the scan is DRAM traffic, not device traffic.
        let seal = |path: &std::path::Path| -> Result<Option<Arc<PageIntegrity>>> {
            if !options.verify_pages {
                return Ok(None);
            }
            let sums = PageIntegrity::seal_store(&FileBackend::open(path)?)?;
            Ok(Some(Arc::new(sums)))
        };
        let fg_dram = DramForwardGraph::from_csr(&csr, &partition);
        let forward = match &device {
            None => ForwardStore::Dram(fg_dram),
            Some(dev) => {
                let dir = dir.as_ref().expect("device implies directory");
                let paths = fg_dram.write_to_dir(dir)?;
                drop(fg_dram);
                match &page_cache {
                    None if options.access_path == AccessPath::Mmap => {
                        let domains = paths
                            .iter()
                            .map(|(ip, vp)| {
                                let mut index = NvmStore::new(MmapBackend::open(ip)?, dev.clone());
                                let mut values = NvmStore::new(MmapBackend::open(vp)?, dev.clone());
                                if let Some(sums) = seal(ip)? {
                                    index = index.with_integrity(sums);
                                }
                                if let Some(sums) = seal(vp)? {
                                    values = values.with_integrity(sums);
                                }
                                ExtCsr::new(index, values)
                            })
                            .collect::<Result<Vec<_>>>()?;
                        let ext = ExtForwardGraph::new(domains, partition.clone());
                        ForwardStore::ExtMmap(if options.dram_index {
                            ext.with_dram_index()?
                        } else {
                            ext
                        })
                    }
                    None => {
                        let domains = paths
                            .iter()
                            .map(|(ip, vp)| {
                                let mut index = NvmStore::new(FileBackend::open(ip)?, dev.clone());
                                let mut values = NvmStore::new(FileBackend::open(vp)?, dev.clone());
                                if let Some(sums) = seal(ip)? {
                                    index = index.with_integrity(sums);
                                }
                                if let Some(sums) = seal(vp)? {
                                    values = values.with_integrity(sums);
                                }
                                ExtCsr::new(index, values)
                            })
                            .collect::<Result<Vec<_>>>()?;
                        let ext = ExtForwardGraph::new(domains, partition.clone());
                        ForwardStore::Ext(if options.dram_index {
                            ext.with_dram_index()?
                        } else {
                            ext
                        })
                    }
                    Some(cache) => {
                        let domains = paths
                            .iter()
                            .map(|(ip, vp)| {
                                let mut index = ShardedCachedStore::new(
                                    FileBackend::open(ip)?,
                                    dev.clone(),
                                    cache.clone(),
                                );
                                let mut values = ShardedCachedStore::new(
                                    FileBackend::open(vp)?,
                                    dev.clone(),
                                    cache.clone(),
                                );
                                if let Some(sums) = seal(ip)? {
                                    index = index.with_integrity(sums);
                                }
                                if let Some(sums) = seal(vp)? {
                                    values = values.with_integrity(sums);
                                }
                                // Step 2 just wrote these files through the
                                // kernel: they start in the page cache.
                                index.warm()?;
                                values.warm()?;
                                ExtCsr::new(index, values)
                            })
                            .collect::<Result<Vec<_>>>()?;
                        let ext = ExtForwardGraph::new(domains, partition.clone());
                        ForwardStore::ExtCached(if options.dram_index {
                            ext.with_dram_index()?
                        } else {
                            ext
                        })
                    }
                }
            }
        };

        // Backward graph: DRAM, or split with the tail on the same device.
        let backward = match (options.backward_offload_k, &device) {
            (Some(k), Some(dev)) => {
                let dir = dir.as_ref().expect("device implies directory");
                let (head, tail_index, tail_values) = split_csr(&csr, k);
                let ip = dir.join("bg-tail.index");
                let vp = dir.join("bg-tail.values");
                write_csr_files(&ip, &vp, &tail_index, &tail_values)?;
                let mut tail_is = NvmStore::new(FileBackend::open(&ip)?, dev.clone());
                let mut tail_vs = NvmStore::new(FileBackend::open(&vp)?, dev.clone());
                if let Some(sums) = seal(&ip)? {
                    tail_is = tail_is.with_integrity(sums);
                }
                if let Some(sums) = seal(&vp)? {
                    tail_vs = tail_vs.with_integrity(sums);
                }
                let tail = ExtCsr::new(tail_is, tail_vs)?
                    // The tail index is pinned: §VI-E's estimate concerns edge
                    // (value) traffic, and an unpinned index would double every
                    // probe's request count.
                    .with_dram_index()?;
                BackwardStore::Split(SplitBackwardGraph::new(head, tail, partition.clone(), k))
            }
            (Some(_), None) => {
                panic!("backward_offload_k requires an NVM scenario (DramPcieFlash or DramSsd)")
            }
            (None, _) => BackwardStore::Dram(BackwardGraph::new(csr.clone(), partition.clone())),
        };

        Ok(Self {
            scenario,
            options,
            forward,
            backward,
            csr,
            partition,
            device,
            page_cache,
            _tempdir: tempdir,
        })
    }

    /// The scenario this data realizes.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The build options.
    pub fn options(&self) -> &ScenarioOptions {
        &self.options
    }

    /// The full CSR (kept for root selection, validation aids, and the
    /// reference baseline — measurement scaffolding, not BFS state).
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// The NUMA vertex partition.
    pub fn partition(&self) -> &RangePartition {
        &self.partition
    }

    /// The simulated NVM device, when the scenario has one.
    pub fn device(&self) -> Option<&Arc<Device>> {
        self.device.as_ref()
    }

    /// The modeled OS page cache, when enabled.
    pub fn page_cache(&self) -> Option<&Arc<ShardedPageCache>> {
        self.page_cache.as_ref()
    }

    /// Align the global tracer's timebase on this scenario's device epoch
    /// so trace timestamps and device-clock nanoseconds (`IoStats`
    /// arrival/completion) are the *same* number. DRAM-only scenarios have
    /// no device; the tracer keeps its own epoch.
    pub fn align_trace_epoch(&self) {
        if let Some(dev) = &self.device {
            sembfs_obs::global().set_epoch(dev.epoch());
        }
    }

    /// The forward graph store.
    pub fn forward(&self) -> &ForwardStore {
        &self.forward
    }

    /// The backward graph store.
    pub fn backward(&self) -> &BackwardStore {
        &self.backward
    }

    /// Degree of `v` in the full graph.
    pub fn degree(&self, v: VertexId) -> u64 {
        self.csr.degree(v)
    }

    /// Number of vertices in the graph.
    pub fn num_vertices(&self) -> u64 {
        self.csr.num_vertices()
    }

    /// A per-thread neighbor-read scratch wired for this scenario: the
    /// device's merge-aware chunk reader and the page cache (when
    /// configured) are attached, so point reads behave exactly like the
    /// BFS kernels' reads. Query workers hold one each.
    pub fn neighbor_ctx(&self) -> NeighborCtx {
        let reader = match &self.device {
            Some(dev) => ChunkedReader::for_device(dev),
            None => ChunkedReader::unmerged(),
        };
        let mut ctx = NeighborCtx::new(reader);
        if let Some(cache) = &self.page_cache {
            ctx = ctx.with_cache(cache.clone());
        }
        ctx
    }

    /// Hand every *forward* neighbor of `v` to `f`, reading through the
    /// scenario's configured store (DRAM, pread, mmap, or cached). On
    /// NVM scenarios this meters the device like any top-down expansion.
    pub fn for_each_forward_neighbor(
        &self,
        v: VertexId,
        ctx: &mut NeighborCtx,
        f: &mut dyn FnMut(VertexId),
    ) -> Result<()> {
        match &self.forward {
            ForwardStore::Dram(g) => visit_forward(g, v, ctx, f),
            ForwardStore::Ext(g) => visit_forward(g, v, ctx, f),
            ForwardStore::ExtMmap(g) => visit_forward(g, v, ctx, f),
            ForwardStore::ExtCached(g) => visit_forward(g, v, ctx, f),
        }
    }

    /// Hand every *backward* neighbor of `v` to `f`. With a split
    /// backward graph the DRAM head is served first, then the offloaded
    /// tail is streamed from the device.
    pub fn for_each_backward_neighbor(
        &self,
        v: VertexId,
        ctx: &mut NeighborCtx,
        f: &mut dyn FnMut(VertexId),
    ) -> Result<()> {
        match &self.backward {
            BackwardStore::Dram(g) => {
                for &w in g.neighbors(v) {
                    f(w);
                }
                Ok(())
            }
            BackwardStore::Split(g) => {
                for &w in g.head_neighbors(v) {
                    f(w);
                }
                if g.tail_degree(v)? > 0 {
                    g.with_tail_neighbors(v, ctx, |ns| {
                        for &w in ns {
                            f(w);
                        }
                    })?;
                }
                Ok(())
            }
        }
    }

    /// Forward-graph size in bytes (DRAM or NVM, Table II row 1).
    pub fn forward_bytes(&self) -> u64 {
        use sembfs_csr::DomainNeighbors;
        match &self.forward {
            ForwardStore::Dram(g) => g.byte_size(),
            ForwardStore::Ext(g) => g.byte_size(),
            ForwardStore::ExtMmap(g) => g.byte_size(),
            ForwardStore::ExtCached(g) => g.byte_size(),
        }
    }

    /// Backward-graph DRAM footprint in bytes (Table II row 2).
    pub fn backward_dram_bytes(&self) -> u64 {
        match &self.backward {
            BackwardStore::Dram(g) => g.byte_size(),
            BackwardStore::Split(g) => g.dram_byte_size(),
        }
    }

    /// Bytes offloaded to the device (forward graph + backward tail).
    pub fn nvm_bytes(&self) -> u64 {
        use sembfs_csr::DomainNeighbors;
        let fwd = match &self.forward {
            ForwardStore::Dram(_) => 0,
            ForwardStore::Ext(g) => g.byte_size(),
            ForwardStore::ExtMmap(g) => g.byte_size(),
            ForwardStore::ExtCached(g) => g.byte_size(),
        };
        let bwd = match &self.backward {
            BackwardStore::Dram(_) => 0,
            BackwardStore::Split(g) => g.nvm_byte_size(),
        };
        fwd + bwd
    }

    /// BFS status-data size in bytes (Table II row 3).
    pub fn status_bytes(&self) -> u64 {
        status_data_bytes(self.csr.num_vertices(), self.partition.num_domains())
    }

    /// Augment a caller config with the scenario's device (merge-aware
    /// chunk reader + I/O monitor) and page cache, where unset.
    fn augment_cfg(&self, cfg: &BfsConfig) -> BfsConfig {
        let mut cfg = cfg.clone();
        if let Some(dev) = &self.device {
            if cfg.reader.is_none() {
                cfg.reader = Some(ChunkedReader::for_device(dev));
            }
            if cfg.io_monitor.is_none() {
                cfg.io_monitor = Some(dev.clone());
            }
        }
        if let Some(cache) = &self.page_cache {
            if cfg.cache_monitor.is_none() {
                cfg.cache_monitor = Some(cache.clone());
            }
        }
        cfg
    }

    /// Run one BFS from `root` under `policy`.
    ///
    /// The config is augmented with the scenario's device: its merge-aware
    /// chunk reader and (if none was set) its I/O monitor.
    pub fn run(
        &self,
        root: VertexId,
        policy: &dyn DirectionPolicy,
        cfg: &BfsConfig,
    ) -> Result<BfsRun> {
        let cfg = self.augment_cfg(cfg);
        match (&self.forward, &self.backward) {
            (ForwardStore::Dram(f), BackwardStore::Dram(b)) => hybrid_bfs(f, b, root, policy, &cfg),
            (ForwardStore::Dram(f), BackwardStore::Split(b)) => {
                hybrid_bfs(f, b, root, policy, &cfg)
            }
            (ForwardStore::Ext(f), BackwardStore::Dram(b)) => hybrid_bfs(f, b, root, policy, &cfg),
            (ForwardStore::Ext(f), BackwardStore::Split(b)) => hybrid_bfs(f, b, root, policy, &cfg),
            (ForwardStore::ExtMmap(f), BackwardStore::Dram(b)) => {
                hybrid_bfs(f, b, root, policy, &cfg)
            }
            (ForwardStore::ExtMmap(f), BackwardStore::Split(b)) => {
                hybrid_bfs(f, b, root, policy, &cfg)
            }
            (ForwardStore::ExtCached(f), BackwardStore::Dram(b)) => {
                hybrid_bfs(f, b, root, policy, &cfg)
            }
            (ForwardStore::ExtCached(f), BackwardStore::Split(b)) => {
                hybrid_bfs(f, b, root, policy, &cfg)
            }
        }
    }

    /// Run one *distances-only* BFS from `root` under `policy` — no
    /// parent tree, no TEPS sweep (see
    /// [`hybrid_bfs_distances`](crate::hybrid::hybrid_bfs_distances)).
    /// The config is augmented exactly like [`run`](Self::run).
    pub fn run_distances(
        &self,
        root: VertexId,
        policy: &dyn DirectionPolicy,
        cfg: &BfsConfig,
    ) -> Result<DistanceRun> {
        let cfg = self.augment_cfg(cfg);
        match (&self.forward, &self.backward) {
            (ForwardStore::Dram(f), BackwardStore::Dram(b)) => {
                hybrid_bfs_distances(f, b, root, policy, &cfg)
            }
            (ForwardStore::Dram(f), BackwardStore::Split(b)) => {
                hybrid_bfs_distances(f, b, root, policy, &cfg)
            }
            (ForwardStore::Ext(f), BackwardStore::Dram(b)) => {
                hybrid_bfs_distances(f, b, root, policy, &cfg)
            }
            (ForwardStore::Ext(f), BackwardStore::Split(b)) => {
                hybrid_bfs_distances(f, b, root, policy, &cfg)
            }
            (ForwardStore::ExtMmap(f), BackwardStore::Dram(b)) => {
                hybrid_bfs_distances(f, b, root, policy, &cfg)
            }
            (ForwardStore::ExtMmap(f), BackwardStore::Split(b)) => {
                hybrid_bfs_distances(f, b, root, policy, &cfg)
            }
            (ForwardStore::ExtCached(f), BackwardStore::Dram(b)) => {
                hybrid_bfs_distances(f, b, root, policy, &cfg)
            }
            (ForwardStore::ExtCached(f), BackwardStore::Split(b)) => {
                hybrid_bfs_distances(f, b, root, policy, &cfg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level_stats::Direction;
    use crate::policy::FixedPolicy;
    use sembfs_graph500::{select_roots, validate_bfs_tree, KroneckerParams};

    fn small_options() -> ScenarioOptions {
        ScenarioOptions {
            topology: Topology::new(2, 2),
            sort_neighbors: true,
            ..Default::default()
        }
    }

    fn kron(scale: u32) -> sembfs_graph500::MemEdgeList {
        KroneckerParams::graph500(scale, 12).generate()
    }

    #[test]
    fn scenario_labels_and_profiles() {
        assert_eq!(Scenario::DramOnly.label(), "DRAM-only");
        assert!(Scenario::DramOnly.device_profile().is_none());
        assert!(Scenario::DramPcieFlash.device_profile().is_some());
        assert!(Scenario::DramSsd.device_profile().is_some());
    }

    #[test]
    fn all_scenarios_produce_identical_levels() {
        let el = kron(9);
        let mut runs = Vec::new();
        for sc in Scenario::ALL {
            let data = ScenarioData::build(&el, sc, small_options()).unwrap();
            let roots = select_roots(data.csr().num_vertices(), 2, 5, |v| data.degree(v));
            let policy = sc.best_policy();
            for &root in &roots {
                let run = data.run(root, &policy, &BfsConfig::paper()).unwrap();
                let report = validate_bfs_tree(&run.parent, root, &el).unwrap();
                assert_eq!(report.visited, run.visited, "{}", sc.label());
                runs.push((sc, root, report.levels));
            }
        }
        // Same root ⇒ same level assignment in every scenario.
        for w in runs.windows(1) {
            let _ = w;
        }
        let base: Vec<_> = runs
            .iter()
            .filter(|(s, _, _)| *s == Scenario::DramOnly)
            .collect();
        for (s, root, levels) in &runs {
            let b = base.iter().find(|(_, r, _)| r == root).unwrap();
            assert_eq!(levels, &b.2, "{} root {root}", s.label());
        }
    }

    #[test]
    fn nvm_scenario_issues_requests() {
        let el = kron(9);
        let data = ScenarioData::build(&el, Scenario::DramPcieFlash, small_options()).unwrap();
        let root = select_roots(data.csr().num_vertices(), 1, 1, |v| data.degree(v))[0];
        // Force pure top-down so every expansion reads NVM.
        let run = data
            .run(root, &FixedPolicy(Direction::TopDown), &BfsConfig::paper())
            .unwrap();
        assert!(run.visited > 1);
        let snap = data.device().unwrap().snapshot();
        assert!(snap.requests > 0, "top-down must touch the device");
        assert!(run.levels.iter().any(|l| l.io.is_some()));
    }

    #[test]
    fn dram_only_issues_no_requests() {
        let el = kron(8);
        let data = ScenarioData::build(&el, Scenario::DramOnly, small_options()).unwrap();
        assert!(data.device().is_none());
        assert_eq!(data.nvm_bytes(), 0);
    }

    #[test]
    fn split_backward_reduces_dram() {
        let el = kron(9);
        let mut opts = small_options();
        opts.backward_offload_k = Some(2);
        let data = ScenarioData::build(&el, Scenario::DramSsd, opts).unwrap();
        let full = data.csr().byte_size();
        assert!(data.backward_dram_bytes() < full);
        assert!(data.nvm_bytes() > data.forward_bytes());

        // And BFS still works + validates.
        let root = select_roots(data.csr().num_vertices(), 1, 3, |v| data.degree(v))[0];
        let run = data
            .run(root, &Scenario::DramSsd.best_policy(), &BfsConfig::paper())
            .unwrap();
        validate_bfs_tree(&run.parent, root, &el).unwrap();
        // Some probes must have spilled to the tail.
        assert!(run.levels.iter().any(|l| l.nvm_edges > 0));
    }

    #[test]
    #[should_panic(expected = "requires an NVM scenario")]
    fn split_without_device_rejected() {
        let el = kron(6);
        let mut opts = small_options();
        opts.backward_offload_k = Some(2);
        let _ = ScenarioData::build(&el, Scenario::DramOnly, opts);
    }

    #[test]
    fn warm_page_cache_absorbs_all_reads() {
        let el = kron(9);
        let mut opts = small_options();
        // Cache big enough for the whole forward graph.
        opts.page_cache_bytes = Some(64 << 20);
        let data = ScenarioData::build(&el, Scenario::DramPcieFlash, opts).unwrap();
        assert!(data.page_cache().is_some());
        let root = select_roots(data.csr().num_vertices(), 1, 4, |v| data.degree(v))[0];
        let run = data
            .run(root, &FixedPolicy(Direction::TopDown), &BfsConfig::paper())
            .unwrap();
        assert!(run.visited > 1);
        // Files were written through the kernel → cache starts warm → no
        // device requests at all.
        assert_eq!(data.device().unwrap().snapshot().requests, 0);
        let (hits, _) = data.page_cache().unwrap().stats();
        assert!(hits > 0);
    }

    #[test]
    fn tiny_page_cache_still_correct_but_pays_the_device() {
        let el = kron(9);
        let base = ScenarioData::build(&el, Scenario::DramOnly, small_options()).unwrap();
        let root = select_roots(base.csr().num_vertices(), 1, 4, |v| base.degree(v))[0];
        let expect = sembfs_graph500::validate::compute_levels(
            &base
                .run(root, &FixedPolicy(Direction::TopDown), &BfsConfig::paper())
                .unwrap()
                .parent,
            root,
        )
        .unwrap();

        let mut opts = small_options();
        opts.page_cache_bytes = Some(16 * 4096); // 16 pages: thrashes
        let data = ScenarioData::build(&el, Scenario::DramPcieFlash, opts).unwrap();
        let run = data
            .run(root, &FixedPolicy(Direction::TopDown), &BfsConfig::paper())
            .unwrap();
        let got = sembfs_graph500::validate::compute_levels(&run.parent, root).unwrap();
        assert_eq!(got, expect, "cache must never change results");
        assert!(
            data.device().unwrap().snapshot().requests > 0,
            "a thrashing cache must reach the device"
        );
    }

    #[test]
    fn faulted_scenario_heals_to_the_fault_free_tree() {
        let el = kron(9);
        let base = ScenarioData::build(&el, Scenario::DramPcieFlash, small_options()).unwrap();
        let root = select_roots(base.csr().num_vertices(), 1, 7, |v| base.degree(v))[0];
        let expect = base
            .run(root, &FixedPolicy(Direction::TopDown), &BfsConfig::paper())
            .unwrap();

        let mut opts = small_options();
        // Generous retry budget: the equivalence claim is conditional on
        // retries succeeding (see `faulted_read`); at these rates the odds
        // of an 11-deep fault chain are negligible.
        opts.fault_plan =
            Some(FaultPlan::parse("seed=42,eio=0.1,corrupt=0.05,retries=10").unwrap());
        let data = ScenarioData::build(&el, Scenario::DramPcieFlash, opts).unwrap();
        let run = data
            .run(root, &FixedPolicy(Direction::TopDown), &BfsConfig::paper())
            .unwrap();
        assert_eq!(
            run.parent, expect.parent,
            "healed run must be bit-identical"
        );

        let snap = data.device().unwrap().faults().unwrap().snapshot();
        assert!(snap.eio > 0, "plan must actually inject");
        assert!(snap.corrupt > 0);
        assert_eq!(
            snap.checksum_failures, snap.corrupt,
            "every injected corruption must be caught by the page checksums"
        );
    }

    #[test]
    fn fault_counters_are_reproducible_across_builds() {
        let el = kron(9);
        let spec = "seed=7,eio=0.08,corrupt=0.04,retries=10";
        let snap = |_: u32| {
            let mut opts = small_options();
            opts.fault_plan = Some(FaultPlan::parse(spec).unwrap());
            let data = ScenarioData::build(&el, Scenario::DramSsd, opts).unwrap();
            let root = select_roots(data.csr().num_vertices(), 1, 3, |v| data.degree(v))[0];
            data.run(root, &FixedPolicy(Direction::TopDown), &BfsConfig::paper())
                .unwrap();
            let s = data.device().unwrap().faults().unwrap().snapshot();
            (s.eio, s.corrupt, s.stall, s.retries, s.checksum_failures)
        };
        let a = snap(0);
        let b = snap(1);
        assert!(a.0 + a.1 > 0, "plan must inject");
        assert_eq!(a, b, "same seed + same workload ⇒ same fault sequence");
    }

    #[test]
    fn size_accounting_consistent() {
        let el = kron(9);
        let data = ScenarioData::build(&el, Scenario::DramPcieFlash, small_options()).unwrap();
        assert_eq!(data.nvm_bytes(), data.forward_bytes());
        assert!(data.backward_dram_bytes() > 0);
        assert!(data.status_bytes() > 0);
    }
}
