//! Unified observability for the sembfs workspace.
//!
//! The paper's evaluation (§VI) is an observability exercise — per-level
//! direction and edge counts, `iostat`-style `avgqu-sz`/`avgrq-sz`, cache
//! behaviour — and this crate gives every layer one shared vocabulary for
//! producing those figures:
//!
//! * [`tracer`] — a process-global span/event tracer. Emission is
//!   ring-buffered per thread (no locks shared between emitting threads),
//!   every timestamp is nanoseconds on one monotonic epoch that can be
//!   aligned with the simulated [`Device`]'s clock, and the disabled path
//!   costs exactly one relaxed [`AtomicBool`] load.
//! * [`histogram`] — the log-bucket latency histogram (formerly private to
//!   `sembfs-query`), shared by the query engine and the metrics registry.
//! * [`registry`] — a [`MetricsRegistry`] of named counters, gauges and
//!   histograms, plus pull-style [`MetricSource`]s that adapt the existing
//!   `IoStats`/`CacheSnapshot`/`DomainCounters`/`QueryStats` islands into
//!   one Prometheus-text exposition.
//! * [`sink`] — JSONL trace export/import and a Chrome `trace_event`
//!   converter for flame-style inspection (`chrome://tracing`, Perfetto).
//! * [`report`] — reconstructs per-run, per-level tables (direction,
//!   frontier, MTEPS, NVM MiB, cache hit rate, avgqu-sz) from a trace
//!   alone; this backs the `sembfs report` subcommand.
//!
//! `Device` here means `sembfs_semext::Device`; this crate is a leaf (std
//! only) so every other crate can depend on it.
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool
//! [`Device`]: tracer::Tracer::set_epoch
//! [`MetricsRegistry`]: registry::MetricsRegistry
//! [`MetricSource`]: registry::MetricSource

pub mod histogram;
pub mod json;
pub mod registry;
pub mod report;
pub mod sink;
pub mod tracer;

pub use histogram::{HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use json::Json;
pub use registry::{Counter, Gauge, Metric, MetricSource, MetricValue, MetricsRegistry};
pub use report::{build_reports, render_reports, LevelRow, RunReport, SwitchRow};
pub use sink::{chrome_trace, parse_jsonl, read_jsonl, sample_json, write_jsonl};
pub use tracer::{global, Dir, FaultKind, QueryKind, Sample, TraceEvent, Tracer};
