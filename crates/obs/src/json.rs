//! Minimal JSON writing and parsing.
//!
//! The build environment has no registry access (no `serde`), and the
//! trace formats only need flat objects of numbers, strings and bools —
//! so this module hand-rolls exactly that: an allocation-light object
//! writer ([`JsonObj`]) and a small recursive-descent parser ([`Json`])
//! that keeps integer precision (`u64` stays exact; floats are `f64`).

use std::fmt::Write as _;

/// Escape a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incremental writer for one flat JSON object.
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObj {
    /// Start an object (`{`).
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(name));
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, name: &str, v: u64) -> Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (non-finite values become `0`, which JSON can
    /// represent).
    pub fn f64(mut self, name: &str, v: f64) -> Self {
        self.key(name);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push('0');
        }
        self
    }

    /// Add a string field (escaped).
    pub fn str(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, name: &str, v: bool) -> Self {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add pre-serialized JSON as a field value.
    pub fn raw(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return it.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent (exact).
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `u64` (floats truncate; negatives fail).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Float(v) if *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !fractional && !text.starts_with('-') {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_json() {
        let s = JsonObj::new()
            .str("type", "level")
            .u64("t0", 12345)
            .f64("alpha", 1e6)
            .bool("cached", true)
            .str("note", "a \"quoted\"\nthing")
            .finish();
        let v = Json::parse(&s).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("level"));
        assert_eq!(v.get("t0").unwrap().as_u64(), Some(12345));
        assert_eq!(v.get("alpha").unwrap().as_f64(), Some(1e6));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("note").unwrap().as_str(), Some("a \"quoted\"\nthing"));
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 7;
        let s = JsonObj::new().u64("v", big).finish();
        assert_eq!(
            Json::parse(&s).unwrap().get("v").unwrap().as_u64(),
            Some(big)
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2.5,{"b":null}],"c":false}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn float_round_trips_through_display() {
        for v in [0.1, 1e-6, 123456.789, 1e6] {
            let s = JsonObj::new().f64("x", v).finish();
            assert_eq!(Json::parse(&s).unwrap().get("x").unwrap().as_f64(), Some(v));
        }
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let v = Json::parse(r#"{"a":-3,"b":1e-3}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(-3.0));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(1e-3));
        assert_eq!(v.get("a").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#"{"s":"é\t"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("é\t"));
    }
}
