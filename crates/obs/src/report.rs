//! Rebuild per-run, per-level tables from a trace alone.
//!
//! This is the `sembfs report` back end: given the samples of a JSONL
//! trace, group levels and switch decisions under their BFS runs and
//! render the table the paper's evaluation is built around — direction,
//! frontier, MTEPS, NVM MiB, cache hit rate, and `avgqu-sz` per level —
//! without any access to the in-process `LevelStats`.

use std::fmt::Write as _;

use crate::tracer::{Dir, FaultKind, Sample, TraceEvent};

/// One reconstructed BFS level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelRow {
    /// Level number.
    pub level: u32,
    /// Direction the level ran in.
    pub dir: Dir,
    /// Frontier size entering the level.
    pub frontier: u64,
    /// Vertices discovered.
    pub discovered: u64,
    /// Edges scanned.
    pub scanned_edges: u64,
    /// Scanned edges read from NVM.
    pub nvm_edges: u64,
    /// Level wall time (span duration), ns.
    pub elapsed_ns: u64,
    /// Device requests in the level's window.
    pub io_requests: u64,
    /// Physical device bytes in the window.
    pub io_bytes: u64,
    /// Σ per-request response time in the window, ns.
    pub io_response_ns: u64,
    /// Observed device wall time of the window, ns.
    pub io_wall_ns: u64,
    /// Page-cache demand hits in the window.
    pub cache_hits: u64,
    /// Page-cache demand misses in the window.
    pub cache_misses: u64,
    /// Worker threads the level's step ran on (0 in pre-threading traces).
    pub threads: u64,
}

impl LevelRow {
    /// Millions of scanned edges per second of level wall time.
    pub fn mteps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.scanned_edges as f64 / (self.elapsed_ns as f64 / 1e9) / 1e6
    }

    /// Device MiB moved during the level.
    pub fn nvm_mib(&self) -> f64 {
        self.io_bytes as f64 / (1 << 20) as f64
    }

    /// Cache demand hit rate, when the level saw demand traffic.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// `avgqu-sz` over the level's device window (Little's law), when
    /// the device was active.
    pub fn avgqu_sz(&self) -> Option<f64> {
        (self.io_wall_ns > 0).then(|| self.io_response_ns as f64 / self.io_wall_ns as f64)
    }

    /// Overlapped-wait ratio in `[0, 1)`: the fraction of summed request
    /// response time hidden by concurrent in-flight reads
    /// (`1 − wall/Σresponse`), when the level did device I/O.
    pub fn overlap(&self) -> Option<f64> {
        (self.io_response_ns > 0)
            .then(|| (1.0 - self.io_wall_ns as f64 / self.io_response_ns as f64).max(0.0))
    }
}

/// One recorded direction decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchRow {
    /// Level the decision applies to.
    pub level: u32,
    /// Previous direction.
    pub from: Dir,
    /// Chosen direction.
    pub to: Dir,
    /// Current frontier size.
    pub frontier: u64,
    /// Previous frontier size.
    pub prev_frontier: u64,
    /// Total vertices.
    pub n_all: u64,
    /// Still-unvisited vertices.
    pub unvisited: u64,
    /// Policy α (0 when not applicable).
    pub alpha: f64,
    /// Policy β (0 when not applicable).
    pub beta: f64,
}

/// One reconstructed BFS run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Root vertex (`None` when the trace has levels but no run span).
    pub root: Option<u64>,
    /// Vertices reached.
    pub visited: u64,
    /// TEPS denominator edges.
    pub teps_edges: u64,
    /// Run span start, ns.
    pub start_ns: u64,
    /// Run span end, ns.
    pub end_ns: u64,
    /// Levels in execution order.
    pub levels: Vec<LevelRow>,
    /// Direction decisions in execution order (every level has one).
    pub switches: Vec<SwitchRow>,
    /// NVM read submissions attributed to this run.
    pub nvm_requests: u64,
    /// NVM bytes attributed to this run.
    pub nvm_bytes: u64,
    /// Injected transient `EIO` faults attributed to this run.
    pub faults_eio: u64,
    /// Injected page corruptions attributed to this run.
    pub faults_corrupt: u64,
    /// Injected latency stalls attributed to this run.
    pub faults_stall: u64,
    /// Backoff retries attributed to this run.
    pub retries: u64,
    /// Device-degraded notifications attributed to this run.
    pub degraded_events: u64,
}

impl RunReport {
    /// Total injected faults of every kind attributed to this run.
    pub fn total_faults(&self) -> u64 {
        self.faults_eio + self.faults_corrupt + self.faults_stall
    }

    /// Run MTEPS against the official TEPS edge count.
    pub fn mteps(&self) -> f64 {
        let ns = self.end_ns.saturating_sub(self.start_ns);
        if ns == 0 {
            return 0.0;
        }
        self.teps_edges as f64 / (ns as f64 / 1e9) / 1e6
    }
}

fn level_row(s: &Sample) -> Option<LevelRow> {
    match s.event {
        TraceEvent::Level {
            level,
            dir,
            frontier,
            discovered,
            scanned_edges,
            nvm_edges,
            io_requests,
            io_bytes,
            io_response_ns,
            io_wall_ns,
            cache_hits,
            cache_misses,
            threads,
        } => Some(LevelRow {
            level,
            dir,
            frontier,
            discovered,
            scanned_edges,
            nvm_edges,
            elapsed_ns: s.duration_ns(),
            io_requests,
            io_bytes,
            io_response_ns,
            io_wall_ns,
            cache_hits,
            cache_misses,
            threads,
        }),
        _ => None,
    }
}

fn switch_row(s: &Sample) -> Option<SwitchRow> {
    match s.event {
        TraceEvent::Switch {
            level,
            from,
            to,
            frontier,
            prev_frontier,
            n_all,
            unvisited,
            alpha,
            beta,
        } => Some(SwitchRow {
            level,
            from,
            to,
            frontier,
            prev_frontier,
            n_all,
            unvisited,
            alpha,
            beta,
        }),
        _ => None,
    }
}

/// Group a trace's samples into per-run reports.
///
/// Runs are the `Run` spans in start order; a level/switch/NVM sample
/// belongs to the run whose span contains its start time. When the trace
/// has no `Run` span at all (e.g. tracing was enabled mid-run), one
/// synthetic rootless report collects everything.
pub fn build_reports(samples: &[Sample]) -> Vec<RunReport> {
    let mut reports: Vec<RunReport> = samples
        .iter()
        .filter_map(|s| match s.event {
            TraceEvent::Run {
                root,
                visited,
                teps_edges,
                ..
            } => Some(RunReport {
                root: Some(root),
                visited,
                teps_edges,
                start_ns: s.start_ns,
                end_ns: s.end_ns,
                levels: Vec::new(),
                switches: Vec::new(),
                nvm_requests: 0,
                nvm_bytes: 0,
                faults_eio: 0,
                faults_corrupt: 0,
                faults_stall: 0,
                retries: 0,
                degraded_events: 0,
            }),
            _ => None,
        })
        .collect();
    reports.sort_by_key(|r| r.start_ns);
    let synthetic = reports.is_empty();
    if synthetic {
        reports.push(RunReport {
            root: None,
            visited: 0,
            teps_edges: 0,
            start_ns: 0,
            end_ns: u64::MAX,
            levels: Vec::new(),
            switches: Vec::new(),
            nvm_requests: 0,
            nvm_bytes: 0,
            faults_eio: 0,
            faults_corrupt: 0,
            faults_stall: 0,
            retries: 0,
            degraded_events: 0,
        });
    }

    for s in samples {
        let Some(report) = reports
            .iter_mut()
            .find(|r| s.start_ns >= r.start_ns && s.start_ns <= r.end_ns)
        else {
            continue;
        };
        if let Some(row) = level_row(s) {
            report.levels.push(row);
        } else if let Some(row) = switch_row(s) {
            report.switches.push(row);
        } else if let TraceEvent::NvmRead { bytes, requests } = s.event {
            report.nvm_requests += requests;
            report.nvm_bytes += bytes;
        } else if let TraceEvent::FaultInjected { kind } = s.event {
            match kind {
                FaultKind::TransientEio => report.faults_eio += 1,
                FaultKind::Corruption => report.faults_corrupt += 1,
                FaultKind::Stall => report.faults_stall += 1,
            }
        } else if let TraceEvent::Retry { .. } = s.event {
            report.retries += 1;
        } else if let TraceEvent::Degraded { .. } = s.event {
            report.degraded_events += 1;
        }
    }
    for r in &mut reports {
        r.levels.sort_by_key(|l| l.level);
        r.switches.sort_by_key(|sw| sw.level);
        if synthetic {
            r.end_ns = r.levels.iter().map(|l| l.elapsed_ns).sum();
        }
    }
    reports
}

fn opt(v: Option<f64>, precision: usize) -> String {
    match v {
        Some(v) => format!("{v:.precision$}"),
        None => "-".to_string(),
    }
}

/// Render reports as the human per-level table (the `sembfs report`
/// output). The header names the paper's columns: direction, frontier,
/// MTEPS, NVM MiB, cache hit-rate, avgqu-sz.
pub fn render_reports(reports: &[RunReport]) -> String {
    let mut out = String::new();
    for (i, r) in reports.iter().enumerate() {
        let root = r.root.map_or_else(|| "?".to_string(), |v| v.to_string());
        let wall_ms = r.end_ns.saturating_sub(r.start_ns) as f64 / 1e6;
        let _ = writeln!(
            out,
            "run {} | root {root} | visited {} | {} levels | {:.1} ms | {:.2} MTEPS",
            i + 1,
            r.visited,
            r.levels.len(),
            wall_ms,
            r.mteps()
        );
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>10} {:>11} {:>13} {:>9} {:>9} {:>9} {:>9} {:>4} {:>8}",
            "level",
            "direction",
            "frontier",
            "discovered",
            "scanned-edges",
            "MTEPS",
            "NVM-MiB",
            "hit-rate",
            "avgqu-sz",
            "thr",
            "overlap"
        );
        for l in &r.levels {
            let _ = writeln!(
                out,
                "{:>6} {:>10} {:>10} {:>11} {:>13} {:>9.2} {:>9.2} {:>9} {:>9} {:>4} {:>8}",
                l.level,
                l.dir.as_str(),
                l.frontier,
                l.discovered,
                l.scanned_edges,
                l.mteps(),
                l.nvm_mib(),
                opt(l.hit_rate(), 4),
                opt(l.avgqu_sz(), 2),
                l.threads,
                opt(l.overlap(), 2)
            );
        }
        for sw in &r.switches {
            if sw.from != sw.to {
                let _ = writeln!(
                    out,
                    "switch @ level {}: {} → {}  (frontier {} ← {}, n {}, α={:.0e}, β={:.0e})",
                    sw.level,
                    sw.from,
                    sw.to,
                    sw.frontier,
                    sw.prev_frontier,
                    sw.n_all,
                    sw.alpha,
                    sw.beta
                );
            }
        }
        if r.nvm_requests > 0 {
            let _ = writeln!(
                out,
                "nvm: {} read submissions, {:.1} MiB",
                r.nvm_requests,
                r.nvm_bytes as f64 / (1 << 20) as f64
            );
        }
        if r.total_faults() > 0 || r.retries > 0 || r.degraded_events > 0 {
            let _ = writeln!(
                out,
                "faults: {} eio, {} corrupt, {} stall | {} retries | {} degraded",
                r.faults_eio, r.faults_corrupt, r.faults_stall, r.retries, r.degraded_events
            );
        }
        if i + 1 < reports.len() {
            out.push('\n');
        }
    }
    if reports.is_empty() {
        out.push_str("no BFS runs in trace\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level_sample(t0: u64, t1: u64, level: u32, dir: Dir) -> Sample {
        Sample {
            start_ns: t0,
            end_ns: t1,
            tid: 0,
            event: TraceEvent::Level {
                level,
                dir,
                frontier: 10,
                discovered: 20,
                scanned_edges: 1000,
                nvm_edges: 500,
                io_requests: 4,
                io_bytes: 2 << 20,
                io_response_ns: 600,
                io_wall_ns: 300,
                cache_hits: 3,
                cache_misses: 1,
                threads: 4,
            },
        }
    }

    fn run_sample(t0: u64, t1: u64, root: u64) -> Sample {
        Sample {
            start_ns: t0,
            end_ns: t1,
            tid: 0,
            event: TraceEvent::Run {
                root,
                visited: 100,
                teps_edges: 5000,
                levels: 2,
            },
        }
    }

    #[test]
    fn levels_attach_to_their_runs() {
        let samples = vec![
            run_sample(0, 1000, 7),
            level_sample(10, 400, 1, Dir::TopDown),
            level_sample(450, 900, 2, Dir::BottomUp),
            run_sample(2000, 3000, 9),
            level_sample(2100, 2900, 1, Dir::TopDown),
        ];
        let reports = build_reports(&samples);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].root, Some(7));
        assert_eq!(reports[0].levels.len(), 2);
        assert_eq!(reports[0].levels[1].dir, Dir::BottomUp);
        assert_eq!(reports[1].root, Some(9));
        assert_eq!(reports[1].levels.len(), 1);
    }

    #[test]
    fn nvm_reads_accumulate_per_run() {
        let samples = vec![
            run_sample(0, 1000, 7),
            Sample {
                start_ns: 50,
                end_ns: 80,
                tid: 1,
                event: TraceEvent::NvmRead {
                    bytes: 4096,
                    requests: 1,
                },
            },
            Sample {
                start_ns: 90,
                end_ns: 130,
                tid: 2,
                event: TraceEvent::NvmRead {
                    bytes: 8192,
                    requests: 2,
                },
            },
        ];
        let reports = build_reports(&samples);
        assert_eq!(reports[0].nvm_requests, 3);
        assert_eq!(reports[0].nvm_bytes, 12288);
    }

    #[test]
    fn fault_events_accumulate_and_render_per_run() {
        let instant = |t: u64, event: TraceEvent| Sample {
            start_ns: t,
            end_ns: t,
            tid: 0,
            event,
        };
        let samples = vec![
            run_sample(0, 1000, 7),
            instant(
                10,
                TraceEvent::FaultInjected {
                    kind: FaultKind::TransientEio,
                },
            ),
            instant(
                20,
                TraceEvent::FaultInjected {
                    kind: FaultKind::TransientEio,
                },
            ),
            instant(
                30,
                TraceEvent::FaultInjected {
                    kind: FaultKind::Corruption,
                },
            ),
            instant(
                40,
                TraceEvent::FaultInjected {
                    kind: FaultKind::Stall,
                },
            ),
            instant(
                50,
                TraceEvent::Retry {
                    attempt: 1,
                    delay_ns: 100,
                },
            ),
            instant(
                60,
                TraceEvent::Degraded {
                    errors: 4,
                    requests: 10,
                },
            ),
            // Outside the run span: must not be attributed.
            instant(
                5000,
                TraceEvent::FaultInjected {
                    kind: FaultKind::Stall,
                },
            ),
        ];
        let reports = build_reports(&samples);
        assert_eq!(reports[0].faults_eio, 2);
        assert_eq!(reports[0].faults_corrupt, 1);
        assert_eq!(reports[0].faults_stall, 1);
        assert_eq!(reports[0].retries, 1);
        assert_eq!(reports[0].degraded_events, 1);
        assert_eq!(reports[0].total_faults(), 4);
        let text = render_reports(&reports);
        assert!(
            text.contains("faults: 2 eio, 1 corrupt, 1 stall | 1 retries | 1 degraded"),
            "{text}"
        );
    }

    #[test]
    fn fault_free_runs_render_no_fault_line() {
        let reports = build_reports(&[run_sample(0, 1000, 7)]);
        assert!(!render_reports(&reports).contains("faults:"));
    }

    #[test]
    fn traces_without_run_span_get_synthetic_report() {
        let samples = vec![level_sample(10, 400, 1, Dir::TopDown)];
        let reports = build_reports(&samples);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].root, None);
        assert_eq!(reports[0].levels.len(), 1);
    }

    #[test]
    fn row_derived_metrics() {
        let row = level_row(&level_sample(0, 1_000_000, 1, Dir::TopDown)).unwrap();
        // 1000 edges in 1 ms = 1 MTEPS.
        assert!((row.mteps() - 1.0).abs() < 1e-9);
        assert!((row.nvm_mib() - 2.0).abs() < 1e-9);
        assert_eq!(row.hit_rate(), Some(0.75));
        assert_eq!(row.avgqu_sz(), Some(2.0));
        assert_eq!(row.threads, 4);
        // wall 300 of Σresponse 600 → half the wait was overlapped.
        assert_eq!(row.overlap(), Some(0.5));
        // No device window → no avgqu-sz.
        let mut quiet = row;
        quiet.io_wall_ns = 0;
        assert_eq!(quiet.avgqu_sz(), None);
        quiet.io_response_ns = 0;
        assert_eq!(quiet.overlap(), None);
    }

    #[test]
    fn render_contains_table_header_and_switches() {
        let samples = vec![
            run_sample(0, 1000, 7),
            level_sample(10, 400, 1, Dir::TopDown),
            Sample {
                start_ns: 405,
                end_ns: 405,
                tid: 0,
                event: TraceEvent::Switch {
                    level: 2,
                    from: Dir::TopDown,
                    to: Dir::BottomUp,
                    frontier: 20,
                    prev_frontier: 10,
                    n_all: 256,
                    unvisited: 226,
                    alpha: 1e6,
                    beta: 1e6,
                },
            },
            level_sample(450, 900, 2, Dir::BottomUp),
        ];
        let text = render_reports(&build_reports(&samples));
        assert!(text.contains("avgqu-sz"), "{text}");
        assert!(text.contains("direction"), "{text}");
        assert!(text.contains("top-down"), "{text}");
        assert!(text.contains("switch @ level 2"), "{text}");
        assert!(text.contains("α=1e6"), "{text}");
    }
}
