//! The process-global span/event tracer.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be free.** Every instrumentation site is gated on
//!    [`Tracer::is_enabled`], a single relaxed `AtomicBool` load; no
//!    payload is computed and no clock is read unless tracing is on
//!    (demonstrated by the `obs_overhead` bench).
//! 2. **Enabled must not serialize emitters.** Each thread records into
//!    its own ring buffer behind its own lock; threads never contend with
//!    each other, only with the (rare) drain.
//! 3. **One timebase.** All timestamps are nanoseconds since the tracer
//!    epoch. [`Tracer::set_epoch`] aligns that epoch with a simulated
//!    [`Device`]'s epoch, making `LevelStats` wall-clock spans and
//!    `IoStats` arrival/completion nanoseconds directly comparable in one
//!    trace — the timebase-mismatch fix the evaluation needs.
//! 4. **Bounded memory.** Rings overwrite their oldest entry when full
//!    and count what they dropped. Rare structural events (runs, levels,
//!    switches, queries) live in a separate ring from high-rate detail
//!    events (NVM reads, cache fills/evictions, steps), so an I/O flood
//!    can never evict the level structure a report needs.
//!
//! Events are *complete spans* (start + end recorded together, Chrome
//! `ph:"X"` style) — there is no begin/end pairing to corrupt, and an
//! instant event is just a zero-length span.
//!
//! [`Device`]: Tracer::set_epoch

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Traversal direction tag, mirrored from `sembfs-core` (this crate is a
/// leaf and cannot import it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Frontier-driven expansion over the forward graph.
    TopDown,
    /// Unvisited-driven search over the backward graph.
    BottomUp,
}

impl Dir {
    /// The stable wire name (matches `Direction`'s `Display`).
    pub fn as_str(self) -> &'static str {
        match self {
            Dir::TopDown => "top-down",
            Dir::BottomUp => "bottom-up",
        }
    }

    /// Parse a wire name back.
    pub fn parse(s: &str) -> Option<Dir> {
        match s {
            "top-down" => Some(Dir::TopDown),
            "bottom-up" => Some(Dir::BottomUp),
            _ => None,
        }
    }
}

impl std::fmt::Display for Dir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Query flavor tag for [`TraceEvent::Query`] spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Point-to-point shortest path.
    ShortestPath,
    /// Whole-graph distance sweep, point lookup.
    Distance,
    /// Point-to-point reachability.
    Reachable,
    /// Bounded-depth neighborhood expansion.
    Neighborhood,
}

impl QueryKind {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::ShortestPath => "shortest-path",
            QueryKind::Distance => "distance",
            QueryKind::Reachable => "reachable",
            QueryKind::Neighborhood => "neighborhood",
        }
    }

    /// Parse a wire name back.
    pub fn parse(s: &str) -> Option<QueryKind> {
        match s {
            "shortest-path" => Some(QueryKind::ShortestPath),
            "distance" => Some(QueryKind::Distance),
            "reachable" => Some(QueryKind::Reachable),
            "neighborhood" => Some(QueryKind::Neighborhood),
            _ => None,
        }
    }
}

/// Fault flavor tag for [`TraceEvent::FaultInjected`] events, mirrored
/// from `sembfs-semext::fault` (this crate is a leaf and cannot import it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient `EIO`-style read failure (retryable).
    TransientEio,
    /// Silent page corruption (a bit flip the checksum must catch).
    Corruption,
    /// A latency spike / multi-millisecond stall on one request.
    Stall,
}

impl FaultKind {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::TransientEio => "eio",
            FaultKind::Corruption => "corrupt",
            FaultKind::Stall => "stall",
        }
    }

    /// Parse a wire name back.
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "eio" => Some(FaultKind::TransientEio),
            "corrupt" => Some(FaultKind::Corruption),
            "stall" => Some(FaultKind::Stall),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The payload of one trace sample. All variants are `Copy` with
/// fixed-size fields: emitting never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// One whole BFS execution (spans all its levels).
    Run {
        /// Root vertex.
        root: u64,
        /// Vertices reached (including the root).
        visited: u64,
        /// Undirected input edges of the traversed component (TEPS
        /// denominator).
        teps_edges: u64,
        /// Number of levels executed.
        levels: u64,
    },
    /// One BFS level, with its windowed I/O and cache deltas.
    Level {
        /// Level number (1 = first expansion from the root).
        level: u32,
        /// Direction the level ran in.
        dir: Dir,
        /// Frontier size entering the level.
        frontier: u64,
        /// Vertices discovered by the level.
        discovered: u64,
        /// Edges scanned (either direction).
        scanned_edges: u64,
        /// Scanned edges read from the NVM-resident graph.
        nvm_edges: u64,
        /// Device requests completed during the level (0 when no device
        /// is monitored).
        io_requests: u64,
        /// Physical bytes moved during the level.
        io_bytes: u64,
        /// Σ per-request response time during the level, ns.
        io_response_ns: u64,
        /// Observed device wall time of the level's window, ns.
        io_wall_ns: u64,
        /// Page-cache demand hits during the level.
        cache_hits: u64,
        /// Page-cache demand misses during the level.
        cache_misses: u64,
        /// Worker threads the level's step ran on.
        threads: u64,
    },
    /// One direction-policy decision with the inputs that produced it
    /// (instant event, emitted before the level runs).
    Switch {
        /// Level the decision applies to.
        level: u32,
        /// Direction of the previous level.
        from: Dir,
        /// Direction chosen for this level.
        to: Dir,
        /// Current frontier size (`n_f(i)`).
        frontier: u64,
        /// Previous frontier size (`n_f(i-1)`).
        prev_frontier: u64,
        /// Total vertices (`n_all`).
        n_all: u64,
        /// Still-unvisited vertices.
        unvisited: u64,
        /// The policy's α threshold divisor (0 when the policy has no
        /// α/β form, e.g. `FixedPolicy`).
        alpha: f64,
        /// The policy's β threshold divisor (0 when not applicable).
        beta: f64,
    },
    /// One step-kernel invocation (detail event).
    Step {
        /// Direction of the kernel.
        dir: Dir,
        /// Edges it scanned.
        scanned_edges: u64,
    },
    /// One device read (single request or batch); the span runs from the
    /// request's arrival to its modeled completion on the device clock.
    NvmRead {
        /// Physical bytes moved.
        bytes: u64,
        /// Requests in the submission (1 for synchronous reads).
        requests: u64,
    },
    /// Pages copied into the page cache from the backing store.
    CacheFill {
        /// Pages filled.
        pages: u64,
    },
    /// Pages displaced by CLOCK replacement (instant event).
    CacheEvict {
        /// Pages evicted.
        pages: u64,
    },
    /// One query lifecycle, submission to completion.
    Query {
        /// Query flavor.
        kind: QueryKind,
        /// Served from the result cache without touching the graph.
        cached: bool,
        /// Completed without error.
        ok: bool,
    },
    /// One injected device fault (detail event, instant).
    FaultInjected {
        /// Which failure mode fired.
        kind: FaultKind,
    },
    /// One backoff retry of a faulted read; the span covers the backoff
    /// wait (detail event).
    Retry {
        /// Retry ordinal (1 = first retry after the initial attempt).
        attempt: u32,
        /// Backoff delay waited before this retry, ns.
        delay_ns: u64,
    },
    /// The device-health monitor crossed its degradation threshold
    /// (instant frame event — rare, structural).
    Degraded {
        /// Faulted requests observed in the health window.
        errors: u64,
        /// Total requests observed in the health window.
        requests: u64,
    },
}

impl TraceEvent {
    /// High-rate events live in the detail ring so they can never evict
    /// the run/level structure a report is built from.
    pub fn is_detail(&self) -> bool {
        matches!(
            self,
            TraceEvent::Step { .. }
                | TraceEvent::NvmRead { .. }
                | TraceEvent::CacheFill { .. }
                | TraceEvent::CacheEvict { .. }
                | TraceEvent::FaultInjected { .. }
                | TraceEvent::Retry { .. }
        )
    }

    /// The stable wire name of the variant.
    pub fn kind_str(&self) -> &'static str {
        match self {
            TraceEvent::Run { .. } => "run",
            TraceEvent::Level { .. } => "level",
            TraceEvent::Switch { .. } => "switch",
            TraceEvent::Step { .. } => "step",
            TraceEvent::NvmRead { .. } => "nvm_read",
            TraceEvent::CacheFill { .. } => "cache_fill",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::Query { .. } => "query",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::Degraded { .. } => "degraded",
        }
    }
}

/// One recorded span: `[start_ns, end_ns]` on the tracer epoch, the
/// emitting thread, and the typed payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Span start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Span end (== start for instant events).
    pub end_ns: u64,
    /// Small dense id of the emitting thread (registration order).
    pub tid: u32,
    /// The payload.
    pub event: TraceEvent,
}

impl Sample {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Per-thread sample rings. Structural ("frame") events and high-rate
/// detail events are kept apart — see the module docs.
struct ThreadBuffer {
    tid: u32,
    frames: Mutex<VecDeque<Sample>>,
    details: Mutex<VecDeque<Sample>>,
}

/// Frame ring capacity per thread: runs + levels + switches + queries.
/// A SCALE-27 BFS has < 30 levels; 16 Ki frames holds hundreds of runs.
const FRAME_CAPACITY: usize = 16 * 1024;
/// Detail ring capacity per thread (NVM reads, cache traffic, steps).
const DETAIL_CAPACITY: usize = 64 * 1024;

impl ThreadBuffer {
    fn push(&self, sample: Sample) -> u64 {
        let (ring, cap) = if sample.event.is_detail() {
            (&self.details, DETAIL_CAPACITY)
        } else {
            (&self.frames, FRAME_CAPACITY)
        };
        let mut ring = ring.lock().unwrap();
        let mut dropped = 0;
        if ring.len() >= cap {
            ring.pop_front();
            dropped = 1;
        }
        ring.push_back(sample);
        dropped
    }

    fn take(&self) -> Vec<Sample> {
        let mut out: Vec<Sample> = self.frames.lock().unwrap().drain(..).collect();
        out.extend(self.details.lock().unwrap().drain(..));
        out
    }
}

thread_local! {
    static TLS_BUFFER: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
}

/// The tracer. Use the process-global instance via [`global`]; separate
/// instances exist only for tests of the tracer itself.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Mutex<Instant>,
    threads: Mutex<Vec<Arc<ThreadBuffer>>>,
    next_tid: AtomicU32,
    dropped: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A fresh, disabled tracer with its epoch at "now".
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            epoch: Mutex::new(Instant::now()),
            threads: Mutex::new(Vec::new()),
            next_tid: AtomicU32::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether tracing is on. This relaxed load is the *entire* cost of
    /// an instrumentation site when tracing is disabled.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn tracing on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Re-anchor the timebase, typically to a [`Device`]'s epoch so trace
    /// timestamps and `IoStats` arrival/completion nanoseconds coincide.
    /// Call before emitting; samples recorded under a previous epoch keep
    /// their old base.
    ///
    /// [`Device`]: Tracer::set_epoch
    pub fn set_epoch(&self, epoch: Instant) {
        *self.epoch.lock().unwrap() = epoch;
    }

    /// The current epoch.
    pub fn epoch(&self) -> Instant {
        *self.epoch.lock().unwrap()
    }

    /// Nanoseconds from the epoch to now.
    pub fn now_ns(&self) -> u64 {
        self.ns_of(Instant::now())
    }

    /// Nanoseconds from the epoch to `t` (0 for instants before it).
    pub fn ns_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch()).as_nanos() as u64
    }

    /// Record a complete span. No-op while disabled.
    pub fn span(&self, start_ns: u64, end_ns: u64, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        self.emit(Sample {
            start_ns,
            end_ns: end_ns.max(start_ns),
            tid: 0,
            event,
        });
    }

    /// Record an instant event stamped "now". No-op while disabled.
    pub fn instant(&self, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        let now = self.now_ns();
        self.emit(Sample {
            start_ns: now,
            end_ns: now,
            tid: 0,
            event,
        });
    }

    fn emit(&self, mut sample: Sample) {
        TLS_BUFFER.with(|slot| {
            let mut slot = slot.borrow_mut();
            let buffer = match slot.as_ref() {
                // Fast path: this thread already registered with *this*
                // tracer. (A thread that emitted into a different tracer
                // instance re-registers; only tests mix instances.)
                Some(buf) if self.owns(buf) => buf.clone(),
                _ => {
                    let buf = Arc::new(ThreadBuffer {
                        tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                        frames: Mutex::new(VecDeque::new()),
                        details: Mutex::new(VecDeque::new()),
                    });
                    self.threads.lock().unwrap().push(buf.clone());
                    *slot = Some(buf.clone());
                    buf
                }
            };
            sample.tid = buffer.tid;
            let dropped = buffer.push(sample);
            if dropped > 0 {
                self.dropped.fetch_add(dropped, Ordering::Relaxed);
            }
        });
    }

    fn owns(&self, buf: &Arc<ThreadBuffer>) -> bool {
        self.threads
            .lock()
            .unwrap()
            .iter()
            .any(|b| Arc::ptr_eq(b, buf))
    }

    /// Collect (and clear) every thread's samples, merged and sorted by
    /// start time. Buffers stay registered; emission continues normally.
    pub fn drain(&self) -> Vec<Sample> {
        let buffers: Vec<Arc<ThreadBuffer>> = self.threads.lock().unwrap().clone();
        let mut out: Vec<Sample> = buffers.iter().flat_map(|b| b.take()).collect();
        out.sort_by_key(|s| (s.start_ns, s.end_ns, s.tid));
        out
    }

    /// Discard all buffered samples and zero the dropped counter (the
    /// enabled flag and epoch are untouched).
    pub fn reset(&self) {
        let _ = self.drain();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Samples lost to ring overflow since the last [`reset`](Self::reset).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

/// The process-global tracer every instrumentation site uses.
pub fn global() -> &'static Tracer {
    GLOBAL.get_or_init(Tracer::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.span(0, 10, TraceEvent::CacheFill { pages: 1 });
        t.instant(TraceEvent::CacheEvict { pages: 1 });
        assert!(t.drain().is_empty());
    }

    #[test]
    fn spans_round_trip_and_sort() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.span(50, 60, TraceEvent::CacheFill { pages: 2 });
        t.span(
            10,
            20,
            TraceEvent::Step {
                dir: Dir::TopDown,
                scanned_edges: 7,
            },
        );
        let got = t.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].start_ns, 10);
        assert_eq!(got[1].event, TraceEvent::CacheFill { pages: 2 });
        // Drained: nothing left.
        assert!(t.drain().is_empty());
    }

    #[test]
    fn end_clamped_to_start() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.span(100, 40, TraceEvent::CacheFill { pages: 1 });
        let got = t.drain();
        assert_eq!(got[0].end_ns, 100);
        assert_eq!(got[0].duration_ns(), 0);
    }

    #[test]
    fn detail_flood_never_evicts_frames() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.span(
            0,
            1,
            TraceEvent::Run {
                root: 3,
                visited: 1,
                teps_edges: 0,
                levels: 1,
            },
        );
        for i in 0..(DETAIL_CAPACITY as u64 + 100) {
            t.span(
                i,
                i + 1,
                TraceEvent::NvmRead {
                    bytes: 4096,
                    requests: 1,
                },
            );
        }
        assert_eq!(t.dropped(), 100);
        let got = t.drain();
        assert!(got
            .iter()
            .any(|s| matches!(s.event, TraceEvent::Run { .. })));
        assert_eq!(got.len(), DETAIL_CAPACITY + 1);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let t = Arc::new(Tracer::new());
        t.set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    t.instant(TraceEvent::CacheEvict { pages: 1 });
                });
            }
        });
        let got = t.drain();
        assert_eq!(got.len(), 4);
        let mut tids: Vec<u32> = got.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn epoch_alignment_shifts_timestamps() {
        let t = Tracer::new();
        let early = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.set_epoch(early);
        // Now is at least 2 ms past the aligned epoch.
        assert!(t.now_ns() >= 2_000_000);
        // Instants before the epoch saturate to zero.
        t.set_epoch(Instant::now() + std::time::Duration::from_secs(3600));
        assert_eq!(t.ns_of(Instant::now()), 0);
    }

    #[test]
    fn dir_and_kind_wire_names_round_trip() {
        for d in [Dir::TopDown, Dir::BottomUp] {
            assert_eq!(Dir::parse(d.as_str()), Some(d));
        }
        for k in [
            QueryKind::ShortestPath,
            QueryKind::Distance,
            QueryKind::Reachable,
            QueryKind::Neighborhood,
        ] {
            assert_eq!(QueryKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(Dir::parse("sideways"), None);
    }

    #[test]
    fn fault_kind_wire_names_round_trip() {
        for k in [
            FaultKind::TransientEio,
            FaultKind::Corruption,
            FaultKind::Stall,
        ] {
            assert_eq!(FaultKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(FaultKind::parse("gremlin"), None);
    }

    #[test]
    fn fault_events_route_to_the_right_rings() {
        assert!(TraceEvent::FaultInjected {
            kind: FaultKind::Stall
        }
        .is_detail());
        assert!(TraceEvent::Retry {
            attempt: 1,
            delay_ns: 10
        }
        .is_detail());
        // Degradation is structural: an I/O flood must not evict it.
        assert!(!TraceEvent::Degraded {
            errors: 5,
            requests: 100
        }
        .is_detail());
    }
}
