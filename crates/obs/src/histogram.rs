//! A lock-free log-bucket latency histogram.
//!
//! One shared implementation (formerly private to `sembfs-query`) now
//! serves both the query engine's latency percentiles and the metrics
//! registry's Prometheus histogram exposition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two microsecond buckets: bucket `i` holds latencies
/// in `[2^(i-1), 2^i)` µs (bucket 0 is `< 1 µs`), topping out above an
/// hour — more than any query this engine can produce.
pub const BUCKETS: usize = 42;

/// Upper edge of bucket `i`, in microseconds (`2^i`; bucket 0 = 1 µs).
pub fn bucket_upper_micros(i: usize) -> u64 {
    1u64 << i.min(63)
}

/// A fixed log-bucket latency histogram, recordable from any worker
/// without locks.
///
/// Buckets are powers of two in microseconds, so percentile estimates
/// carry at most 2× resolution error — the right fidelity for a
/// throughput report, at the cost of two atomic adds per sample.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Exact sum in nanoseconds, for the mean.
    total_nanos: AtomicU64,
    count: AtomicU64,
    /// Maximum observed, in nanoseconds.
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    fn bucket_of(latency: Duration) -> usize {
        let micros = latency.as_micros() as u64;
        ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        self.buckets[Self::bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
        self.total_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_nanos
            .fetch_max(latency.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed) / count)
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// Latency at quantile `q` (e.g. `0.99`), reported as the upper edge
    /// of the bucket containing that rank; zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_micros(bucket_upper_micros(i));
            }
        }
        self.max()
    }

    /// Latency at quantile `q` with linear interpolation inside the
    /// containing bucket: the rank's fractional position among the
    /// bucket's samples maps linearly onto `[lower_edge, upper_edge)`.
    /// Smoother than [`quantile`](Self::quantile) (which always reports
    /// the upper edge) while staying within the same 2× bucket bound.
    pub fn quantile_interpolated(&self, q: f64) -> Duration {
        self.snapshot().quantile_interpolated(q)
    }

    /// A point-in-time copy of the per-bucket counts and aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], used by the metrics
/// registry's Prometheus exposition and by interpolated quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (non-cumulative).
    pub buckets: [u64; BUCKETS],
    /// Exact sum of all samples, nanoseconds.
    pub total_nanos: u64,
    /// Total samples.
    pub count: u64,
    /// Maximum observed sample, nanoseconds.
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// Interpolated quantile — see
    /// [`LatencyHistogram::quantile_interpolated`].
    pub fn quantile_interpolated(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        // Continuous rank in [1, count].
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (seen + n) as f64 >= rank {
                let lower = if i == 0 {
                    0.0
                } else {
                    bucket_upper_micros(i - 1) as f64
                };
                let upper = bucket_upper_micros(i) as f64;
                let frac = ((rank - seen as f64) / n as f64).clamp(0.0, 1.0);
                let micros = lower + frac * (upper - lower);
                return Duration::from_secs_f64(micros / 1e6);
            }
            seen += n;
        }
        Duration::from_nanos(self.max_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_ranks() {
        let h = LatencyHistogram::new();
        for micros in [1u64, 2, 4, 100, 100, 100, 100, 10_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 8);
        // p50 falls in the 100 µs cluster → bucket upper edge 128 µs.
        assert_eq!(h.quantile(0.5), Duration::from_micros(128));
        // p99 picks the tail sample's bucket (upper edge ≥ 10 ms sample).
        assert!(h.quantile(0.99) >= Duration::from_micros(10_000));
        assert_eq!(h.max(), Duration::from_micros(10_000));
        assert!(h.mean() > Duration::from_micros(1000));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.quantile_interpolated(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn sub_microsecond_goes_to_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(300));
        assert_eq!(h.quantile(1.0), Duration::from_micros(1));
        assert_eq!(h.snapshot().buckets[0], 1);
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        // Bucket i holds [2^(i-1), 2^i) µs: an exact power of two lands
        // in the *next* bucket (lower edge inclusive).
        let cases = [
            (0u64, 0usize), // < 1 µs
            (1, 1),         // [1, 2)
            (2, 2),         // [2, 4)
            (3, 2),
            (4, 3), // [4, 8)
            (127, 7),
            (128, 8),
        ];
        for (micros, want) in cases {
            let h = LatencyHistogram::new();
            h.record(Duration::from_micros(micros));
            let snap = h.snapshot();
            assert_eq!(
                snap.buckets[want], 1,
                "{micros} µs should land in bucket {want}"
            );
            // And the upper-edge quantile reports 2^want µs.
            assert_eq!(
                h.quantile(1.0),
                Duration::from_micros(bucket_upper_micros(want))
            );
        }
    }

    #[test]
    fn top_bucket_absorbs_the_sky() {
        let h = LatencyHistogram::new();
        // ~136 years — far past bucket 41's lower edge, so it clamps.
        h.record(Duration::from_secs(u32::MAX as u64));
        assert_eq!(h.snapshot().buckets[BUCKETS - 1], 1);
    }

    #[test]
    fn interpolated_p50_p99_land_inside_their_buckets() {
        let h = LatencyHistogram::new();
        // 100 samples at 100 µs (bucket 7: [64, 128) µs) and one outlier.
        for _ in 0..100 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_micros(10_000));
        let p50 = h.quantile_interpolated(0.5);
        assert!(
            p50 >= Duration::from_micros(64) && p50 < Duration::from_micros(128),
            "p50 {p50:?} must interpolate within [64, 128) µs"
        );
        // p99 rank 99.99 still inside the 100 µs cluster.
        let p99 = h.quantile_interpolated(0.99);
        assert!(
            p99 >= Duration::from_micros(64) && p99 < Duration::from_micros(128),
            "p99 {p99:?}"
        );
        // p100 reaches the outlier's bucket.
        assert!(h.quantile_interpolated(1.0) > Duration::from_micros(8192));
        // Interpolation is monotone in q.
        assert!(h.quantile_interpolated(0.1) <= p50);
        assert!(p50 <= p99);
    }

    #[test]
    fn interpolated_fraction_splits_a_bucket() {
        // 4 samples in bucket [64, 128): ranks 1..4 map to evenly spaced
        // points; the median (rank 2) sits at 64 + (2/4)·64 = 96 µs.
        let h = LatencyHistogram::new();
        for _ in 0..4 {
            h.record(Duration::from_micros(100));
        }
        let p50 = h.quantile_interpolated(0.5);
        assert_eq!(p50, Duration::from_micros(96));
    }
}
