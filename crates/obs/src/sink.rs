//! Trace sinks: JSONL export/import and the Chrome `trace_event` view.
//!
//! The JSONL format is one flat object per line:
//!
//! ```text
//! {"type":"level","t0":1200,"t1":531000,"tid":0,"level":1,"dir":"top-down",...}
//! ```
//!
//! `t0`/`t1` are span start/end in nanoseconds on the tracer epoch;
//! everything else is the [`TraceEvent`] payload. Unknown `type`s are
//! skipped on import (forward compatibility), malformed lines are errors.

use std::io::Write;
use std::path::Path;

use crate::json::{Json, JsonObj};
use crate::tracer::{Dir, FaultKind, QueryKind, Sample, TraceEvent};

/// Serialize one sample as a single JSONL line (no trailing newline).
pub fn sample_json(s: &Sample) -> String {
    let obj = JsonObj::new()
        .str("type", s.event.kind_str())
        .u64("t0", s.start_ns)
        .u64("t1", s.end_ns)
        .u64("tid", s.tid as u64);
    match s.event {
        TraceEvent::Run {
            root,
            visited,
            teps_edges,
            levels,
        } => obj
            .u64("root", root)
            .u64("visited", visited)
            .u64("teps_edges", teps_edges)
            .u64("levels", levels),
        TraceEvent::Level {
            level,
            dir,
            frontier,
            discovered,
            scanned_edges,
            nvm_edges,
            io_requests,
            io_bytes,
            io_response_ns,
            io_wall_ns,
            cache_hits,
            cache_misses,
            threads,
        } => obj
            .u64("level", level as u64)
            .str("dir", dir.as_str())
            .u64("frontier", frontier)
            .u64("discovered", discovered)
            .u64("scanned_edges", scanned_edges)
            .u64("nvm_edges", nvm_edges)
            .u64("io_requests", io_requests)
            .u64("io_bytes", io_bytes)
            .u64("io_response_ns", io_response_ns)
            .u64("io_wall_ns", io_wall_ns)
            .u64("cache_hits", cache_hits)
            .u64("cache_misses", cache_misses)
            .u64("threads", threads),
        TraceEvent::Switch {
            level,
            from,
            to,
            frontier,
            prev_frontier,
            n_all,
            unvisited,
            alpha,
            beta,
        } => obj
            .u64("level", level as u64)
            .str("from", from.as_str())
            .str("to", to.as_str())
            .u64("frontier", frontier)
            .u64("prev_frontier", prev_frontier)
            .u64("n_all", n_all)
            .u64("unvisited", unvisited)
            .f64("alpha", alpha)
            .f64("beta", beta),
        TraceEvent::Step { dir, scanned_edges } => obj
            .str("dir", dir.as_str())
            .u64("scanned_edges", scanned_edges),
        TraceEvent::NvmRead { bytes, requests } => {
            obj.u64("bytes", bytes).u64("requests", requests)
        }
        TraceEvent::CacheFill { pages } => obj.u64("pages", pages),
        TraceEvent::CacheEvict { pages } => obj.u64("pages", pages),
        TraceEvent::Query { kind, cached, ok } => obj
            .str("kind", kind.as_str())
            .bool("cached", cached)
            .bool("ok", ok),
        TraceEvent::FaultInjected { kind } => obj.str("kind", kind.as_str()),
        TraceEvent::Retry { attempt, delay_ns } => {
            obj.u64("attempt", attempt as u64).u64("delay_ns", delay_ns)
        }
        TraceEvent::Degraded { errors, requests } => {
            obj.u64("errors", errors).u64("requests", requests)
        }
    }
    .finish()
}

/// Write samples as JSONL to `path`.
pub fn write_jsonl(path: &Path, samples: &[Sample]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    for s in samples {
        writeln!(w, "{}", sample_json(s))?;
    }
    w.flush()
}

/// Parse JSONL text back into samples. Blank lines and unknown event
/// types are skipped; malformed lines fail with their line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        match parse_sample(&v) {
            Ok(Some(sample)) => out.push(sample),
            Ok(None) => {} // unknown type: forward compatibility
            Err(e) => return Err(format!("line {}: {e}", idx + 1)),
        }
    }
    Ok(out)
}

/// Read and parse a JSONL trace file.
pub fn read_jsonl(path: &Path) -> Result<Vec<Sample>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_jsonl(&text)
}

fn field_u64(v: &Json, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing numeric field '{name}'"))
}

fn field_f64(v: &Json, name: &str) -> Result<f64, String> {
    v.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field '{name}'"))
}

fn field_bool(v: &Json, name: &str) -> Result<bool, String> {
    v.get(name)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing boolean field '{name}'"))
}

fn field_dir(v: &Json, name: &str) -> Result<Dir, String> {
    v.get(name)
        .and_then(Json::as_str)
        .and_then(Dir::parse)
        .ok_or_else(|| format!("missing direction field '{name}'"))
}

fn parse_sample(v: &Json) -> Result<Option<Sample>, String> {
    let kind = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing 'type'")?;
    let event = match kind {
        "run" => TraceEvent::Run {
            root: field_u64(v, "root")?,
            visited: field_u64(v, "visited")?,
            teps_edges: field_u64(v, "teps_edges")?,
            levels: field_u64(v, "levels")?,
        },
        "level" => TraceEvent::Level {
            level: field_u64(v, "level")? as u32,
            dir: field_dir(v, "dir")?,
            frontier: field_u64(v, "frontier")?,
            discovered: field_u64(v, "discovered")?,
            scanned_edges: field_u64(v, "scanned_edges")?,
            nvm_edges: field_u64(v, "nvm_edges")?,
            io_requests: field_u64(v, "io_requests")?,
            io_bytes: field_u64(v, "io_bytes")?,
            io_response_ns: field_u64(v, "io_response_ns")?,
            io_wall_ns: field_u64(v, "io_wall_ns")?,
            cache_hits: field_u64(v, "cache_hits")?,
            cache_misses: field_u64(v, "cache_misses")?,
            // Absent in traces written before threading landed.
            threads: field_u64(v, "threads").unwrap_or(0),
        },
        "switch" => TraceEvent::Switch {
            level: field_u64(v, "level")? as u32,
            from: field_dir(v, "from")?,
            to: field_dir(v, "to")?,
            frontier: field_u64(v, "frontier")?,
            prev_frontier: field_u64(v, "prev_frontier")?,
            n_all: field_u64(v, "n_all")?,
            unvisited: field_u64(v, "unvisited")?,
            alpha: field_f64(v, "alpha")?,
            beta: field_f64(v, "beta")?,
        },
        "step" => TraceEvent::Step {
            dir: field_dir(v, "dir")?,
            scanned_edges: field_u64(v, "scanned_edges")?,
        },
        "nvm_read" => TraceEvent::NvmRead {
            bytes: field_u64(v, "bytes")?,
            requests: field_u64(v, "requests")?,
        },
        "cache_fill" => TraceEvent::CacheFill {
            pages: field_u64(v, "pages")?,
        },
        "cache_evict" => TraceEvent::CacheEvict {
            pages: field_u64(v, "pages")?,
        },
        "query" => TraceEvent::Query {
            kind: v
                .get("kind")
                .and_then(Json::as_str)
                .and_then(QueryKind::parse)
                .ok_or("missing query 'kind'")?,
            cached: field_bool(v, "cached")?,
            ok: field_bool(v, "ok")?,
        },
        "fault_injected" => TraceEvent::FaultInjected {
            kind: v
                .get("kind")
                .and_then(Json::as_str)
                .and_then(FaultKind::parse)
                .ok_or("missing fault 'kind'")?,
        },
        "retry" => TraceEvent::Retry {
            attempt: field_u64(v, "attempt")? as u32,
            delay_ns: field_u64(v, "delay_ns")?,
        },
        "degraded" => TraceEvent::Degraded {
            errors: field_u64(v, "errors")?,
            requests: field_u64(v, "requests")?,
        },
        _ => return Ok(None),
    };
    Ok(Some(Sample {
        start_ns: field_u64(v, "t0")?,
        end_ns: field_u64(v, "t1")?,
        tid: field_u64(v, "tid")? as u32,
        event,
    }))
}

/// Convert samples into one Chrome `trace_event` JSON document
/// (`chrome://tracing` / Perfetto "load legacy trace"). Spans become
/// complete (`ph:"X"`) events with microsecond timestamps; zero-length
/// samples become thread-scoped instants (`ph:"i"`).
pub fn chrome_trace(samples: &[Sample]) -> String {
    let mut events = Vec::with_capacity(samples.len());
    for s in samples {
        let name = chrome_name(&s.event);
        let ts = s.start_ns as f64 / 1000.0;
        let mut obj = JsonObj::new()
            .str("name", &name)
            .str("cat", "sembfs")
            .u64("pid", 1)
            .u64("tid", s.tid as u64)
            .f64("ts", ts);
        if s.end_ns > s.start_ns {
            obj = obj
                .str("ph", "X")
                .f64("dur", (s.end_ns - s.start_ns) as f64 / 1000.0);
        } else {
            obj = obj.str("ph", "i").str("s", "t");
        }
        // The payload rides along unmodified as `args`.
        events.push(obj.raw("args", &sample_json(s)).finish());
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

fn chrome_name(event: &TraceEvent) -> String {
    match event {
        TraceEvent::Run { root, .. } => format!("bfs run (root {root})"),
        TraceEvent::Level { level, dir, .. } => format!("level {level} {dir}"),
        TraceEvent::Switch { from, to, .. } => format!("switch {from}→{to}"),
        TraceEvent::Step { dir, .. } => format!("{dir} step"),
        TraceEvent::NvmRead { .. } => "nvm read".to_string(),
        TraceEvent::CacheFill { .. } => "cache fill".to_string(),
        TraceEvent::CacheEvict { .. } => "cache evict".to_string(),
        TraceEvent::Query { kind, .. } => format!("query {}", kind.as_str()),
        TraceEvent::FaultInjected { kind } => format!("fault {kind}"),
        TraceEvent::Retry { attempt, .. } => format!("retry #{attempt}"),
        TraceEvent::Degraded { .. } => "device degraded".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Sample> {
        vec![
            Sample {
                start_ns: 100,
                end_ns: 900,
                tid: 0,
                event: TraceEvent::Level {
                    level: 1,
                    dir: Dir::TopDown,
                    frontier: 1,
                    discovered: 11,
                    scanned_edges: 14,
                    nvm_edges: 14,
                    io_requests: 3,
                    io_bytes: 12288,
                    io_response_ns: 210_000,
                    io_wall_ns: 800,
                    cache_hits: 5,
                    cache_misses: 2,
                    threads: 4,
                },
            },
            Sample {
                start_ns: 950,
                end_ns: 950,
                tid: 0,
                event: TraceEvent::Switch {
                    level: 2,
                    from: Dir::TopDown,
                    to: Dir::BottomUp,
                    frontier: 11,
                    prev_frontier: 1,
                    n_all: 256,
                    unvisited: 244,
                    alpha: 1e6,
                    beta: 1e6,
                },
            },
            Sample {
                start_ns: 120,
                end_ns: 300,
                tid: 2,
                event: TraceEvent::NvmRead {
                    bytes: 4096,
                    requests: 1,
                },
            },
            Sample {
                start_ns: 0,
                end_ns: 2000,
                tid: 0,
                event: TraceEvent::Run {
                    root: 42,
                    visited: 200,
                    teps_edges: 1234,
                    levels: 5,
                },
            },
            Sample {
                start_ns: 10,
                end_ns: 20,
                tid: 1,
                event: TraceEvent::Query {
                    kind: QueryKind::ShortestPath,
                    cached: false,
                    ok: true,
                },
            },
            Sample {
                start_ns: 130,
                end_ns: 130,
                tid: 2,
                event: TraceEvent::FaultInjected {
                    kind: FaultKind::TransientEio,
                },
            },
            Sample {
                start_ns: 131,
                end_ns: 231,
                tid: 2,
                event: TraceEvent::Retry {
                    attempt: 1,
                    delay_ns: 100,
                },
            },
            Sample {
                start_ns: 400,
                end_ns: 400,
                tid: 0,
                event: TraceEvent::Degraded {
                    errors: 9,
                    requests: 60,
                },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let original = samples();
        let text: String = original.iter().map(|s| sample_json(s) + "\n").collect();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn unknown_types_and_blank_lines_skipped() {
        let text = "\n{\"type\":\"future_thing\",\"t0\":1,\"t1\":2,\"tid\":0}\n\n";
        assert!(parse_jsonl(text).unwrap().is_empty());
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let err = parse_jsonl("{\"type\":\"run\",\"t0\":1}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sembfs-obs-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let original = samples();
        write_jsonl(&path, &original).unwrap();
        let parsed = read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed, original);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let doc = chrome_trace(&samples());
        let v = Json::parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 8);
        // The level span: ph X, µs timestamps.
        let level = events
            .iter()
            .find(|e| {
                e.get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .starts_with("level")
            })
            .unwrap();
        assert_eq!(level.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(level.get("ts").unwrap().as_f64(), Some(0.1));
        assert_eq!(level.get("dur").unwrap().as_f64(), Some(0.8));
        // The switch instant: ph i.
        let sw = events
            .iter()
            .find(|e| {
                e.get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .starts_with("switch")
            })
            .unwrap();
        assert_eq!(sw.get("ph").unwrap().as_str(), Some("i"));
    }
}
