//! The metrics registry: named counters/gauges/histograms plus pull-style
//! sources, rendered as Prometheus text exposition.
//!
//! Two registration styles coexist:
//!
//! * **Owned instruments** — [`MetricsRegistry::counter`]/[`gauge`]/
//!   [`histogram`] hand out `Arc`s the caller updates directly. Repeated
//!   registration of the same `(name, labels)` returns the same
//!   instrument, so layers can share counters without coordination.
//! * **Sources** — a [`MetricSource`] is polled at [`gather`] time and
//!   converts an existing stats structure (`IoStats` snapshots,
//!   `CacheSnapshot`s, `DomainCounters`, `QueryStats`) into [`Metric`]s
//!   on demand. The hot paths keep their purpose-built structs; the
//!   registry is a view, not a rewrite.
//!
//! [`gauge`]: MetricsRegistry::gauge
//! [`histogram`]: MetricsRegistry::histogram
//! [`gather`]: MetricsRegistry::gather

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{bucket_upper_micros, HistogramSnapshot, LatencyHistogram, BUCKETS};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// One gathered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(f64),
    /// Point-in-time gauge.
    Gauge(f64),
    /// Log-bucket latency histogram (exposed in seconds; boxed — the
    /// snapshot's bucket array dwarfs the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One gathered metric: name, label set, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (sanitized to Prometheus' charset at exposition time).
    pub name: String,
    /// Label pairs, in presentation order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

impl Metric {
    /// A counter metric.
    pub fn counter(name: &str, labels: &[(&str, &str)], v: f64) -> Self {
        Self::build(name, labels, MetricValue::Counter(v))
    }

    /// A gauge metric.
    pub fn gauge(name: &str, labels: &[(&str, &str)], v: f64) -> Self {
        Self::build(name, labels, MetricValue::Gauge(v))
    }

    fn build(name: &str, labels: &[(&str, &str)], value: MetricValue) -> Self {
        Self {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        }
    }
}

/// A pull-style producer of metrics, polled at gather time.
pub trait MetricSource: Send + Sync {
    /// Produce the source's current metrics.
    fn collect(&self) -> Vec<Metric>;
}

impl<F> MetricSource for F
where
    F: Fn() -> Vec<Metric> + Send + Sync,
{
    fn collect(&self) -> Vec<Metric> {
        self()
    }
}

/// Registered instruments of one kind: `(name, labels, instrument)`.
type Instruments<T> = Vec<(String, Vec<(String, String)>, Arc<T>)>;

#[derive(Default)]
struct Inner {
    counters: Instruments<Counter>,
    gauges: Instruments<Gauge>,
    histograms: Instruments<LatencyHistogram>,
    sources: Vec<Box<dyn MetricSource>>,
}

/// A registry of named instruments and sources. Cheap to share
/// (`Arc<MetricsRegistry>`); gathering takes one lock briefly.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .field("sources", &inner.sources.len())
            .finish()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let labels = owned_labels(labels);
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, _, c)) = inner
            .counters
            .iter()
            .find(|(n, l, _)| n == name && *l == labels)
        {
            return c.clone();
        }
        let c = Arc::new(Counter::default());
        inner.counters.push((name.to_string(), labels, c.clone()));
        c
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let labels = owned_labels(labels);
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, _, g)) = inner
            .gauges
            .iter()
            .find(|(n, l, _)| n == name && *l == labels)
        {
            return g.clone();
        }
        let g = Arc::new(Gauge::default());
        inner.gauges.push((name.to_string(), labels, g.clone()));
        g
    }

    /// Register (or look up) a histogram. The handed-out histogram may
    /// also be shared with other users (e.g. the query engine records
    /// into the same instance the registry exposes).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        let labels = owned_labels(labels);
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, _, h)) = inner
            .histograms
            .iter()
            .find(|(n, l, _)| n == name && *l == labels)
        {
            return h.clone();
        }
        let h = Arc::new(LatencyHistogram::new());
        inner.histograms.push((name.to_string(), labels, h.clone()));
        h
    }

    /// Register an externally-owned histogram under a name.
    pub fn register_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        histogram: Arc<LatencyHistogram>,
    ) {
        let labels = owned_labels(labels);
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .retain(|(n, l, _)| !(n == name && *l == labels));
        inner.histograms.push((name.to_string(), labels, histogram));
    }

    /// Register a pull-style source.
    pub fn register_source(&self, source: Box<dyn MetricSource>) {
        self.inner.lock().unwrap().sources.push(source);
    }

    /// Collect every instrument and source into a flat metric list.
    pub fn gather(&self) -> Vec<Metric> {
        let inner = self.inner.lock().unwrap();
        let mut out = Vec::new();
        for (name, labels, c) in &inner.counters {
            out.push(Metric {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Counter(c.get() as f64),
            });
        }
        for (name, labels, g) in &inner.gauges {
            out.push(Metric {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        for (name, labels, h) in &inner.histograms {
            out.push(Metric {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Histogram(Box::new(h.snapshot())),
            });
        }
        for source in &inner.sources {
            out.extend(source.collect());
        }
        out
    }

    /// Render the gathered metrics in the Prometheus text exposition
    /// format (version 0.0.4): `# TYPE` headers, label sets, histograms
    /// as cumulative `_bucket{le=…}` series in seconds.
    pub fn prometheus_text(&self) -> String {
        let metrics = self.gather();
        // Group by name so each family gets exactly one # TYPE header,
        // in deterministic (sorted) order.
        let mut families: BTreeMap<String, Vec<&Metric>> = BTreeMap::new();
        for m in &metrics {
            families.entry(m.name.clone()).or_default().push(m);
        }
        let mut out = String::new();
        for (name, members) in &families {
            let name = sanitize_name(name);
            let kind = match members[0].value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for m in members {
                match &m.value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                        let _ = writeln!(out, "{name}{} {}", label_str(&m.labels, None), num(*v));
                    }
                    MetricValue::Histogram(snap) => {
                        let mut cum = 0u64;
                        for i in 0..BUCKETS {
                            cum += snap.buckets[i];
                            let le = bucket_upper_micros(i) as f64 / 1e6;
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                label_str(&m.labels, Some(&num(le)))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            label_str(&m.labels, Some("+Inf"))
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            label_str(&m.labels, None),
                            num(snap.total_nanos as f64 / 1e9)
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            label_str(&m.labels, None),
                            snap.count
                        );
                    }
                }
            }
        }
        out
    }
}

fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn sanitize_name(name: &str) -> String {
    name.chars()
        .enumerate()
        .map(|(i, c)| match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => c,
            '0'..='9' if i > 0 => c,
            _ => '_',
        })
        .collect()
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_str(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn instruments_are_shared_by_name_and_labels() {
        let r = MetricsRegistry::new();
        let a = r.counter("sembfs_requests_total", &[("device", "flash")]);
        let b = r.counter("sembfs_requests_total", &[("device", "flash")]);
        let c = r.counter("sembfs_requests_total", &[("device", "ssd")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(c.get(), 0);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn gather_includes_sources() {
        let r = MetricsRegistry::new();
        r.gauge("sembfs_locality", &[]).set(0.75);
        r.register_source(Box::new(|| {
            vec![Metric::counter("sembfs_extra_total", &[], 7.0)]
        }));
        let metrics = r.gather();
        assert!(metrics
            .iter()
            .any(|m| m.name == "sembfs_extra_total" && m.value == MetricValue::Counter(7.0)));
        assert!(metrics
            .iter()
            .any(|m| m.name == "sembfs_locality" && m.value == MetricValue::Gauge(0.75)));
    }

    #[test]
    fn prometheus_text_renders_counters_and_gauges() {
        let r = MetricsRegistry::new();
        r.counter("sembfs_reads_total", &[("device", "FusionIO ioDrive2")])
            .add(12);
        r.gauge("sembfs_hit_rate", &[]).set(0.5);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE sembfs_reads_total counter"), "{text}");
        assert!(
            text.contains("sembfs_reads_total{device=\"FusionIO ioDrive2\"} 12"),
            "{text}"
        );
        assert!(text.contains("# TYPE sembfs_hit_rate gauge"), "{text}");
        assert!(text.contains("sembfs_hit_rate 0.5"), "{text}");
    }

    #[test]
    fn prometheus_histogram_is_cumulative_in_seconds() {
        let r = MetricsRegistry::new();
        let h = r.histogram("sembfs_query_latency_seconds", &[]);
        h.record(Duration::from_micros(1)); // bucket 1 (le 2e-6)
        h.record(Duration::from_micros(100)); // bucket 7 (le 1.28e-4)
        let text = r.prometheus_text();
        assert!(
            text.contains("# TYPE sembfs_query_latency_seconds histogram"),
            "{text}"
        );
        // le=2 µs: 1 sample; le=+Inf: both.
        assert!(
            text.contains("sembfs_query_latency_seconds_bucket{le=\"0.000002\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("sembfs_query_latency_seconds_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("sembfs_query_latency_seconds_count 2"),
            "{text}"
        );
    }

    #[test]
    fn names_are_sanitized() {
        let r = MetricsRegistry::new();
        r.counter("weird name-with.stuff", &[("label name", "va\"lue")])
            .inc();
        let text = r.prometheus_text();
        assert!(text.contains("weird_name_with_stuff"), "{text}");
        assert!(text.contains("label_name=\"va\\\"lue\""), "{text}");
    }

    #[test]
    fn external_histogram_registration_replaces() {
        let r = MetricsRegistry::new();
        let h = Arc::new(LatencyHistogram::new());
        h.record(Duration::from_micros(5));
        r.register_histogram("sembfs_lat", &[], h.clone());
        r.register_histogram("sembfs_lat", &[], h); // idempotent
        let metrics = r.gather();
        let hist: Vec<_> = metrics.iter().filter(|m| m.name == "sembfs_lat").collect();
        assert_eq!(hist.len(), 1);
        match &hist[0].value {
            MetricValue::Histogram(snap) => assert_eq!(snap.count, 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
