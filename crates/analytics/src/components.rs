//! Connected components via BFS sweep.

use sembfs_csr::CsrGraph;
use sembfs_graph500::VertexId;

/// Per-vertex component labels plus the component size distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentReport {
    /// `labels[v]` is `v`'s component id (ids are dense, assigned in
    /// discovery order; isolated vertices get their own component).
    pub labels: Vec<u32>,
    /// `sizes[c]` is the vertex count of component `c`.
    pub sizes: Vec<u64>,
}

impl ComponentReport {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest ("giant") component.
    pub fn giant_size(&self) -> u64 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// The component id of the giant component.
    pub fn giant_id(&self) -> u32 {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(c, _)| c as u32)
            .unwrap_or(0)
    }

    /// Fraction of vertices inside the giant component.
    pub fn giant_fraction(&self) -> f64 {
        let total: u64 = self.sizes.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.giant_size() as f64 / total as f64
        }
    }
}

/// Label the connected components of `csr` with a serial BFS sweep.
///
/// This is an in-DRAM utility (components are a whole-graph property; the
/// semi-external layout would re-read the full forward graph once per
/// component, which no deployment would do — load the CSR, label, drop).
pub fn connected_components(csr: &CsrGraph) -> ComponentReport {
    let n = csr.num_vertices() as usize;
    const UNLABELED: u32 = u32::MAX;
    let mut labels = vec![UNLABELED; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if labels[s] != UNLABELED {
            continue;
        }
        let c = sizes.len() as u32;
        labels[s] = c;
        let mut size = 1u64;
        queue.push_back(s as VertexId);
        while let Some(v) = queue.pop_front() {
            for &w in csr.neighbors(v) {
                if labels[w as usize] == UNLABELED {
                    labels[w as usize] = c;
                    size += 1;
                    queue.push_back(w);
                }
            }
        }
        sizes.push(size);
    }
    ComponentReport { labels, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sembfs_csr::{build_csr, BuildOptions};
    use sembfs_graph500::edge_list::MemEdgeList;

    fn csr(edges: Vec<(u32, u32)>, n: u64) -> CsrGraph {
        build_csr(&MemEdgeList::new(n, edges), BuildOptions::default()).unwrap()
    }

    #[test]
    fn two_components_and_an_isolated_vertex() {
        let g = csr(vec![(0, 1), (1, 2), (3, 4)], 6);
        let r = connected_components(&g);
        assert_eq!(r.num_components(), 3);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[1], r.labels[2]);
        assert_eq!(r.labels[3], r.labels[4]);
        assert_ne!(r.labels[0], r.labels[3]);
        assert_ne!(r.labels[5], r.labels[0]);
        assert_eq!(r.sizes, vec![3, 2, 1]);
        assert_eq!(r.giant_size(), 3);
        assert_eq!(r.giant_id(), 0);
        assert!((r.giant_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fully_connected_graph_is_one_component() {
        let g = csr(vec![(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        let r = connected_components(&g);
        assert_eq!(r.num_components(), 1);
        assert_eq!(r.giant_fraction(), 1.0);
    }

    #[test]
    fn empty_graph_components() {
        let g = csr(vec![], 3);
        let r = connected_components(&g);
        assert_eq!(r.num_components(), 3);
        assert_eq!(r.giant_size(), 1);
    }

    #[test]
    fn kronecker_has_a_giant_component() {
        let el = sembfs_graph500::KroneckerParams::graph500(10, 6).generate();
        let g = build_csr(&el, BuildOptions::default()).unwrap();
        let r = connected_components(&g);
        // Kronecker graphs at edge factor 16 have a dominant giant
        // component plus isolated vertices.
        assert!(r.giant_fraction() > 0.4, "giant {:.2}", r.giant_fraction());
        let total: u64 = r.sizes.iter().sum();
        assert_eq!(total, g.num_vertices());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Labels are consistent with edges (endpoints share labels)
            /// and sizes sum to n.
            #[test]
            fn labels_respect_edges(
                edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120)
            ) {
                let g = csr(edges.clone(), 40);
                let r = connected_components(&g);
                for &(u, v) in &edges {
                    prop_assert_eq!(r.labels[u as usize], r.labels[v as usize]);
                }
                prop_assert_eq!(r.sizes.iter().sum::<u64>(), 40);
                for (v, &c) in r.labels.iter().enumerate() {
                    prop_assert!((c as usize) < r.num_components(), "vertex {v}");
                }
            }
        }
    }
}
