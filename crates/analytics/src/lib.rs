//! BFS-powered network analytics on top of the `sembfs` public API.
//!
//! The paper motivates semi-external BFS with application fields — social
//! networks, system biology, business intelligence (§I) — whose common
//! questions are reachability-shaped: who is connected to whom, how many
//! hops apart, how wide is the network. This crate answers them with the
//! same hybrid searcher the benchmark runs, so every analysis inherits
//! the semi-external layout (and its device accounting) for free.
//!
//! * [`components`] — connected components and their size distribution;
//! * [`separation`] — degrees-of-separation profiles from BFS levels and
//!   a double-sweep pseudo-diameter estimate.

pub mod components;
pub mod separation;

pub use components::{connected_components, ComponentReport};
pub use separation::{pseudo_diameter, separation_histogram, SeparationProfile};

pub use sembfs_graph500::VertexId;
