//! Degrees-of-separation profiles and pseudo-diameter estimation, driven
//! by the semi-external hybrid BFS.

use sembfs_core::{BfsConfig, DirectionPolicy, ScenarioData};
use sembfs_graph500::validate::{compute_levels, INVALID_LEVEL};
use sembfs_graph500::VertexId;
use sembfs_semext::Result;

/// The level structure of one BFS: how many vertices sit at each number
/// of hops from the seed.
///
/// ```
/// use sembfs_analytics::separation_histogram;
/// use sembfs_graph500::INVALID_PARENT;
///
/// // Path 0-1-2 plus an unreachable vertex.
/// let parent = vec![0, 0, 1, INVALID_PARENT];
/// let profile = separation_histogram(&parent, 0).unwrap();
/// assert_eq!(profile.counts, vec![1, 1, 1]);
/// assert_eq!(profile.eccentricity(), 2);
/// assert_eq!(profile.unreachable, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SeparationProfile {
    /// The seed vertex.
    pub seed: VertexId,
    /// `counts[d]` = vertices exactly `d` hops from the seed.
    pub counts: Vec<u64>,
    /// Vertices unreachable from the seed.
    pub unreachable: u64,
}

impl SeparationProfile {
    /// Build the histogram from a per-vertex level array (the output of a
    /// distances-only BFS, [`sembfs_core::hybrid_bfs_distances`]).
    pub fn from_levels(levels: &[u32], seed: VertexId) -> Self {
        let mut counts = Vec::new();
        let mut unreachable = 0u64;
        for &l in levels {
            if l == INVALID_LEVEL {
                unreachable += 1;
                continue;
            }
            if counts.len() <= l as usize {
                counts.resize(l as usize + 1, 0);
            }
            counts[l as usize] += 1;
        }
        Self {
            seed,
            counts,
            unreachable,
        }
    }

    /// The farthest reached distance (0 for an isolated seed).
    pub fn eccentricity(&self) -> u32 {
        (self.counts.len() as u32).saturating_sub(1)
    }

    /// Total reachable vertices (including the seed).
    pub fn reachable(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean separation over reachable vertices (the "degrees of
    /// separation" statistic; 0 when only the seed is reachable).
    pub fn mean_separation(&self) -> f64 {
        let total = self.reachable();
        if total <= 1 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        weighted as f64 / (total - 1) as f64
    }
}

/// Build the separation histogram of a finished BFS parent array.
pub fn separation_histogram(parent: &[VertexId], seed: VertexId) -> Result<SeparationProfile> {
    let levels =
        compute_levels(parent, seed).map_err(|e| sembfs_semext::Error::Corrupt(e.to_string()))?;
    let mut counts = Vec::new();
    let mut unreachable = 0u64;
    for &l in &levels {
        if l == INVALID_LEVEL {
            unreachable += 1;
            continue;
        }
        if counts.len() <= l as usize {
            counts.resize(l as usize + 1, 0);
        }
        counts[l as usize] += 1;
    }
    Ok(SeparationProfile {
        seed,
        counts,
        unreachable,
    })
}

/// Double-sweep pseudo-diameter: BFS from `start`, re-run from a farthest
/// vertex, and report that eccentricity — a standard lower bound on the
/// true diameter that is usually tight on small-world graphs. Both sweeps
/// run through the scenario's (possibly semi-external) layout as
/// *distances-only* BFS — no parent tree is allocated and no parent-chain
/// level recovery runs, since only eccentricities are consumed.
pub fn pseudo_diameter(
    data: &ScenarioData,
    start: VertexId,
    policy: &dyn DirectionPolicy,
) -> Result<(u32, VertexId, VertexId)> {
    let first = data.run_distances(start, policy, &BfsConfig::paper())?;
    let ecc = first.max_level;
    // A vertex on the last level.
    let far = first
        .levels
        .iter()
        .position(|&l| l == ecc)
        .map(|v| v as VertexId)
        .unwrap_or(start);
    let second = data.run_distances(far, policy, &BfsConfig::paper())?;
    Ok((ecc.max(second.max_level), far, start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sembfs_core::{AlphaBetaPolicy, Scenario, ScenarioOptions};
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_graph500::INVALID_PARENT;

    #[test]
    fn histogram_of_a_path() {
        // 0-1-2-3, 4 isolated; BFS tree from 0.
        let parent = vec![0, 0, 1, 2, INVALID_PARENT];
        let p = separation_histogram(&parent, 0).unwrap();
        assert_eq!(p.counts, vec![1, 1, 1, 1]);
        assert_eq!(p.eccentricity(), 3);
        assert_eq!(p.reachable(), 4);
        assert_eq!(p.unreachable, 1);
        assert!((p.mean_separation() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_levels_matches_parent_histogram() {
        let parent = vec![0, 0, 1, 2, INVALID_PARENT];
        let via_parent = separation_histogram(&parent, 0).unwrap();
        let via_levels = SeparationProfile::from_levels(&[0, 1, 2, 3, INVALID_LEVEL], 0);
        assert_eq!(via_parent, via_levels);
    }

    #[test]
    fn isolated_seed_profile() {
        let parent = vec![0, INVALID_PARENT];
        let p = separation_histogram(&parent, 0).unwrap();
        assert_eq!(p.eccentricity(), 0);
        assert_eq!(p.mean_separation(), 0.0);
        assert_eq!(p.unreachable, 1);
    }

    #[test]
    fn pseudo_diameter_on_a_path_graph() {
        // Path 0-1-2-3-4: true diameter 4. Starting mid-path (2) has
        // eccentricity 2; the double sweep must find 4.
        let el = MemEdgeList::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let data =
            ScenarioData::build(&el, Scenario::DramOnly, ScenarioOptions::default()).unwrap();
        let (d, _, _) = pseudo_diameter(&data, 2, &AlphaBetaPolicy::new(1e4, 1e4)).unwrap();
        assert_eq!(d, 4);
    }

    #[test]
    fn pseudo_diameter_through_semi_external_layout() {
        let el = sembfs_graph500::KroneckerParams::graph500(9, 3).generate();
        let data =
            ScenarioData::build(&el, Scenario::DramPcieFlash, ScenarioOptions::default()).unwrap();
        let seed = sembfs_graph500::select_roots(512, 1, 1, |v| data.degree(v))[0];
        let (d, far, _) = pseudo_diameter(&data, seed, &AlphaBetaPolicy::new(1e4, 1e5)).unwrap();
        assert!(d >= 1);
        assert!((far as u64) < 512);
        // The device was exercised.
        assert!(data.device().unwrap().snapshot().requests > 0);
    }
}
