//! Extension experiment: "performance studies on various NVM devices"
//! (§VIII future work).
//!
//! Runs the DRAM+NVM layout over a spectrum of device models — the
//! paper's two 2013 devices plus an era-contemporary eMLC drive, a modern
//! NVMe Gen4 part, and app-direct persistent memory — and asks how the
//! offload penalty and the optimal α shift as devices close the gap to
//! DRAM.

use sembfs_bench::{measure, mteps, BenchEnv, Table};
use sembfs_core::{AlphaBetaPolicy, Scenario, ScenarioData};
use sembfs_semext::DeviceProfile;

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Extension: the offload penalty across a decade of NVM devices",
        "paper §VIII asks for studies on various NVM devices",
    );
    let edges = env.generate();

    // DRAM-only baseline.
    let dram = env.build(&edges, Scenario::DramOnly, env.measured_options());
    let roots = env.roots(&dram);
    let sweep = [(1e3, 10.0), (1e4, 10.0), (1e5, 1.0)];
    let best_of = |data: &ScenarioData| -> (f64, f64) {
        let mut best = (0.0f64, 0.0f64);
        for &(alpha, bm) in &sweep {
            let (_, median) = measure(data, &roots, &AlphaBetaPolicy::new(alpha, alpha * bm));
            if median > best.0 {
                best = (median, alpha);
            }
        }
        best
    };
    let (dram_teps, _) = best_of(&dram);

    let mut table = Table::new(&["device", "median MTEPS", "vs DRAM-only %", "best alpha"]);
    table.row(&[
        "(none — DRAM-only)".into(),
        mteps(dram_teps),
        "+0.0".into(),
        "-".into(),
    ]);
    for profile in [
        DeviceProfile::intel_ssd_320(),
        DeviceProfile::dc_s3700(),
        DeviceProfile::iodrive2(),
        DeviceProfile::nvme_gen4(),
        DeviceProfile::pmem(),
    ] {
        let name = profile.name;
        let mut opts = env.measured_options();
        opts.device_profile_override = Some(profile);
        let data = env.build(&edges, Scenario::DramPcieFlash, opts);
        let (teps, alpha) = best_of(&data);
        table.row(&[
            name.to_string(),
            mteps(teps),
            format!("{:+.1}", (teps / dram_teps - 1.0) * 100.0),
            format!("{alpha:.0e}"),
        ]);
    }
    table.print();
    println!(
        "\nexpected: the offload penalty shrinks monotonically with device speed; \
         near-DRAM devices tolerate small α (frequent top-down) again"
    );
}
