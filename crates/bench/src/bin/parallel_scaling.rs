//! Parallel-kernel scaling exhibit: threads × scenario.
//!
//! Sweeps the deterministic parallel BFS kernels over 1/2/4/8 workers on
//! every machine scenario and reports median MTEPS, speedup over the
//! 1-thread run, and the overlapped-wait ratio of the NVM window (the
//! fraction of summed request response time hidden by concurrent
//! in-flight reads — the quantity the chunked work-stealing top-down
//! exists to maximize: all workers issue page reads, so the throttled
//! `Device::wait_until` windows overlap instead of serializing a level).
//!
//! Every run's parent tree is asserted bit-identical to the serial
//! canonical `reference_bfs` — the scaling numbers and the determinism
//! guarantee come from the same invocations.
//!
//! Acceptance (ISSUE 5): at SCALE 20, 4 threads on the external-forward
//! flash configuration (`flash ext-heavy`, the row whose level work is
//! dominated by NVM forward-graph reads) reach ≥ 2× the 1-thread MTEPS.
//!
//! `parallel_scaling --smoke` prints one deterministic digest line per
//! (scenario, threads) for CI (two runs must emit identical lines).

use sembfs_bench::{mteps, trace_begin, trace_finish, BenchEnv, Table};
use sembfs_core::{reference_bfs, AlphaBetaPolicy, BfsConfig, BfsRun, Scenario};
use sembfs_graph500::VertexId;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The sweep's configurations. The per-scenario best α/β switch to the
/// DRAM bottom-up almost immediately (that is *why* semi-external works),
/// so they measure kernel scaling with the device nearly idle. The
/// `ext-heavy` row keeps α=β=10 — bottom-up only for the peak levels,
/// top-down through the external forward graph everywhere else — which is
/// the configuration where overlapping throttled NVM reads pays; it
/// carries the ISSUE's ≥ 2× acceptance gate.
fn configs() -> Vec<(&'static str, Scenario, AlphaBetaPolicy)> {
    vec![
        (
            "DRAM-only best",
            Scenario::DramOnly,
            Scenario::DramOnly.best_policy(),
        ),
        (
            "flash best",
            Scenario::DramPcieFlash,
            Scenario::DramPcieFlash.best_policy(),
        ),
        (
            "ssd best",
            Scenario::DramSsd,
            Scenario::DramSsd.best_policy(),
        ),
        (
            "flash ext-heavy",
            Scenario::DramPcieFlash,
            AlphaBetaPolicy::new(10.0, 10.0),
        ),
    ]
}

/// Aggregate overlapped-wait ratio of one run's device windows.
fn run_overlap(run: &BfsRun) -> Option<f64> {
    let mut response = 0u64;
    let mut wall = 0u64;
    for l in &run.levels {
        if let Some(io) = &l.io {
            response += io.response_ns;
            wall += io.wall_ns();
        }
    }
    (response > 0).then(|| (1.0 - wall as f64 / response as f64).max(0.0))
}

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// FNV-1a over a parent array (the CLI's digest, duplicated so the smoke
/// lines stand alone).
fn digest(parent: &[VertexId]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &p in parent {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn smoke(env: &BenchEnv) {
    let edges = env.generate_small();
    for scenario in Scenario::ALL {
        let mut opts = env.accounting_options();
        opts.sort_neighbors = true;
        let data = env.build(&edges, scenario, opts);
        let roots = env.roots(&data);
        for threads in [1usize, 4] {
            let cfg = BfsConfig::paper().with_threads(threads);
            let mut h: u64 = 0;
            let mut visited = 0u64;
            for &root in &roots {
                let run = data.run(root, &scenario.best_policy(), &cfg).expect("bfs");
                // No per-thread salt: the t=1 and t=4 lines must print the
                // *same* hash, so thread-invariance shows up in the diff.
                h ^= digest(&run.parent).rotate_left(root % 63);
                visited += run.visited;
            }
            println!(
                "smoke {} t={threads}: trees {h:016x} visited {visited}",
                scenario.label()
            );
        }
    }
}

fn main() {
    let env = BenchEnv::from_env();
    if std::env::args().any(|a| a == "--smoke") {
        smoke(&env);
        return;
    }
    env.print_header(
        "Parallel scaling: threads x scenario (deterministic kernels)",
        "NETAL runs 32 threads over 4 NUMA domains (SSxIV-A); we sweep the \
         worker count and verify bit-equal trees",
    );
    let edges = env.generate();

    let mut table = Table::new(&[
        "scenario",
        "threads",
        "median MTEPS",
        "speedup",
        "overlap",
        "avgqu-sz",
    ]);
    let mut acceptance: Option<(f64, f64)> = None; // ext-heavy (serial, 4t) MTEPS
    for (label, scenario, policy) in configs() {
        let mut opts = env.measured_options();
        opts.sort_neighbors = true;
        let data = env.build(&edges, scenario, opts);
        trace_begin(&data);
        let roots = env.roots(&data);
        // The canonical trees every thread count must reproduce.
        let want: Vec<Vec<VertexId>> = roots
            .iter()
            .map(|&r| reference_bfs(data.csr(), r).parent)
            .collect();

        let mut base_mteps = 0.0;
        for threads in THREADS {
            let cfg = BfsConfig::paper().with_threads(threads);
            let mut teps = Vec::new();
            let mut overlaps = Vec::new();
            let mut queue = Vec::new();
            for (i, &root) in roots.iter().enumerate() {
                if let Some(dev) = data.device() {
                    dev.reset_stats();
                }
                let run = data.run(root, &policy, &cfg).expect("bfs");
                assert_eq!(
                    run.parent, want[i],
                    "{label} root {root} at {threads} threads diverged from reference_bfs"
                );
                teps.push(run.teps());
                if let Some(o) = run_overlap(&run) {
                    overlaps.push(o);
                }
                let (resp, wall): (u64, u64) = run
                    .levels
                    .iter()
                    .filter_map(|l| l.io.as_ref())
                    .map(|io| (io.response_ns, io.wall_ns()))
                    .fold((0, 0), |(a, b), (r, w)| (a + r, b + w));
                if wall > 0 {
                    queue.push(resp as f64 / wall as f64);
                }
            }
            let med = median(teps);
            if threads == 1 {
                base_mteps = med;
            }
            if label == "flash ext-heavy" {
                match threads {
                    1 => acceptance = Some((med, 0.0)),
                    4 => {
                        if let Some(a) = acceptance.as_mut() {
                            a.1 = med;
                        }
                    }
                    _ => {}
                }
            }
            table.row(&[
                label.into(),
                threads.to_string(),
                mteps(med),
                format!(
                    "{:.2}x",
                    if base_mteps > 0.0 {
                        med / base_mteps
                    } else {
                        0.0
                    }
                ),
                if overlaps.is_empty() {
                    "-".into()
                } else {
                    format!("{:.2}", median(overlaps))
                },
                if queue.is_empty() {
                    "-".into()
                } else {
                    format!("{:.2}", median(queue))
                },
            ]);
        }
    }
    trace_finish();
    table.print();
    println!(
        "\nevery run above was asserted bit-identical to the canonical serial \
         reference_bfs tree"
    );
    if let Some((serial, four)) = acceptance {
        let ratio = if serial > 0.0 { four / serial } else { 0.0 };
        println!(
            "acceptance (flash ext-heavy, 4 threads vs 1): {:.2}x {}",
            ratio,
            if ratio >= 2.0 {
                "(>= 2x: PASS)"
            } else {
                "(< 2x)"
            }
        );
    }
}
