//! Figure 8: BFS performance for the main (SCALE 27) instance — the three
//! scenarios across switching parameters, plus the top-down-only,
//! bottom-up-only, and Graph500-reference baselines.
//!
//! Paper: DRAM-only 5.12 GTEPS; DRAM+PCIeFlash 4.22 GTEPS (−19.18 %);
//! DRAM+SSD 2.76 GTEPS (−47.1 %); top-down-only 0.6; bottom-up-only 0.4;
//! reference v2.1.4 0.04 — all on the DRAM-only box for the baselines.

use std::time::Instant;

use sembfs_bench::{measure, mteps, spare_dram_for, trace_begin, trace_finish, BenchEnv, Table};
use sembfs_core::{reference_bfs, AlphaBetaPolicy, Direction, FixedPolicy, Scenario};

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Figure 8: BFS Performance (main SCALE)",
        "SCALE 27 — DRAM-only 5.12 GTEPS, +PCIeFlash 4.22 (−19.18 %), +SSD 2.76 \
         (−47.1 %); TD-only 0.6, BU-only 0.4, reference 0.04",
    );
    let edges = env.generate();

    let mut table = Table::new(&[
        "configuration",
        "alpha",
        "beta",
        "median MTEPS",
        "vs best %",
    ]);
    let mut rows: Vec<(String, String, String, f64)> = Vec::new();

    // Hybrid per scenario, sweeping the paper's comparison grid.
    let sweep = [(1e4, 10.0), (1e5, 1.0), (1e6, 1.0), (1e5, 0.1)];
    let mut dram_best = 0.0f64;
    // No page-cache model here: at the paper's main SCALE the forward
    // graph (40.1 GB) dwarfs the spare DRAM (≈16 GB) and the measured
    // iostat queues (Figs. 12/13) show the reads really reached the
    // device. Fig. 9 is the cached regime.
    let _ = spare_dram_for(&env, env.scale);
    for sc in Scenario::ALL {
        let data = env.build(&edges, sc, env.measured_options());
        trace_begin(&data);
        let roots = env.roots(&data);
        let mut best_for_scenario = (0.0f64, 0.0, 0.0);
        for &(alpha, bm) in &sweep {
            let policy = AlphaBetaPolicy::new(alpha, alpha * bm);
            let (_, median) = measure(&data, &roots, &policy);
            if median > best_for_scenario.0 {
                best_for_scenario = (median, alpha, alpha * bm);
            }
        }
        if sc == Scenario::DramOnly {
            dram_best = best_for_scenario.0;
        }
        rows.push((
            sc.label().to_string(),
            format!("{:.0e}", best_for_scenario.1),
            format!("{:.0e}", best_for_scenario.2),
            best_for_scenario.0,
        ));
    }

    // Baselines on the DRAM-only configuration (as in the paper).
    let data = env.build(&edges, Scenario::DramOnly, env.measured_options());
    let roots = env.roots(&data);
    for (label, dir) in [
        ("top-down only", Direction::TopDown),
        ("bottom-up only", Direction::BottomUp),
    ] {
        let (_, median) = measure(&data, &roots, &FixedPolicy(dir));
        rows.push((label.to_string(), "-".into(), "-".into(), median));
    }
    // Graph500 reference (serial top-down).
    {
        let mut teps = Vec::new();
        for &root in &roots {
            let t0 = Instant::now();
            let run = reference_bfs(data.csr(), root);
            let dt = t0.elapsed().as_secs_f64();
            // Same edge accounting as the hybrid searchers.
            let edges_in_component = run
                .parent
                .iter()
                .enumerate()
                .filter(|(_, &p)| p != sembfs_core::INVALID_PARENT)
                .map(|(v, _)| data.csr().degree(v as u32))
                .sum::<u64>()
                / 2;
            teps.push(edges_in_component as f64 / dt);
        }
        teps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rows.push((
            "Graph500 reference".into(),
            "-".into(),
            "-".into(),
            teps[teps.len() / 2],
        ));
    }

    for (label, a, b, median) in &rows {
        let table_ref: &mut Table = &mut table;
        table_ref.row(&[
            label.clone(),
            a.clone(),
            b.clone(),
            mteps(*median),
            format!("{:+.1}", (median / dram_best - 1.0) * 100.0),
        ]);
    }
    table.print();
    println!("\npaper shape check: DRAM-only > +PCIeFlash > +SSD ≫ TD-only > BU-only ≫ reference");
    trace_finish();
}
