//! Figure 9: BFS performance for the reduced instance that fits the NVM
//! scenarios' DRAM budget.
//!
//! Paper (SCALE 26): the same comparison as Fig. 8 but the
//! DRAM+PCIeFlash scenario becomes *competitive* with DRAM-only — with a
//! smaller graph "only a few top-down approaches access the forward graph
//! on NVM devices, and most of accesses are conducted to the backward
//! graph on DRAM by bottom-up approaches".

use sembfs_bench::{measure, mteps, spare_dram_for, BenchEnv, Table};
use sembfs_core::{AlphaBetaPolicy, Scenario};

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Figure 9: BFS Performance (small SCALE, fits DRAM)",
        "SCALE 26 — +PCIeFlash competitive with DRAM-only; +SSD still behind",
    );
    let edges = env.generate_small();

    let sweep = [(1e4, 10.0), (1e5, 1.0), (1e6, 1.0), (1e5, 0.1)];
    let mut table = Table::new(&[
        "scenario",
        "alpha",
        "beta",
        "median MTEPS",
        "vs DRAM-only %",
    ]);
    let mut dram_best = 0.0f64;
    let mut rows = Vec::new();
    // Same machine, same DRAM budget as the Fig. 8 run — but the small
    // working set leaves enough spare to cache the whole forward graph
    // (the paper's "can basically be fitted on the capacity of the DRAM").
    let spare = spare_dram_for(&env, env.small_scale);
    for sc in Scenario::ALL {
        let mut opts = env.measured_options();
        if sc != Scenario::DramOnly {
            opts.page_cache_bytes = Some(spare);
        }
        let data = env.build(&edges, sc, opts);
        let roots = env.roots(&data);
        let mut best = (0.0f64, 0.0, 0.0);
        for &(alpha, bm) in &sweep {
            let (_, median) = measure(&data, &roots, &AlphaBetaPolicy::new(alpha, alpha * bm));
            if median > best.0 {
                best = (median, alpha, alpha * bm);
            }
        }
        if sc == Scenario::DramOnly {
            dram_best = best.0;
        }
        rows.push((sc.label().to_string(), best));
    }
    for (label, (median, a, b)) in rows {
        table.row(&[
            label,
            format!("{a:.0e}"),
            format!("{b:.0e}"),
            mteps(median),
            format!("{:+.1}", (median / dram_best - 1.0) * 100.0),
        ]);
    }
    table.print();
    println!("\npaper shape check: the PCIeFlash gap shrinks vs Fig. 8 (compare the two runs)");
}
