//! Extension experiment: multi-node scaling of the semi-external hybrid
//! BFS (the paper's §VIII future work, simulated).
//!
//! Sweeps the node count for two clusters — all-DRAM nodes over an ideal
//! network, and flash-offloaded nodes over InfiniBand — reporting
//! simulated TEPS, the communication share of the runtime, and per-node
//! DRAM demand. The headline of the single-node paper should survive
//! scale-out: per-node DRAM shrinks ∝ 1/p while the α/β policy keeps the
//! device traffic bounded.

use sembfs_bench::{mteps, BenchEnv, Table};
use sembfs_core::AlphaBetaPolicy;
use sembfs_dist::{dist_hybrid_bfs, ClusterSpec, DistGraph, NetworkProfile};
use sembfs_graph500::select_roots;
use sembfs_semext::DelayMode;

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Extension: simulated multi-node scaling (paper §VIII future work)",
        "not in the paper — composes the offload technique with 1-D distributed BFS",
    );
    let edges = env.generate();
    let policy = AlphaBetaPolicy::new(1e4, 1e5);

    for (cluster_name, mk_spec) in [
        (
            "DRAM nodes / ideal net",
            Box::new(|p: usize| ClusterSpec::dram(p)) as Box<dyn Fn(usize) -> ClusterSpec>,
        ),
        (
            "flash nodes / InfiniBand",
            Box::new(|p: usize| {
                let mut s = ClusterSpec::flash_cluster(p);
                s.network = NetworkProfile::infiniband_qdr();
                s.delay_mode = DelayMode::Throttled;
                s
            }),
        ),
    ] {
        println!("[{cluster_name}]");
        let mut table = Table::new(&[
            "nodes",
            "sim MTEPS",
            "comm %",
            "MiB moved/run",
            "node DRAM MiB",
            "node NVM MiB",
        ]);
        for p in [1usize, 2, 4, 8] {
            let graph = DistGraph::build(&edges, mk_spec(p)).expect("cluster build");
            let roots = select_roots(graph.num_vertices(), env.num_roots.min(4), env.seed, |v| {
                graph.degree(v)
            });
            let mut teps: Vec<f64> = Vec::new();
            let mut comm_frac = 0.0;
            let mut bytes = 0u64;
            for &root in &roots {
                let run = dist_hybrid_bfs(&graph, root, &policy).expect("bfs");
                teps.push(run.sim_teps());
                let net: f64 = run.levels.iter().map(|l| l.net_time.as_secs_f64()).sum();
                comm_frac += net / run.sim_elapsed.as_secs_f64().max(1e-12);
                bytes += run.net.bytes;
            }
            teps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let dram_mib = (0..p).map(|k| graph.node(k).dram_bytes()).max().unwrap();
            let nvm_mib = (0..p).map(|k| graph.node(k).nvm_bytes()).max().unwrap();
            table.row(&[
                p.to_string(),
                mteps(teps[teps.len() / 2]),
                format!("{:.1}", 100.0 * comm_frac / roots.len() as f64),
                format!(
                    "{:.1}",
                    bytes as f64 / roots.len() as f64 / (1 << 20) as f64
                ),
                format!("{:.1}", dram_mib as f64 / (1 << 20) as f64),
                format!("{:.1}", nvm_mib as f64 / (1 << 20) as f64),
            ]);
        }
        table.print();
        println!();
    }
    println!("expected: per-node memory ∝ 1/p; communication share grows with p");
}
