//! Ablation (DESIGN.md §7.4): degree-ordered vertex relabeling.
//!
//! The Graph500 scrambler randomizes vertex IDs; relabeling by descending
//! degree packs hubs into a dense prefix. This compares hybrid BFS on the
//! scrambled layout (the paper's setting) against the degree-ordered one,
//! per scenario.

use sembfs_bench::{measure, mteps, BenchEnv, Table};
use sembfs_core::{Scenario, ScenarioData};
use sembfs_csr::{build_csr, BuildOptions, Relabeling};
use sembfs_graph500::select_roots;

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Ablation: degree-ordered vertex relabeling",
        "not in the paper — tests whether the scrambled layout costs performance",
    );
    let edges = env.generate();
    let base_csr = build_csr(&edges, BuildOptions::default()).expect("csr");
    let relabeling = Relabeling::by_degree_desc(&base_csr);
    let relabeled_csr = relabeling.apply_to_csr(&base_csr);

    let mut table = Table::new(&["scenario", "layout", "median MTEPS", "delta %"]);
    for sc in Scenario::ALL {
        let policy = sc.best_policy();

        let data =
            ScenarioData::from_csr(base_csr.clone(), sc, env.measured_options()).expect("scenario");
        let roots = env.roots(&data);
        let (_, base_median) = measure(&data, &roots, &policy);

        let data_r = ScenarioData::from_csr(relabeled_csr.clone(), sc, env.measured_options())
            .expect("scenario");
        let roots_r: Vec<u32> = roots.iter().map(|&r| relabeling.new_id(r)).collect();
        let roots_r = if roots_r.iter().all(|&r| data_r.degree(r) > 0) {
            roots_r
        } else {
            select_roots(relabeled_csr.num_vertices(), roots.len(), env.seed, |v| {
                data_r.degree(v)
            })
        };
        let (_, rel_median) = measure(&data_r, &roots_r, &policy);

        table.row(&[
            sc.label().to_string(),
            "scrambled".into(),
            mteps(base_median),
            "+0.0".into(),
        ]);
        table.row(&[
            sc.label().to_string(),
            "degree-ordered".into(),
            mteps(rel_median),
            format!("{:+.1}", (rel_median / base_median - 1.0) * 100.0),
        ]);
    }
    table.print();
}
