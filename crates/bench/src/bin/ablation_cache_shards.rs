//! Ablation: sharded page-cache geometry — lock-stripe count × DRAM
//! budget.
//!
//! The concurrent page cache (`semext::shard_cache`) stripes its CLOCK
//! state over `Mutex<ClockShard>` shards so parallel top-down workers
//! don't serialize on one lock, and holds real 4 KiB pages so hits are
//! served from DRAM. This binary sweeps shard count × capacity on an NVM
//! scenario and emits a JSON document (stdout) with the per-config
//! hit/miss/eviction/readahead counters and device totals — the raw
//! material for choosing `ScenarioOptions::cache_shards` /
//! `page_cache_bytes`.
//!
//! Env: the usual `SEMBFS_*` variables, plus `SEMBFS_CACHE_READAHEAD`
//! (readahead window in pages, default 0).

use sembfs_bench::{measure, BenchEnv};
use sembfs_core::{Direction, FixedPolicy, Scenario, ScenarioData};
use sembfs_csr::{build_csr, BuildOptions};

fn main() {
    let env = BenchEnv::from_env();
    let readahead: usize = std::env::var("SEMBFS_CACHE_READAHEAD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let scenario = Scenario::DramPcieFlash;

    eprintln!(
        "ablation_cache_shards: SCALE {}, {} roots, seed {}, readahead {} pages",
        env.scale, env.num_roots, env.seed, readahead
    );

    let edges = env.generate();
    let csr = build_csr(&edges, BuildOptions::default()).expect("csr build");

    // Size the budget ladder off the bytes actually offloaded.
    let probe = ScenarioData::from_csr(csr.clone(), scenario, env.accounting_options())
        .expect("probe scenario");
    let nvm_bytes = probe.nvm_bytes();
    let roots = env.roots(&probe);
    drop(probe);

    // Forced top-down: the scenario's tuned hybrid (α=1e6) switches to
    // bottom-up after the root level and never reads the forward graph
    // again, which would leave the cache idle. Top-down-only routes every
    // traversed edge through the external store, so the sweep measures
    // cache geometry, not policy choices.
    let policy = FixedPolicy(Direction::TopDown);
    let fractions = [0.125f64, 0.25, 0.5, 1.0];
    let shard_counts = [1usize, 2, 4, 8, 16];

    let mut rows: Vec<String> = Vec::new();
    for &frac in &fractions {
        let capacity = ((nvm_bytes as f64 * frac) as u64).max(4096);
        for &shards in &shard_counts {
            let mut opts = env.accounting_options();
            opts.page_cache_bytes = Some(capacity);
            opts.cache_shards = Some(shards);
            opts.cache_readahead_pages = readahead;
            let data = ScenarioData::from_csr(csr.clone(), scenario, opts).expect("scenario build");
            let cache = data.page_cache().expect("cache configured").clone();
            let dev = data.device().expect("nvm scenario").clone();

            let before = cache.snapshot();
            dev.reset_stats();
            let (_, median) = measure(&data, &roots, &policy);
            let delta = cache.snapshot().delta(&before);
            let io = dev.snapshot();

            eprintln!(
                "  shards {shards:>2} × {:>6.3} capacity: hit rate {:.4}, {} device requests",
                frac,
                delta.hit_rate(),
                io.requests
            );
            rows.push(format!(
                "    {{\"shards\": {}, \"capacity_bytes\": {}, \"capacity_fraction\": {}, \
                 \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.6}, \"evictions\": {}, \
                 \"readahead_pages_loaded\": {}, \"device_requests\": {}, \
                 \"device_bytes\": {}, \"median_mteps\": {:.3}}}",
                shards,
                capacity,
                frac,
                delta.hits,
                delta.misses,
                delta.hit_rate(),
                delta.evictions,
                delta.readahead_pages,
                io.requests,
                io.bytes,
                median / 1e6
            ));
        }
    }

    println!("{{");
    println!("  \"exhibit\": \"ablation_cache_shards\",");
    println!("  \"scenario\": \"{}\",", scenario.label());
    println!("  \"scale\": {},", env.scale);
    println!("  \"roots\": {},", roots.len());
    println!("  \"seed\": {},", env.seed);
    println!("  \"readahead_pages\": {readahead},");
    println!("  \"forward_nvm_bytes\": {nvm_bytes},");
    println!("  \"sweep\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
