//! Figure 3: breakdown of graph size at each SCALE.
//!
//! Paper: edge list / forward graph / backward graph sizes grow
//! exponentially with SCALE; at SCALE 31 the total reaches 1.5 TB with
//! the forward graph slightly larger than the backward graph. This binary
//! sweeps a local SCALE range and prints the same three series (the
//! forward/backward asymmetry comes from the per-domain index
//! replication).

use sembfs_bench::{mib, BenchEnv, Table};
use sembfs_core::Scenario;
use sembfs_graph500::KroneckerParams;

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Figure 3: Breakdown of Graph Size at Each SCALE",
        "SCALE sweep; at 31: edge list 384 GB, FG 640 GB, BG 528 GB (1.5 TB total)",
    );

    let lo = env.scale.saturating_sub(5).max(10);
    let hi = env.scale;
    let mut table = Table::new(&[
        "SCALE",
        "edge list MiB",
        "forward MiB",
        "backward MiB",
        "total MiB",
        "FG/BG",
    ]);
    for scale in lo..=hi {
        let el = KroneckerParams::graph500(scale, env.seed).generate();
        let el_bytes = el.byte_size();
        let data = env.build(&el, Scenario::DramOnly, env.accounting_options());
        let fg = data.forward_bytes();
        let bg = data.backward_dram_bytes();
        table.row(&[
            scale.to_string(),
            mib(el_bytes),
            mib(fg),
            mib(bg),
            mib(el_bytes + fg + bg),
            format!("{:.3}", fg as f64 / bg as f64),
        ]);
    }
    table.print();
    println!("\npaper shape check: every series doubles per SCALE; FG/BG ratio > 1");
}
