//! Ablation (§VI-D): `libaio`-style I/O aggregation.
//!
//! The paper observes small request sizes and long queues and concludes
//! "we may exploit further I/O performance of the devices by aggregating
//! small I/O operations such as libaio library". This implements that
//! aggregation — every top-down dequeue batch (64 vertices) becomes one
//! asynchronous device submission paying the access latency once — and
//! compares it against the synchronous per-request baseline.

use sembfs_bench::{mteps, BenchEnv, Table};
use sembfs_core::{AlphaBetaPolicy, BfsConfig, Scenario};

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Ablation: synchronous read(2) vs libaio-style batch submission",
        "§VI-D proposes aggregation as future work; here it runs",
    );
    let edges = env.generate();

    // The analysis parameters (α=1e4, β=10α) keep some top-down levels so
    // the forward device actually gets traffic.
    let policy = AlphaBetaPolicy::new(1e4, 1e5);

    let mut table = Table::new(&[
        "scenario",
        "I/O mode",
        "median MTEPS",
        "TD phase ms/run",
        "TD speedup x",
    ]);
    for sc in [Scenario::DramPcieFlash, Scenario::DramSsd] {
        let mut base_td = None;
        for aggregate in [false, true] {
            let data = env.build(&edges, sc, env.measured_options());
            let roots = env.roots(&data);
            let cfg = if aggregate {
                BfsConfig::paper().with_aggregation()
            } else {
                BfsConfig::paper()
            };
            let runs: Vec<_> = roots
                .iter()
                .map(|&r| data.run(r, &policy, &cfg).expect("bfs"))
                .collect();
            let mut teps: Vec<f64> = runs.iter().map(|r| r.teps()).collect();
            teps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = teps[teps.len() / 2];
            // The aggregation only touches the top-down (device) phase;
            // isolate its time so the effect is not diluted by the
            // DRAM-resident bottom-up phase.
            let td_ms: f64 = runs
                .iter()
                .flat_map(|r| &r.levels)
                .filter(|l| l.direction == sembfs_core::Direction::TopDown)
                .map(|l| l.elapsed.as_secs_f64() * 1e3)
                .sum::<f64>()
                / runs.len() as f64;
            let b = *base_td.get_or_insert(td_ms);
            table.row(&[
                sc.label().to_string(),
                if aggregate {
                    "libaio batch"
                } else {
                    "sync read(2)"
                }
                .to_string(),
                mteps(median),
                format!("{td_ms:.3}"),
                format!("{:.2}", b / td_ms),
            ]);
        }
    }
    table.print();
    println!(
        "\nexpected: aggregation amortizes the access latency across each 64-vertex \
         dequeue batch, helping most where latency dominates (small requests)"
    );
}
