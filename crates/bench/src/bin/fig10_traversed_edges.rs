//! Figure 10: average traversed edges by direction.
//!
//! Paper: the NVM configurations choose parameters that *minimize
//! top-down traversals* (those hit the device) at the cost of one or two
//! extra bottom-up levels — total scanned edges stay close to DRAM-only
//! while the top-down share collapses.

use sembfs_bench::{measure, BenchEnv, Table};
use sembfs_core::{Direction, DirectionPolicy, LevelStats, Scenario};

fn mean_by_direction(all_runs: &[Vec<LevelStats>], dir: Direction) -> f64 {
    let total: u64 = all_runs
        .iter()
        .flat_map(|levels| levels.iter())
        .filter(|l| l.direction == dir)
        .map(|l| l.scanned_edges)
        .sum();
    total as f64 / all_runs.len() as f64
}

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Figure 10: Traversed Edges by Direction",
        "SCALE 27 — NVM configs shrink the top-down share; totals stay comparable",
    );
    let edges = env.generate();

    let mut table = Table::new(&[
        "scenario",
        "policy",
        "top-down edges/run",
        "bottom-up edges/run",
        "total/run",
        "TD share %",
    ]);
    for sc in Scenario::ALL {
        let data = env.build(&edges, sc, env.measured_options());
        let roots = env.roots(&data);
        let policy = sc.best_policy();
        let (runs, _) = measure(&data, &roots, &policy);
        let levels: Vec<_> = runs.into_iter().map(|r| r.levels).collect();
        let td = mean_by_direction(&levels, Direction::TopDown);
        let bu = mean_by_direction(&levels, Direction::BottomUp);
        table.row(&[
            sc.label().to_string(),
            policy.label(),
            format!("{td:.0}"),
            format!("{bu:.0}"),
            format!("{:.0}", td + bu),
            format!("{:.2}", 100.0 * td / (td + bu)),
        ]);
    }
    table.print();
    println!("\npaper shape check: TD share smallest for the NVM scenarios' best policies");
}
