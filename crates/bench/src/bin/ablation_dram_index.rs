//! Ablation (DESIGN.md §7): pinning the forward graph's index arrays in
//! DRAM.
//!
//! The paper reads both the index ("array file") and value file from NVM
//! (§V-B1) — every expansion pays two device round-trips. Pinning the
//! `8(n+1)·ℓ`-byte index in DRAM halves the request count of low-degree
//! expansions at a modest DRAM cost; this quantifies the trade.

use sembfs_bench::{measure, mib, mteps, BenchEnv, Table};
use sembfs_core::{AlphaBetaPolicy, Scenario, ScenarioOptions};

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Ablation: forward-graph index pinned in DRAM vs on NVM",
        "paper reads index and values from NVM (§V-B1)",
    );
    let edges = env.generate();

    let mut table = Table::new(&[
        "scenario",
        "index home",
        "median MTEPS",
        "device requests/run",
        "extra DRAM MiB",
    ]);
    for sc in [Scenario::DramPcieFlash, Scenario::DramSsd] {
        for pin in [false, true] {
            let opts = ScenarioOptions {
                dram_index: pin,
                ..env.measured_options()
            };
            let data = env.build(&edges, sc, opts);
            let roots = env.roots(&data);
            let dev = data.device().expect("nvm scenario").clone();
            dev.reset_stats();
            // Analysis parameters (α=1e4, β=10α) so top-down levels — the
            // only consumers of the index — actually run.
            let (_, median) = measure(&data, &roots, &AlphaBetaPolicy::new(1e4, 1e5));
            let reqs = dev.snapshot().requests / roots.len() as u64;
            let index_bytes = (data.csr().num_vertices() + 1) * 8 * env.topology.domains() as u64;
            table.row(&[
                sc.label().to_string(),
                if pin { "DRAM (pinned)" } else { "NVM (paper)" }.to_string(),
                mteps(median),
                reqs.to_string(),
                if pin { mib(index_bytes) } else { "0.0".into() },
            ]);
        }
    }
    table.print();
    println!("\nexpected: pinning cuts requests roughly in half on low-degree levels");
}
