//! Figure 13: average request size in sectors (`avgrq-sz`) of NVM
//! requests during the benchmark's BFS iterations.
//!
//! Paper: avgrq-sz ≈ 22.6 sectors (PCIe flash) and 22.7 (SSD) — well
//! above one 4 KiB application chunk (8 sectors) because the kernel block
//! layer merges adjacent requests, yet far below the devices' optimum,
//! motivating explicit aggregation ("such as libaio"). We print the
//! series per iteration and the effect of the merge window.

use sembfs_bench::{BenchEnv, Table};
use sembfs_core::{AlphaBetaPolicy, BfsConfig, Scenario};
use sembfs_semext::ChunkedReader;

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Figure 13: avgrq-sz (sectors) of NVM requests during BFS",
        "SCALE 27 — 22.6 sectors (PCIeFlash) vs 22.7 (SSD); both ≈ 11 KiB merged",
    );
    let edges = env.generate();

    for sc in [Scenario::DramPcieFlash, Scenario::DramSsd] {
        let data = env.build(&edges, sc, env.measured_options());
        let roots = env.roots(&data);
        let dev = data.device().expect("NVM scenario").clone();
        // Analysis parameters (α=1e4, β=10α): keeps top-down levels in the
        // run so the device sees the paper's request mix.
        let policy = AlphaBetaPolicy::new(1e4, 1e5);

        let mut table = Table::new(&["iteration", "requests", "sectors", "avgrq-sz", "MiB read"]);
        let mut rq = Vec::new();
        for (i, &root) in roots.iter().enumerate() {
            let before = dev.snapshot();
            data.run(root, &policy, &BfsConfig::paper()).expect("bfs");
            let d = dev.snapshot().delta(&before);
            rq.push(d.avgrq_sz());
            table.row(&[
                (i + 1).to_string(),
                d.requests.to_string(),
                d.sectors.to_string(),
                format!("{:.2}", d.avgrq_sz()),
                format!("{:.2}", d.bytes as f64 / (1 << 20) as f64),
            ]);
        }
        println!("[{}] device: {}", sc.label(), dev.profile().name);
        table.print();
        println!(
            "  average avgrq-sz: {:.2} sectors\n",
            rq.iter().sum::<f64>() / rq.len() as f64
        );
    }

    // Ablation: without kernel-style merging the request size caps at the
    // 4 KiB application chunk (8 sectors) — the paper's aggregation point.
    let data = env.build(&edges, Scenario::DramPcieFlash, env.measured_options());
    let dev = data.device().unwrap().clone();
    let root = env.roots(&data)[0];
    let cfg = BfsConfig::paper().with_reader(ChunkedReader::unmerged());
    let before = dev.snapshot();
    data.run(root, &AlphaBetaPolicy::new(1e4, 1e5), &cfg)
        .expect("bfs");
    let d = dev.snapshot().delta(&before);
    println!(
        "no-merge ablation (pure 4 KiB read(2) chunks): avgrq-sz {:.2} sectors (≤ 8)",
        d.avgrq_sz()
    );
    println!("paper shape check: merged avgrq-sz ≈ tens of sectors on both devices");
}
