//! Figure 12: average queue length (`avgqu-sz`) of NVM requests during
//! the benchmark's BFS iterations.
//!
//! Paper: avgqu-sz averages 36.1 on the PCIe flash and 56.1 on the SSD —
//! "many I/O request wait situations occur", worse on the lower-IOPS
//! device. We reproduce the per-iteration series and the average from the
//! device model's exact accounting.

use sembfs_bench::{BenchEnv, Table};
use sembfs_core::{AlphaBetaPolicy, BfsConfig, Scenario};

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Figure 12: avgqu-sz of NVM requests during BFS",
        "SCALE 27 — average 36.1 (PCIeFlash) vs 56.1 (SSD)",
    );
    let edges = env.generate();

    // Accounting mode models fully-overlapped request generation — the
    // 48-thread testbed's arrival pattern that builds the queue the paper
    // measures. (A low-core host running synchronously can never have two
    // requests outstanding, so its aqu-sz is trivially ≤ 1.) The analysis
    // parameters α=1e4, β=10α keep top-down levels in the run.
    for sc in [Scenario::DramPcieFlash, Scenario::DramSsd] {
        let data = env.build(&edges, sc, env.accounting_options());
        let roots = env.roots(&data);
        let dev = data.device().expect("NVM scenario").clone();
        let policy = AlphaBetaPolicy::new(1e4, 1e5);

        let mut table = Table::new(&["iteration", "requests", "avgqu-sz", "await ms"]);
        let mut qu_values = Vec::new();
        for (i, &root) in roots.iter().enumerate() {
            let before = dev.snapshot();
            data.run(root, &policy, &BfsConfig::paper()).expect("bfs");
            let delta = dev.snapshot().delta(&before);
            qu_values.push(delta.avgqu_sz());
            table.row(&[
                (i + 1).to_string(),
                delta.requests.to_string(),
                format!("{:.2}", delta.avgqu_sz()),
                format!("{:.3}", delta.await_ms()),
            ]);
        }
        println!("[{}] device: {}", sc.label(), dev.profile().name);
        table.print();
        let avg = qu_values.iter().sum::<f64>() / qu_values.len() as f64;
        println!("  average avgqu-sz: {avg:.2}\n");
    }
    println!("paper shape check: SSD sustains a longer request queue than PCIe flash");
}
