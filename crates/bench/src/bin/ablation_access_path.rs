//! Ablation: the §V-B1 access-path choice — POSIX `read(2)` (the paper)
//! versus `mmap(2)`.
//!
//! The paper reads the offloaded forward graph with explicit 4 KiB
//! `read(2)` calls; mapping the files instead trades syscalls for page
//! faults and lets the hardware prefetch contiguous spans. Both paths are
//! metered identically by the device model, so the difference shown here
//! is the host-side access cost (the device time is the same).

use sembfs_bench::{measure, mteps, BenchEnv, Table};
use sembfs_core::{AccessPath, AlphaBetaPolicy, Scenario};

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Ablation: read(2) vs mmap for the offloaded forward graph",
        "§V-B1 chooses POSIX read(2) at 4 KiB chunks",
    );
    let edges = env.generate();
    let policy = AlphaBetaPolicy::new(1e4, 1e5);

    let mut table = Table::new(&[
        "scenario",
        "access path",
        "median MTEPS",
        "device requests/run",
    ]);
    for sc in [Scenario::DramPcieFlash, Scenario::DramSsd] {
        for path in [AccessPath::Pread, AccessPath::Mmap] {
            let mut opts = env.measured_options();
            opts.access_path = path;
            let data = env.build(&edges, sc, opts);
            let roots = env.roots(&data);
            let dev = data.device().expect("nvm scenario").clone();
            dev.reset_stats();
            let (_, median) = measure(&data, &roots, &policy);
            table.row(&[
                sc.label().to_string(),
                format!("{path:?}"),
                mteps(median),
                (dev.snapshot().requests / roots.len() as u64).to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nnote: the device model charges both paths identically; differences are \
         host-side copy/syscall costs (expect parity at small scale)"
    );
}
