//! Figure 7: median TEPS over the (α, β) parameter space, one heatmap per
//! scenario.
//!
//! Paper (SCALE 27): DRAM-only peaks at 5.12 GTEPS (α=1e4, β=10α);
//! DRAM+PCIeFlash at 4.22 GTEPS (α=1e6, β=1α); DRAM+SSD at 2.76 GTEPS
//! (α=1e5, β=0.1α) — the slower the device, the more the optimum moves
//! toward "switch to bottom-up early, switch back late".

use sembfs_bench::{measure, mteps, BenchEnv, Table};
use sembfs_core::{AlphaBetaPolicy, Scenario};

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Figure 7: TEPS over the α×β space, three scenarios",
        "SCALE 27 — best: DRAM-only 5.12 GTEPS @ (1e4, 10α); \
         +PCIeFlash 4.22 @ (1e6, 1α); +SSD 2.76 @ (1e5, 0.1α)",
    );

    let alphas = [1e2, 1e3, 1e4, 1e5, 1e6];
    let beta_mults = [0.1, 1.0, 10.0];
    let edges = env.generate();

    for sc in Scenario::ALL {
        let data = env.build(&edges, sc, env.measured_options());
        let roots = env.roots(&data);
        println!(
            "[{}] median MTEPS (rows: α, columns: β multiplier)",
            sc.label()
        );
        let mut table = Table::new(&["alpha", "0.1*a", "1*a", "10*a"]);
        let mut best = (0.0f64, 0.0f64, 0.0f64);
        for &alpha in &alphas {
            let mut cells = vec![format!("{alpha:.0e}")];
            for &bm in &beta_mults {
                let policy = AlphaBetaPolicy::new(alpha, alpha * bm);
                let (_, median) = measure(&data, &roots, &policy);
                if median > best.0 {
                    best = (median, alpha, alpha * bm);
                }
                cells.push(mteps(median));
            }
            table.row(&cells);
        }
        table.print();
        println!(
            "  best: {} MTEPS at α = {:.0e}, β = {:.0e}\n",
            mteps(best.0),
            best.1,
            best.2
        );
    }
    println!("paper shape check: NVM scenarios prefer larger α (earlier bottom-up) than DRAM-only");
}
