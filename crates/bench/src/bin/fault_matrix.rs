//! Robustness exhibit: the fault-rate × scenario matrix.
//!
//! Sweeps deterministic device-fault rates (transient EIO, checksummed
//! corruption, latency stalls) over both NVM scenarios and verifies the
//! central resilience claim: whenever the retry budget can absorb the
//! injected faults, the BFS parent tree is **bit-identical** to the
//! fault-free run — faults cost time, never answers. Runs that exhaust
//! the budget fail *typed* (`RetriesExhausted`/`ChecksumMismatch`) and
//! are reported, never silently wrong.
//!
//! The run is forced pure top-down so every expansion reads the device —
//! the worst case for fault exposure; the direction-optimizing policy
//! would hide most of the traffic in DRAM bottom-up.
//!
//! The bottom table measures the *price* of the resilient read path with
//! no faults firing: checksum sealing + per-fill verification + the fault
//! routing check, versus the bare store. Acceptance: ≤ 5% at zero rate.
//!
//! `fault_matrix --smoke` prints one deterministic counter line per
//! scenario (used by CI: two identical invocations must emit identical
//! lines).

use std::time::Instant;

use sembfs_bench::{mteps, BenchEnv, Table};
use sembfs_core::{BfsConfig, BfsRun, Direction, FixedPolicy, Scenario, ScenarioData};
use sembfs_graph500::VertexId;
use sembfs_semext::FaultPlan;

const SCENARIOS: [Scenario; 2] = [Scenario::DramPcieFlash, Scenario::DramSsd];

fn spec_for(rate: f64) -> String {
    format!(
        "seed=7,eio={rate},corrupt={},stall={},stall_us=100,retries=12",
        rate / 2.0,
        rate / 2.0
    )
}

/// Run every root top-down; `Ok` runs must match `clean` bit-exactly.
/// Returns (completed runs, exhausted count).
fn run_all(
    data: &ScenarioData,
    roots: &[VertexId],
    clean: Option<&[BfsRun]>,
) -> (Vec<BfsRun>, u64) {
    let policy = FixedPolicy(Direction::TopDown);
    let mut runs = Vec::new();
    let mut exhausted = 0u64;
    for (i, &root) in roots.iter().enumerate() {
        match data.run(root, &policy, &BfsConfig::paper()) {
            Ok(run) => {
                if let Some(clean) = clean {
                    assert_eq!(
                        run.parent, clean[i].parent,
                        "faulted run from root {root} diverged from the fault-free tree"
                    );
                }
                runs.push(run);
            }
            Err(sembfs_semext::Error::RetriesExhausted { .. })
            | Err(sembfs_semext::Error::ChecksumMismatch { .. }) => exhausted += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    (runs, exhausted)
}

fn median_teps(runs: &[BfsRun]) -> f64 {
    let mut teps: Vec<f64> = runs.iter().map(BfsRun::teps).collect();
    teps.sort_by(|a, b| a.partial_cmp(b).expect("finite TEPS"));
    if teps.is_empty() {
        0.0
    } else {
        teps[teps.len() / 2]
    }
}

fn smoke(env: &BenchEnv) {
    // Deterministic counters on the uncached pread path (no page cache):
    // the fault sequence is a pure function of (plan seed, offsets read).
    for scenario in SCENARIOS {
        let edges = env.generate();
        let mut opts = env.accounting_options();
        opts.sort_neighbors = true;
        opts.fault_plan = Some(FaultPlan::parse(&spec_for(0.04)).expect("smoke plan"));
        let data = env.build(&edges, scenario, opts);
        let roots = env.roots(&data);
        let (runs, exhausted) = run_all(&data, &roots, None);
        let s = data
            .device()
            .expect("NVM scenario")
            .faults()
            .expect("plan")
            .snapshot();
        println!(
            "smoke {}: eio={} corrupt={} stall={} retries={} checksum={} completed={} exhausted={}",
            scenario.label(),
            s.eio,
            s.corrupt,
            s.stall,
            s.retries,
            s.checksum_failures,
            runs.len(),
            exhausted
        );
    }
}

fn main() {
    let env = BenchEnv::from_env();
    if std::env::args().any(|a| a == "--smoke") {
        smoke(&env);
        return;
    }
    env.print_header(
        "Robustness: fault-rate x scenario matrix (pure top-down)",
        "no paper counterpart - the device model learns to fail",
    );
    let edges = env.generate();

    let mut table = Table::new(&[
        "scenario",
        "rate",
        "median MTEPS",
        "vs clean %",
        "eio",
        "corrupt",
        "stall",
        "retries",
        "exhausted",
    ]);
    for scenario in SCENARIOS {
        let mut opts = env.measured_options();
        opts.sort_neighbors = true;
        let clean_data = env.build(&edges, scenario, opts);
        let roots = env.roots(&clean_data);
        let (clean, _) = run_all(&clean_data, &roots, None);
        let clean_teps = median_teps(&clean);
        drop(clean_data);

        for rate in [0.0, 0.001, 0.01, 0.05] {
            let mut opts = env.measured_options();
            opts.sort_neighbors = true;
            opts.fault_plan = Some(FaultPlan::parse(&spec_for(rate)).expect("plan"));
            let data = env.build(&edges, scenario, opts);
            let (runs, exhausted) = run_all(&data, &roots, Some(&clean));
            let teps = median_teps(&runs);
            let snap = data
                .device()
                .expect("NVM scenario")
                .faults()
                .map(|f| f.snapshot())
                .unwrap_or_default();
            table.row(&[
                scenario.label().into(),
                format!("{rate}"),
                mteps(teps),
                format!("{:+.1}", (teps / clean_teps - 1.0) * 100.0),
                snap.eio.to_string(),
                snap.corrupt.to_string(),
                snap.stall.to_string(),
                snap.retries.to_string(),
                exhausted.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nevery completed faulted run above was asserted bit-identical to its \
         fault-free tree; 'exhausted' runs failed typed, never silently"
    );

    // The zero-fault price of resilience: bare store vs sealed checksums +
    // per-fill verification + fault routing, nothing firing.
    println!();
    let mut table = Table::new(&["scenario", "bare s", "resilient s", "overhead %"]);
    for scenario in SCENARIOS {
        let mut bare_opts = env.measured_options();
        bare_opts.sort_neighbors = true;
        bare_opts.verify_pages = false;
        let bare = env.build(&edges, scenario, bare_opts);
        let roots = env.roots(&bare);
        let t0 = Instant::now();
        let _ = run_all(&bare, &roots, None);
        let bare_s = t0.elapsed().as_secs_f64();
        drop(bare);

        let mut res_opts = env.measured_options();
        res_opts.sort_neighbors = true;
        res_opts.fault_plan = Some(FaultPlan::parse("seed=7").expect("noop plan"));
        let resilient = env.build(&edges, scenario, res_opts);
        let t0 = Instant::now();
        let _ = run_all(&resilient, &roots, None);
        let res_s = t0.elapsed().as_secs_f64();

        table.row(&[
            scenario.label().into(),
            format!("{bare_s:.3}"),
            format!("{res_s:.3}"),
            format!("{:+.1}", (res_s / bare_s - 1.0) * 100.0),
        ]);
    }
    table.print();
    println!("\nacceptance: resilient overhead at zero fault rate stays within ~5%");
}
