//! Figure 11: per-level top-down slowdown versus average degree.
//!
//! Paper (α=1e4, β=10α): the top-down step on NVM is between 1.2× and
//! 5758× slower than DRAM-only on the PCIe flash and between 2.8× and
//! 123482× on the SSD, with the catastrophic ratios at average degree ≈ 1
//! (the last top-down levels: thousands of tiny reads, no locality). The
//! §VI-C text also reports first-TD levels averaging ≈11 183 edges/vertex
//! and last-TD levels ≈1.

use std::collections::BTreeMap;

use sembfs_bench::{measure, BenchEnv, Table};
use sembfs_core::{AlphaBetaPolicy, Direction, Scenario};

/// Per (root-index, level) top-down timing keyed for cross-scenario joins.
fn td_levels(
    env: &BenchEnv,
    edges: &sembfs_graph500::MemEdgeList,
    sc: Scenario,
    policy: &AlphaBetaPolicy,
) -> BTreeMap<(usize, u32), (f64, f64)> {
    let data = env.build(edges, sc, env.measured_options());
    let roots = env.roots(&data);
    let (runs, _) = measure(&data, &roots, policy);
    let mut out = BTreeMap::new();
    for (ri, run) in runs.iter().enumerate() {
        for l in &run.levels {
            if l.direction == Direction::TopDown && l.frontier_size > 0 {
                out.insert((ri, l.level), (l.avg_degree(), l.elapsed.as_secs_f64()));
            }
        }
    }
    out
}

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Figure 11: Top-Down Slowdown vs Average Degree (α=1e4, β=10α)",
        "SCALE 27 — flash 1.2×–5758×, SSD 2.8×–123483×; worst near degree 1",
    );
    let edges = env.generate();
    let policy = AlphaBetaPolicy::new(1e4, 1e5);

    let dram = td_levels(&env, &edges, Scenario::DramOnly, &policy);
    let flash = td_levels(&env, &edges, Scenario::DramPcieFlash, &policy);
    let ssd = td_levels(&env, &edges, Scenario::DramSsd, &policy);

    let mut table = Table::new(&[
        "root#",
        "level",
        "avg degree",
        "flash slowdown x",
        "ssd slowdown x",
    ]);
    let mut flash_ratios: Vec<f64> = Vec::new();
    let mut ssd_ratios: Vec<f64> = Vec::new();
    let mut first_deg: Vec<f64> = Vec::new();
    let mut late_deg: Vec<f64> = Vec::new();

    for (&(ri, level), &(deg, t_dram)) in &dram {
        let f = flash.get(&(ri, level));
        let s = ssd.get(&(ri, level));
        let fr = f.map(|&(_, t)| t / t_dram);
        let sr = s.map(|&(_, t)| t / t_dram);
        if let Some(r) = fr {
            flash_ratios.push(r);
        }
        if let Some(r) = sr {
            ssd_ratios.push(r);
        }
        if level == 1 {
            first_deg.push(deg);
        }
        // "Last several top-down approaches" (§VI-C): the levels after the
        // search has returned from bottom-up.
        if level >= 4 {
            late_deg.push(deg);
        }
        table.row(&[
            ri.to_string(),
            level.to_string(),
            format!("{deg:.1}"),
            fr.map(|r| format!("{r:.1}")).unwrap_or_else(|| "-".into()),
            sr.map(|r| format!("{r:.1}")).unwrap_or_else(|| "-".into()),
        ]);
    }
    table.print();

    let span = |v: &[f64]| {
        if v.is_empty() {
            "n/a".to_string()
        } else {
            let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = v.iter().cloned().fold(0.0f64, f64::max);
            format!("{min:.1}x – {max:.1}x")
        }
    };
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nslowdown span: flash {} | ssd {}",
        span(&flash_ratios),
        span(&ssd_ratios)
    );
    println!(
        "first-TD avg degree {:.1} (paper: 11182.9) | late-TD (level ≥ 4) avg degree {:.1} (paper: 1)",
        mean(&first_deg),
        mean(&late_deg)
    );
    println!("paper shape check: worst slowdowns at the low-degree (late) levels; ssd > flash");
}
