//! Extension experiment: the Green Graph500 argument (§I / §VIII).
//!
//! The paper ranked 4th in the Big Data category at 4.35 MTEPS/W by
//! processing a large graph on *one* NVM-equipped server. The energy
//! claim is architectural: to hold the same graph in DRAM you need either
//! double the DRAM on one node or several nodes — both costlier in watts
//! per TEPS once DRAM is the dominant consumer. This bin combines
//! measured (simulated) TEPS with a documented 2013-era power model:
//!
//! * one DRAM-only node, fully provisioned (Table I: 128 GB class);
//! * one DRAM+PCIeFlash node with half the DRAM (64 GB class);
//! * a 2-node DRAM cluster of half-DRAM nodes (same total capacity),
//!   simulated by `sembfs-dist` over InfiniBand.

use sembfs_bench::{measure, BenchEnv, Table};
use sembfs_core::{AlphaBetaPolicy, PowerModel, Scenario};
use sembfs_dist::{dist_hybrid_bfs, ClusterSpec, DistGraph, NetworkProfile};
use sembfs_graph500::select_roots;

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Extension: Green Graph500 MTEPS/W estimate",
        "paper: 4.35 MTEPS/W, rank 4 (Big Data), single fat NVM server (Nov 2013)",
    );
    let edges = env.generate();
    let power = PowerModel::era_2013();
    let policy = AlphaBetaPolicy::new(1e4, 1e5);

    // Provisioned capacities of the Table I machine classes.
    let (full_dram_gib, half_dram_gib) = (128.0, 64.0);

    let mut table = Table::new(&[
        "deployment",
        "median MTEPS",
        "modeled W",
        "MTEPS/W",
        "relative",
    ]);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // 1 × DRAM-only node.
    {
        let data = env.build(&edges, Scenario::DramOnly, env.measured_options());
        let roots = env.roots(&data);
        let (_, median) = measure(&data, &roots, &policy);
        rows.push((
            "1 x DRAM-only node (128 GiB class)".into(),
            median,
            power.node_watts(full_dram_gib, 0, 0),
        ));
    }
    // 1 × DRAM+PCIeFlash node.
    {
        let data = env.build(&edges, Scenario::DramPcieFlash, env.measured_options());
        let roots = env.roots(&data);
        let (_, median) = measure(&data, &roots, &policy);
        rows.push((
            "1 x DRAM+PCIeFlash node (64 GiB class)".into(),
            median,
            power.node_watts(half_dram_gib, 1, 0),
        ));
    }
    // 2 × half-DRAM nodes over commodity 10 GbE (same total capacity);
    // Green Graph500's Big Data rivals were commodity clusters.
    {
        let mut spec = ClusterSpec::dram(2);
        spec.network = NetworkProfile::ten_gbe();
        let graph = DistGraph::build(&edges, spec).expect("cluster");
        let roots = select_roots(graph.num_vertices(), env.num_roots, env.seed, |v| {
            graph.degree(v)
        });
        let mut teps: Vec<f64> = roots
            .iter()
            .map(|&r| dist_hybrid_bfs(&graph, r, &policy).expect("bfs").sim_teps())
            .collect();
        teps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        rows.push((
            "2 x DRAM nodes (64 GiB each, 10 GbE)".into(),
            teps[teps.len() / 2],
            2.0 * power.node_watts(half_dram_gib, 0, 0),
        ));
    }

    let base_mpw = power.mteps_per_watt(rows[0].1, rows[0].2);
    for (label, teps, watts) in rows {
        let mpw = power.mteps_per_watt(teps, watts);
        table.row(&[
            label,
            format!("{:.2}", teps / 1e6),
            format!("{watts:.0}"),
            format!("{mpw:.4}"),
            format!("{:.2}x", mpw / base_mpw),
        ]);
    }
    table.print();
    println!(
        "\npaper shape check: the NVM node trades ~20 % TEPS for ~2 % of the power \
         budget vs the full-DRAM node. NOTE on the cluster row: at reduced SCALE the \
         bottom-up allgather is tiny (n/8 = {} KiB per level vs 16+ MiB at the paper's \
         SCALE 27+), so scale-out looks cheap here; the paper's single-node MTEPS/W \
         win materializes in the communication-bound regime its graphs occupy.",
        (1u64 << env.scale) / 8 / 1024
    );
}
