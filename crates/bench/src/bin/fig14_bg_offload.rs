//! Figure 14: offloading the backward graph's cold tail (§VI-E).
//!
//! The paper keeps the first `k` edges of each vertex in DRAM and asks
//! how much of the backward graph could be offloaded and how often the
//! bottom-up probe would then hit NVM. Paper numbers (SCALE 27): with
//! k = 2 the DRAM-resident share is ~2.6 % of the backward graph but
//! 38.2 % of edge accesses go to NVM; with k = 32 the DRAM share is
//! ~15.1 % and only 0.7 % of accesses spill.
//!
//! The paper only *estimates* this (its bottom-up always runs from DRAM);
//! here the split layout actually executes, so the access ratio comes
//! from real probe counts.

use sembfs_bench::{measure, BenchEnv, Table};
use sembfs_core::{Direction, Scenario, ScenarioOptions};

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Figure 14: Backward-Graph Tail Offload (§VI-E)",
        "SCALE 27 — k=2: 2.6 % of BG in DRAM, 38.2 % accesses on NVM; \
         k=32: 15.1 % in DRAM, 0.7 % on NVM",
    );
    let edges = env.generate();

    let mut table = Table::new(&[
        "k (DRAM edges/vertex)",
        "BG in DRAM %",
        "BG offloaded %",
        "BU accesses on NVM %",
        "median MTEPS",
    ]);
    for k in [2u64, 4, 8, 16, 32] {
        let opts = ScenarioOptions {
            backward_offload_k: Some(k),
            ..env.accounting_options()
        };
        let data = env.build(&edges, Scenario::DramPcieFlash, opts);
        let roots = env.roots(&data);
        // The analysis figures run the paper's α=1e4, β=10α setting
        // (§VI-C); with β=1α the search never returns to top-down and the
        // late bottom-up levels rescan every unreachable vertex's tail,
        // drowning the statistic.
        let policy = sembfs_core::AlphaBetaPolicy::new(1e4, 1e5);
        let (runs, median) = measure(&data, &roots, &policy);

        let full_bg = data.csr().byte_size() as f64;
        let dram_share = 100.0 * data.backward_dram_bytes() as f64 / full_bg;

        let (mut dram_probes, mut nvm_probes) = (0u64, 0u64);
        for run in &runs {
            for l in &run.levels {
                if l.direction == Direction::BottomUp {
                    dram_probes += l.scanned_edges - l.nvm_edges;
                    nvm_probes += l.nvm_edges;
                }
            }
        }
        let access_ratio = 100.0 * nvm_probes as f64 / (dram_probes + nvm_probes).max(1) as f64;
        table.row(&[
            k.to_string(),
            format!("{dram_share:.1}"),
            format!("{:.1}", 100.0 - dram_share),
            format!("{access_ratio:.2}"),
            format!("{:.2}", median / 1e6),
        ]);
    }
    table.print();
    println!(
        "\npaper shape check: growing k raises the DRAM share and collapses the NVM \
         access ratio (the early-termination property of bottom-up)"
    );
}
