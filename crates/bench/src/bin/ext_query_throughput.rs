//! `ext_query_throughput` — concurrent point-query throughput over the
//! semi-external layouts (new exhibit; no direct paper analogue).
//!
//! One shared graph per scenario serves closed-loop clients issuing the
//! Zipf point-query mix (shortest paths, reachability, neighborhoods)
//! through a [`QueryEngine`] worker pool. The sweep axes are
//!
//! * scenario — DRAM+PCIe-Flash and DRAM+SSD (Table II layouts),
//! * page-cache budget — a fraction of the NVM-resident bytes, so the
//!   throttled device actually sees the miss traffic,
//! * workers — 1, 2, 4, 8 threads sharing the page cache and device.
//!
//! Per configuration it reports QPS, p50/p99 latency, the shared-cache
//! hit rate and device bytes per query. Because each query's search is
//! serial, worker-level concurrency is the only parallelism: extra
//! workers buy throughput exactly insofar as their device waits overlap,
//! which is the semi-external story in miniature. The result cache is
//! disabled so every answer is a fresh computation.
//!
//! Pass `--smoke` for a seconds-long CI subset.

use std::sync::Arc;
use std::time::Duration;

use sembfs_bench::{layout_bytes, mib, BenchEnv, Table};
use sembfs_core::{Scenario, ScenarioData, ScenarioOptions};
use sembfs_graph500::rng::Xoshiro256;
use sembfs_obs::MetricsRegistry;
use sembfs_query::{EngineConfig, QueryEngine, QueryMix, QueryStats, ZipfSampler};

/// Queries answered per (scenario, budget, workers) configuration.
const REQUESTS: usize = 192;
const REQUESTS_SMOKE: usize = 24;
/// Zipf exponent and support of the endpoint popularity distribution.
const ZIPF_THETA: f64 = 1.0;
const ZIPF_SUPPORT: usize = 4096;

struct Sweep {
    scenarios: Vec<Scenario>,
    /// Cache budgets as fractions of the NVM-resident bytes (1.0 first:
    /// that build also sizes the NVM set for the partial budgets).
    fractions: Vec<f64>,
    workers: Vec<usize>,
    requests: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let env = BenchEnv::from_env();
    env.print_header(
        "ext_query_throughput — point-query QPS vs workers and cache budget",
        "new exhibit: concurrent query serving over the Table II layouts",
    );
    let sweep = if smoke {
        Sweep {
            scenarios: vec![Scenario::DramPcieFlash],
            fractions: vec![1.0, 0.25],
            workers: vec![1, 2],
            requests: REQUESTS_SMOKE,
        }
    } else {
        Sweep {
            scenarios: vec![Scenario::DramPcieFlash, Scenario::DramSsd],
            fractions: vec![1.0, 0.5, 0.25],
            workers: vec![1, 2, 4, 8],
            requests: REQUESTS,
        }
    };

    eprintln!("generating SCALE {} edge list...", env.scale);
    let edges = env.generate();
    // Prometheus exposition of the last measured configuration, appended
    // after the table so scrapes and the human-readable rows agree.
    let mut prom_snapshot: Option<(String, String)> = None;
    let mut table = Table::new(&[
        "scenario",
        "cache MiB",
        "budget",
        "workers",
        "QPS",
        "p50 us",
        "p99 us",
        "hit rate",
        "NVM KiB/q",
    ]);

    for &scenario in &sweep.scenarios {
        // The full-budget build tells us how many bytes live on NVM; the
        // partial budgets are fractions of that figure.
        let (fg_analytic, _, _) = layout_bytes(env.scale, 16, env.topology.domains());
        let mut nvm_total = 2 * fg_analytic;
        for &frac in &sweep.fractions {
            let budget = ((nvm_total as f64 * frac) as u64).max(64 << 10);
            eprintln!(
                "building {} with {} MiB page cache ({}x NVM set)...",
                scenario.label(),
                mib(budget),
                frac
            );
            let opts = ScenarioOptions {
                sort_neighbors: true,
                page_cache_bytes: Some(budget),
                ..env.measured_options()
            };
            let data = Arc::new(ScenarioData::build(&edges, scenario, opts).expect("build"));
            nvm_total = data.nvm_bytes();
            let sampler = Arc::new(ZipfSampler::from_degrees(&data, ZIPF_THETA, ZIPF_SUPPORT));

            // One warm-up round so every worker count starts from the
            // same warm shared cache (the steady state under this budget).
            serve(&data, &sampler, 2, sweep.requests / 2, env.seed, None);

            for &workers in &sweep.workers {
                let registry = MetricsRegistry::new();
                let stats = serve(
                    &data,
                    &sampler,
                    workers,
                    sweep.requests,
                    env.seed,
                    Some(&registry),
                );
                prom_snapshot = Some((
                    format!(
                        "{} / {} MiB / {} workers",
                        scenario.label(),
                        mib(budget),
                        workers
                    ),
                    registry.prometheus_text(),
                ));
                let hit_rate = stats
                    .cache_hit_rate()
                    .map_or_else(|| "-".to_string(), |r| format!("{r:.4}"));
                let kib_per_q = format!("{:.1}", stats.nvm_bytes_per_query() / 1024.0);
                eprintln!(
                    "  {} workers: {:.0} QPS, p99 {} us, hit rate {}",
                    workers,
                    stats.qps(),
                    micros(stats.p99_latency),
                    hit_rate
                );
                table.row(&[
                    scenario.label().to_string(),
                    mib(budget),
                    format!("{frac}x"),
                    workers.to_string(),
                    format!("{:.0}", stats.qps()),
                    micros(stats.p50_latency),
                    micros(stats.p99_latency),
                    hit_rate,
                    kib_per_q,
                ]);
            }
        }
    }
    table.print();
    println!();
    println!(
        "note: per-query searches are serial, so QPS above 1 worker comes from \
         overlapping device waits; budgets below 1.0x force that device traffic."
    );
    if let Some((config, text)) = prom_snapshot {
        println!();
        println!("--- prometheus snapshot ({config}) ---");
        print!("{text}");
    }
}

/// Serve `requests` queries from twice as many closed-loop clients as
/// workers; returns the engine's aggregate stats for the window.
fn serve(
    data: &Arc<ScenarioData>,
    sampler: &Arc<ZipfSampler>,
    workers: usize,
    requests: usize,
    seed: u64,
    registry: Option<&MetricsRegistry>,
) -> QueryStats {
    let clients = 2 * workers;
    let engine = Arc::new(QueryEngine::new(
        data.clone(),
        EngineConfig {
            workers,
            // Ample queue: this measures service throughput, not admission.
            queue_capacity: 8 * clients,
            result_cache_entries: 0,
        },
    ));
    if let Some(registry) = registry {
        if let Some(dev) = data.device() {
            dev.register_metrics(registry);
        }
        if let Some(cache) = data.page_cache() {
            cache.register_metrics(registry);
        }
        engine.register_metrics(registry);
    }
    std::thread::scope(|scope| {
        for c in 0..clients {
            let engine = engine.clone();
            let sampler = sampler.clone();
            let per_client = requests / clients + usize::from(c < requests % clients);
            scope.spawn(move || {
                let mix = QueryMix::point_queries();
                let mut rng = Xoshiro256::seed_from(seed, c as u64 + 1);
                for _ in 0..per_client {
                    let query = mix.sample(&sampler, &mut rng);
                    engine.run(query).expect("query");
                }
            });
        }
    });
    engine.stats()
}

fn micros(d: Duration) -> String {
    format!("{:.0}", d.as_secs_f64() * 1e6)
}
