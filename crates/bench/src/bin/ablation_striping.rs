//! Ablation (DESIGN.md §7.5): striping the forward graph across multiple
//! simulated devices.
//!
//! The paper's future work asks for "performance studies on various NVM
//! devices"; its own testbed already isolates the edge list from the CSR
//! files. Here the forward graph's value files are striped RAID-0 style
//! over 1, 2, or 4 ioDrive2 models and the same pure-top-down scan (the
//! device-bound phase) is timed.

use std::sync::Arc;

use sembfs_bench::{BenchEnv, Table};
use sembfs_core::topdown::top_down_step;
use sembfs_core::tree::new_parent_array;
use sembfs_core::AtomicBitmap;
use sembfs_csr::{build_csr, BuildOptions, DramForwardGraph, ExtForwardGraph, NeighborCtx};
use sembfs_graph500::select_roots;
use sembfs_numa::RangePartition;
use sembfs_semext::ext_csr::ExtCsr;
use sembfs_semext::{
    ChunkedReader, DelayMode, Device, DeviceProfile, DramBackend, NvmStore, StripedStore, TempDir,
};

type Striped = StripedStore<NvmStore<DramBackend>>;

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Ablation: forward graph striped over multiple devices",
        "extension of §VI-D's device isolation (not measured in the paper)",
    );
    let edges = env.generate();
    let csr = build_csr(&edges, BuildOptions::default()).expect("csr");
    let part = RangePartition::new(csr.num_vertices(), env.topology.domains());
    let fg_dram = DramForwardGraph::from_csr(&csr, &part);
    let dir = TempDir::new("striping").expect("tempdir");
    let paths = fg_dram.write_to_dir(dir.path()).expect("offload");

    let root = select_roots(csr.num_vertices(), 1, env.seed, |v| csr.degree(v))[0];
    // One full frontier expansion from the hub level: dominated by device
    // reads, the phase striping accelerates.
    let frontier = {
        let parent = new_parent_array(csr.num_vertices(), root);
        let visited = AtomicBitmap::new(csr.num_vertices());
        visited.set(root);
        top_down_step(&fg_dram, &[root], &parent, &visited, 64, &NeighborCtx::dram)
            .expect("expand")
            .next
    };

    let mut table = Table::new(&["devices", "elapsed ms", "requests/device", "speedup x"]);
    let mut base_ms = None;
    for num_devices in [1usize, 2, 4] {
        let devices: Vec<Arc<Device>> = (0..num_devices)
            .map(|_| {
                Device::new(
                    DeviceProfile::iodrive2().scaled(env.device_scale),
                    DelayMode::Throttled,
                )
            })
            .collect();
        // Stripe each per-domain file image over the device set.
        let stripe = 4096u64;
        let mk_striped = |path: &std::path::Path| -> Striped {
            let bytes = std::fs::read(path).expect("read image");
            let images = sembfs_semext::striped::split_striped(&bytes, num_devices, 4096);
            StripedStore::new(
                images
                    .into_iter()
                    .zip(devices.iter().cycle())
                    .map(|(img, dev)| NvmStore::new(DramBackend::new(img), dev.clone()))
                    .collect(),
                stripe,
            )
        };
        let ext: ExtForwardGraph<Striped> = ExtForwardGraph::new(
            paths
                .iter()
                .map(|(ip, vp)| ExtCsr::new(mk_striped(ip), mk_striped(vp)).expect("csr"))
                .collect(),
            part.clone(),
        );

        let parent = new_parent_array(csr.num_vertices(), root);
        let visited = AtomicBitmap::new(csr.num_vertices());
        visited.set(root);
        for &v in &frontier {
            visited.set(v);
        }
        let reader = ChunkedReader::new(16 * 1024);
        let t0 = std::time::Instant::now();
        top_down_step(&ext, &frontier, &parent, &visited, 64, &move || {
            NeighborCtx::new(reader)
        })
        .expect("striped expand");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let base = *base_ms.get_or_insert(ms);
        let reqs: u64 = devices.iter().map(|d| d.snapshot().requests).sum();
        table.row(&[
            num_devices.to_string(),
            format!("{ms:.2}"),
            format!("{}", reqs / num_devices as u64),
            format!("{:.2}", base / ms),
        ]);
    }
    table.print();
    println!(
        "\nnote: on a single-core host request *service* is striped but the caller \
         still waits serially, so speedups reflect queueing relief only"
    );
}
