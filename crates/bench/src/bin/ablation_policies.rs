//! Ablation (DESIGN.md §7.3): the paper's α/β frontier-size rule versus
//! Beamer et al.'s edge-based heuristic, on every scenario.
//!
//! The paper's rule has two scenario-tuned knobs; Beamer's heuristic is
//! parameter-free (α=14, β=24 on edge counts). The interesting question
//! for the NVM scenarios: does the untuned heuristic leave the expensive
//! top-down phase early enough?

use sembfs_bench::{mteps, BenchEnv, Table};
use sembfs_core::{BeamerPolicy, BfsConfig, Direction, DirectionPolicy, Scenario};

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Ablation: α/β rule (paper) vs Beamer edge heuristic",
        "paper §III-C cites both families; evaluation uses the α/β rule",
    );
    let edges = env.generate();

    let mut table = Table::new(&[
        "scenario",
        "policy",
        "median MTEPS",
        "TD edges/run",
        "BU edges/run",
    ]);
    for sc in Scenario::ALL {
        let data = env.build(&edges, sc, env.measured_options());
        let roots = env.roots(&data);
        let total_edges = data.csr().num_values() / 2;

        let ab = sc.best_policy();
        let beamer = BeamerPolicy::with_defaults(total_edges);
        let policies: Vec<(&dyn DirectionPolicy, BfsConfig)> = vec![
            (&ab, BfsConfig::paper()),
            (
                &beamer,
                BfsConfig {
                    count_frontier_edges: true,
                    ..BfsConfig::paper()
                },
            ),
        ];
        for (policy, cfg) in policies {
            let runs: Vec<_> = roots
                .iter()
                .map(|&r| data.run(r, policy, &cfg).expect("bfs"))
                .collect();
            let mut teps: Vec<f64> = runs.iter().map(|r| r.teps()).collect();
            teps.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let td: u64 = runs
                .iter()
                .flat_map(|r| &r.levels)
                .filter(|l| l.direction == Direction::TopDown)
                .map(|l| l.scanned_edges)
                .sum();
            let bu: u64 = runs
                .iter()
                .flat_map(|r| &r.levels)
                .filter(|l| l.direction == Direction::BottomUp)
                .map(|l| l.scanned_edges)
                .sum();
            table.row(&[
                sc.label().to_string(),
                policy.label(),
                mteps(teps[teps.len() / 2]),
                format!("{}", td / runs.len() as u64),
                format!("{}", bu / runs.len() as u64),
            ]);
        }
    }
    table.print();
}
