//! Table II: graph data-structure sizes.
//!
//! Paper (SCALE 27, edge factor 16): forward graph 40.1 GB, backward
//! graph 33.1 GB, BFS status data 15.1 GB, total 88.3 GB; the NVM
//! scenarios keep 48.2 GB (backward + status) in DRAM and offload the
//! 40.1 GB forward graph. This binary prints the same rows for the local
//! SCALE, plus the DRAM/NVM split per scenario.

use sembfs_bench::{mib, BenchEnv, Table};
use sembfs_core::Scenario;

fn main() {
    let env = BenchEnv::from_env();
    env.print_header(
        "Table II: Graph Size",
        "SCALE 27 ef 16 — FG 40.1 GB, BG 33.1 GB, status 15.1 GB, total 88.3 GB",
    );

    let edges = env.generate();
    let mut table = Table::new(&["structure", "MiB", "share %"]);

    let data = env.build(&edges, Scenario::DramOnly, env.accounting_options());
    let fg = data.forward_bytes();
    let bg = data.backward_dram_bytes();
    let st = data.status_bytes();
    let total = fg + bg + st;
    for (name, bytes) in [
        ("Forward Graph", fg),
        ("Backward Graph", bg),
        ("BFS Status Data", st),
        ("Total", total),
    ] {
        table.row(&[
            name.to_string(),
            mib(bytes),
            format!("{:.1}", 100.0 * bytes as f64 / total as f64),
        ]);
    }
    table.print();

    println!("\nDRAM/NVM placement per scenario:");
    let mut placement = Table::new(&["scenario", "DRAM MiB", "NVM MiB", "DRAM reduction %"]);
    for sc in Scenario::ALL {
        let d = env.build(&edges, sc, env.accounting_options());
        let dram = d.backward_dram_bytes()
            + d.status_bytes()
            + if d.nvm_bytes() == 0 {
                d.forward_bytes()
            } else {
                0
            };
        placement.row(&[
            sc.label().to_string(),
            mib(dram),
            mib(d.nvm_bytes()),
            format!("{:.1}", 100.0 * (1.0 - dram as f64 / total as f64)),
        ]);
    }
    placement.print();
    println!("\npaper shape check: forward > backward > status; offload cuts DRAM roughly in half");
}
