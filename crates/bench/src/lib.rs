//! Shared harness for the figure/table regeneration binaries.
//!
//! Every exhibit of the paper's evaluation (§VI) has a binary in
//! `src/bin/` that prints the same rows/series the paper reports, scaled
//! to a local problem size. All binaries read their knobs from environment
//! variables so they run argument-less under CI:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `SEMBFS_SCALE` | main problem SCALE (Fig. 7/8/10–14; paper: 27) | 18 |
//! | `SEMBFS_SMALL_SCALE` | the "fits in DRAM" SCALE (Fig. 9; paper: 26) | 15 |
//! | `SEMBFS_ROOTS` | BFS roots per measurement (paper: 64) | 8 |
//! | `SEMBFS_SEED` | generator seed | 1 |
//! | `SEMBFS_DEVICE_SCALE` | slow-down factor on the device models | 1.0 |
//! | `SEMBFS_DOMAINS` | NUMA domains ℓ (paper: 4) | 4 |
//! | `SEMBFS_TRACE_OUT` | write a JSONL trace of the measurement here | off |

use std::sync::Arc;

use sembfs_core::{BfsConfig, BfsRun, DirectionPolicy, Scenario, ScenarioData, ScenarioOptions};
use sembfs_graph500::{select_roots, KroneckerParams, MemEdgeList, VertexId};
use sembfs_numa::Topology;
use sembfs_semext::{DelayMode, Device};

/// Knobs shared by every exhibit binary.
#[derive(Debug, Clone)]
pub struct BenchEnv {
    /// Problem SCALE for the main experiments.
    pub scale: u32,
    /// The reduced SCALE whose working set "fits in DRAM" (Fig. 9).
    pub small_scale: u32,
    /// BFS roots per configuration.
    pub num_roots: usize,
    /// Generator seed.
    pub seed: u64,
    /// Device slow-down factor (1.0 = calibrated paper-era profiles).
    pub device_scale: f64,
    /// NUMA topology model.
    pub topology: Topology,
}

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl BenchEnv {
    /// Read the environment (see module docs for the variable table).
    pub fn from_env() -> Self {
        let domains: usize = env_parse("SEMBFS_DOMAINS", 4);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            scale: env_parse("SEMBFS_SCALE", 18),
            small_scale: env_parse("SEMBFS_SMALL_SCALE", 15),
            num_roots: env_parse("SEMBFS_ROOTS", 8),
            seed: env_parse("SEMBFS_SEED", 1),
            device_scale: env_parse("SEMBFS_DEVICE_SCALE", 1.0),
            topology: Topology::new(domains.max(1), (threads / domains.max(1)).max(1)),
        }
    }

    /// Print the Table I-style header every binary leads with.
    pub fn print_header(&self, exhibit: &str, paper_setup: &str) {
        println!("=== {exhibit} ===");
        println!("paper setup : {paper_setup}");
        println!(
            "this run    : SCALE {} (small {}), {} roots, seed {}, {}x{} topology, \
             device scale {}",
            self.scale,
            self.small_scale,
            self.num_roots,
            self.seed,
            self.topology.domains(),
            self.topology.cores_per_domain(),
            self.device_scale
        );
        println!();
    }

    /// Generate the main Kronecker instance.
    pub fn generate(&self) -> MemEdgeList {
        KroneckerParams::graph500(self.scale, self.seed).generate()
    }

    /// Generate the reduced ("fits in DRAM") instance.
    pub fn generate_small(&self) -> MemEdgeList {
        KroneckerParams::graph500(self.small_scale, self.seed).generate()
    }

    /// Scenario options with throttled (wall-clock-accurate) devices.
    pub fn measured_options(&self) -> ScenarioOptions {
        ScenarioOptions {
            topology: self.topology,
            delay_mode: DelayMode::Throttled,
            device_scale: self.device_scale,
            ..Default::default()
        }
    }

    /// Scenario options with accounting-only devices (fast, for counting
    /// experiments where wall time is not the quantity).
    pub fn accounting_options(&self) -> ScenarioOptions {
        ScenarioOptions {
            topology: self.topology,
            delay_mode: DelayMode::Accounting,
            device_scale: self.device_scale,
            ..Default::default()
        }
    }

    /// Build a scenario over `edges`.
    pub fn build(
        &self,
        edges: &MemEdgeList,
        scenario: Scenario,
        opts: ScenarioOptions,
    ) -> ScenarioData {
        ScenarioData::build(edges, scenario, opts).expect("scenario build")
    }

    /// Select the benchmark roots for a built scenario.
    pub fn roots(&self, data: &ScenarioData) -> Vec<VertexId> {
        select_roots(data.csr().num_vertices(), self.num_roots, self.seed, |v| {
            data.degree(v)
        })
    }
}

/// Run `policy` from every root; returns the runs and the median TEPS.
pub fn measure(
    data: &ScenarioData,
    roots: &[VertexId],
    policy: &dyn DirectionPolicy,
) -> (Vec<BfsRun>, f64) {
    let runs: Vec<BfsRun> = roots
        .iter()
        .map(|&r| data.run(r, policy, &BfsConfig::paper()).expect("bfs"))
        .collect();
    let mut teps: Vec<f64> = runs.iter().map(BfsRun::teps).collect();
    teps.sort_by(|a, b| a.partial_cmp(b).expect("finite TEPS"));
    let median = teps[teps.len() / 2];
    (runs, median)
}

/// Reset the scenario device's statistics (between measurement windows).
pub fn reset_device(data: &ScenarioData) {
    if let Some(dev) = data.device() {
        dev.reset_stats();
    }
}

/// The scenario device, when present.
pub fn device_of(data: &ScenarioData) -> Option<&Arc<Device>> {
    data.device()
}

/// The one-flag trace opt-in shared by the exhibit binaries: when
/// `SEMBFS_TRACE_OUT` is set, align the tracer's epoch with the scenario
/// device (so BFS spans and device spans share a timeline) and start
/// recording. Returns whether tracing was turned on.
pub fn trace_begin(data: &ScenarioData) -> bool {
    use std::sync::atomic::{AtomicBool, Ordering};
    static EPOCH_ALIGNED: AtomicBool = AtomicBool::new(false);
    if std::env::var_os("SEMBFS_TRACE_OUT").is_none() {
        return false;
    }
    // Align only once: device spans translate onto whatever epoch the
    // tracer holds, but moving the epoch mid-trace would shear the
    // timeline of the samples already recorded.
    if !EPOCH_ALIGNED.swap(true, Ordering::Relaxed) {
        data.align_trace_epoch();
    }
    sembfs_obs::global().set_enabled(true);
    true
}

/// Counterpart of [`trace_begin`]: drain the recorded samples to the
/// `SEMBFS_TRACE_OUT` JSONL file and stop recording. No-op when the
/// variable is unset.
pub fn trace_finish() {
    let Some(path) = std::env::var_os("SEMBFS_TRACE_OUT") else {
        return;
    };
    let tracer = sembfs_obs::global();
    tracer.set_enabled(false);
    let samples = tracer.drain();
    let path = std::path::PathBuf::from(path);
    match sembfs_obs::write_jsonl(&path, &samples) {
        Ok(()) => eprintln!(
            "trace: {} samples -> {} ({} dropped)",
            samples.len(),
            path.display(),
            tracer.dropped()
        ),
        Err(e) => eprintln!("trace: writing {} failed: {e}", path.display()),
    }
}

/// A simple aligned-column table printer for the exhibit rows.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Analytic sizes of one scenario's data structures at a given SCALE
/// (edge factor 16): `(forward, backward, status)` bytes. Matches the
/// built structures exactly (value arrays hold `2M` `u32`s; the forward
/// index is replicated per domain).
pub fn layout_bytes(scale: u32, edge_factor: u64, domains: usize) -> (u64, u64, u64) {
    let n = 1u64 << scale;
    let m = n * edge_factor;
    let values = 2 * m * 4;
    let fg = values + (n + 1) * 8 * domains as u64;
    let bg = values + (n + 1) * 8;
    let status = sembfs_core::status_data_bytes(n, domains);
    (fg, bg, status)
}

/// The DRAM budget of the paper's NVM machines, scaled to this run: the
/// paper's 64 GB box holds 64/88.3 of its SCALE 27 working set; we grant
/// the same *fraction* of the main-scale working set. Spare DRAM beyond
/// the resident structures becomes the modeled page cache.
pub fn paper_dram_budget(env: &BenchEnv) -> u64 {
    let (fg, bg, st) = layout_bytes(env.scale, 16, env.topology.domains());
    let total = fg + bg + st;
    (total as f64 * (64.0 / 88.3)) as u64
}

/// Page-cache bytes available at `scale` under the fixed main-scale DRAM
/// budget (zero when the resident set already exceeds the budget).
pub fn spare_dram_for(env: &BenchEnv, scale: u32) -> u64 {
    let (_, bg, st) = layout_bytes(scale, 16, env.topology.domains());
    paper_dram_budget(env).saturating_sub(bg + st)
}

/// Format bytes as MiB with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

/// Format a TEPS value in MTEPS with two decimals.
pub fn mteps(teps: f64) -> String {
    format!("{:.2}", teps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        let env = BenchEnv::from_env();
        assert!(env.scale >= 10);
        assert!(env.num_roots >= 1);
        assert!(env.topology.domains() >= 1);
    }

    #[test]
    fn table_rejects_arity_mismatch() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(&["only-one".into()]);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mib(1 << 20), "1.0");
        assert_eq!(mteps(2_500_000.0), "2.50");
    }

    #[test]
    fn measure_end_to_end_small() {
        let env = BenchEnv {
            scale: 10,
            small_scale: 8,
            num_roots: 2,
            seed: 3,
            device_scale: 1.0,
            topology: Topology::new(2, 1),
        };
        let edges = env.generate();
        let data = env.build(&edges, Scenario::DramOnly, env.accounting_options());
        let roots = env.roots(&data);
        let (runs, median) = measure(&data, &roots, &Scenario::DramOnly.best_policy());
        assert_eq!(runs.len(), 2);
        assert!(median > 0.0);
    }
}
