//! Microbenchmarks of the page-cache model and the batched (libaio-style)
//! submission path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sembfs_core::{hybrid_bfs, BfsConfig, Direction, FixedPolicy};
use sembfs_csr::{build_csr, BackwardGraph, BuildOptions, DramForwardGraph, ExtForwardGraph};
use sembfs_graph500::{select_roots, KroneckerParams};
use sembfs_numa::RangePartition;
use sembfs_semext::cache::PAGE_BYTES;
use sembfs_semext::ext_csr::ExtCsr;
use sembfs_semext::{
    BatchRead, CachedStore, ChunkedReader, DelayMode, Device, DeviceProfile, DramBackend,
    FileBackend, PageCache, ReadAt, ShardedCachedStore, ShardedPageCache, TempDir,
};

fn bench_page_cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_cache_access");
    // Hot: working set fits; every access is a hit.
    let hot = PageCache::new(1024 * PAGE_BYTES);
    let f = hot.register_file();
    for p in 0..1024 {
        hot.access(f, p);
    }
    let mut i = 0u64;
    g.bench_function("hit", |b| {
        b.iter(|| {
            i = (i + 7) % 1024;
            hot.access(f, i)
        })
    });
    // Cold: working set 4× capacity; mostly misses with CLOCK eviction.
    let cold = PageCache::new(256 * PAGE_BYTES);
    let f2 = cold.register_file();
    let mut j = 0u64;
    g.bench_function("miss_evict", |b| {
        b.iter(|| {
            j = (j + 13) % 1024;
            cold.access(f2, j)
        })
    });
    g.finish();
}

fn bench_cached_store_read(c: &mut Criterion) {
    let data = vec![3u8; 4 << 20];
    let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
    let cache = PageCache::new(8 << 20);
    let store = CachedStore::new(DramBackend::new(data), dev, cache);
    store.warm();
    let mut g = c.benchmark_group("cached_store");
    g.throughput(Throughput::Bytes(4096));
    let mut buf = vec![0u8; 4096];
    let mut off = 0u64;
    g.bench_function("warm_4k_read", |b| {
        b.iter(|| {
            off = (off + 8192) % ((4 << 20) - 4096);
            store.read_at(off, &mut buf).unwrap();
        })
    });
    g.finish();
}

fn bench_batch_vs_loop(c: &mut Criterion) {
    let data = vec![9u8; 1 << 20];
    let mut g = c.benchmark_group("submission_model");
    for batch in [8usize, 64] {
        let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        let store = sembfs_semext::NvmStore::new(DramBackend::new(data.clone()), dev);
        g.bench_with_input(BenchmarkId::new("loop_read_at", batch), &batch, |b, &n| {
            let mut buf = vec![0u8; 64];
            b.iter(|| {
                for i in 0..n {
                    store.read_at((i * 4096) as u64, &mut buf).unwrap();
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("read_batch_at", batch), &batch, |b, &n| {
            let mut bufs = vec![vec![0u8; 64]; n];
            b.iter(|| {
                let mut reqs: Vec<BatchRead<'_>> = bufs
                    .iter_mut()
                    .enumerate()
                    .map(|(i, buf)| BatchRead {
                        offset: (i * 4096) as u64,
                        buf: &mut buf[..],
                    })
                    .collect();
                store.read_batch_at(&mut reqs).unwrap();
            })
        });
    }
    g.finish();
}

/// `threads` workers each issuing `reads` pseudo-random page-aligned
/// 4 KiB reads.
fn hammer<S: ReadAt + Sync>(store: &S, threads: u64, reads: usize, span: u64) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut x = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut buf = vec![0u8; PAGE_BYTES as usize];
                for _ in 0..reads {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    store
                        .read_at((x % span) & !(PAGE_BYTES - 1), &mut buf)
                        .unwrap();
                }
            });
        }
    });
}

/// Seed cache (charge-only: every "hit" still reads the backing file)
/// vs sharded cache (data-holding slots: hits are served from DRAM)
/// under concurrent 4 KiB reads of a warm file-backed store — the Fig. 9
/// spare-DRAM regime where the working set fits the cache.
fn bench_concurrent_cache_frontends(c: &mut Criterion) {
    const THREADS: u64 = 4;
    const READS: usize = 256;
    let bytes = 32u64 << 20;
    let span = bytes - PAGE_BYTES;
    let tmp = TempDir::new("cache-frontends").unwrap();
    let path = tmp.path().join("warm.dat");
    std::fs::write(&path, vec![5u8; bytes as usize]).unwrap();

    let mut g = c.benchmark_group("concurrent_cache_frontends");
    g.throughput(Throughput::Bytes(THREADS * READS as u64 * PAGE_BYTES));

    let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
    let seed = CachedStore::new(
        FileBackend::open(&path).unwrap(),
        dev,
        PageCache::new(bytes),
    );
    seed.warm();
    g.bench_function("seed_single_lock", |b| {
        b.iter(|| hammer(&seed, THREADS, READS, span))
    });

    let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
    // A little slack over the file size: pages hash unevenly over the
    // stripes, and an exactly-sized sharded cache would evict at the hot
    // stripes.
    let cache = ShardedPageCache::new(bytes + (bytes >> 2));
    let sharded = ShardedCachedStore::new(FileBackend::open(&path).unwrap(), dev, cache);
    sharded.warm().unwrap();
    g.bench_function("sharded_striped", |b| {
        b.iter(|| hammer(&sharded, THREADS, READS, span))
    });
    g.finish();
}

/// The acceptance bench: a multi-threaded external-forward BFS over a
/// SCALE ≥ 20 Kronecker graph on a simulated device, seed cache vs
/// sharded cache fronting the same on-disk forward CSR. The budget
/// covers the offloaded bytes (the paper's SCALE 26/Fig. 9 spare-DRAM
/// regime): the seed cache still issues a `pread(2)` for every neighbor
/// chunk — it only waives the device *charge* — while the sharded
/// cache's data-holding slots serve the whole traversal from DRAM.
fn bench_ext_bfs_cache_frontend(c: &mut Criterion) {
    let scale: u32 = std::env::var("BENCH_BFS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    std::env::set_var("RAYON_NUM_THREADS", "4");

    let edges = KroneckerParams::graph500(scale, 5).generate();
    let csr = build_csr(&edges, BuildOptions::default()).unwrap();
    let partition = RangePartition::new(csr.num_vertices(), 4);
    let tmp = TempDir::new("cache-bench").unwrap();
    let paths = DramForwardGraph::from_csr(&csr, &partition)
        .write_to_dir(tmp.path())
        .unwrap();
    let backward = BackwardGraph::new(csr.clone(), partition.clone());
    let root = select_roots(csr.num_vertices(), 1, 2, |v| csr.degree(v))[0];

    let file_bytes: u64 = paths
        .iter()
        .map(|(ip, vp)| std::fs::metadata(ip).unwrap().len() + std::fs::metadata(vp).unwrap().len())
        .sum();
    // Slack over the file size: pages hash unevenly over the stripes.
    let budget = file_bytes + (file_bytes >> 2);
    let policy = FixedPolicy(Direction::TopDown);

    let mut g = c.benchmark_group("ext_bfs_cache_frontend");
    g.sample_size(10);
    g.throughput(Throughput::Elements(csr.num_values() / 2));

    {
        let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        let cache = PageCache::new(budget);
        let domains = paths
            .iter()
            .map(|(ip, vp)| {
                let index = CachedStore::new(FileBackend::open(ip)?, dev.clone(), cache.clone());
                let values = CachedStore::new(FileBackend::open(vp)?, dev.clone(), cache.clone());
                index.warm();
                values.warm();
                ExtCsr::new(index, values)
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        let forward = ExtForwardGraph::new(domains, partition.clone());
        let cfg = BfsConfig::paper()
            .with_aggregation()
            .with_reader(ChunkedReader::for_device(&dev));
        g.bench_function("seed_cache", |b| {
            b.iter(|| hybrid_bfs(&forward, &backward, root, &policy, &cfg).unwrap())
        });
    }

    {
        let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        let cache = ShardedPageCache::new(budget);
        cache.set_readahead_pages(4);
        let domains = paths
            .iter()
            .map(|(ip, vp)| {
                let index =
                    ShardedCachedStore::new(FileBackend::open(ip)?, dev.clone(), cache.clone());
                let values =
                    ShardedCachedStore::new(FileBackend::open(vp)?, dev.clone(), cache.clone());
                index.warm()?;
                values.warm()?;
                ExtCsr::new(index, values)
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        let forward = ExtForwardGraph::new(domains, partition.clone());
        let cfg = BfsConfig::paper()
            .with_aggregation()
            .with_reader(ChunkedReader::for_device(&dev))
            .with_cache_monitor(cache.clone());
        g.bench_function("sharded_cache", |b| {
            b.iter(|| hybrid_bfs(&forward, &backward, root, &policy, &cfg).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_page_cache_access,
    bench_cached_store_read,
    bench_batch_vs_loop,
    bench_concurrent_cache_frontends,
    bench_ext_bfs_cache_frontend
);
criterion_main!(benches);
