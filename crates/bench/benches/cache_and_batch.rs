//! Microbenchmarks of the page-cache model and the batched (libaio-style)
//! submission path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sembfs_semext::cache::PAGE_BYTES;
use sembfs_semext::{
    BatchRead, CachedStore, DelayMode, Device, DeviceProfile, DramBackend, PageCache, ReadAt,
};

fn bench_page_cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_cache_access");
    // Hot: working set fits; every access is a hit.
    let hot = PageCache::new(1024 * PAGE_BYTES);
    let f = hot.register_file();
    for p in 0..1024 {
        hot.access(f, p);
    }
    let mut i = 0u64;
    g.bench_function("hit", |b| {
        b.iter(|| {
            i = (i + 7) % 1024;
            hot.access(f, i)
        })
    });
    // Cold: working set 4× capacity; mostly misses with CLOCK eviction.
    let cold = PageCache::new(256 * PAGE_BYTES);
    let f2 = cold.register_file();
    let mut j = 0u64;
    g.bench_function("miss_evict", |b| {
        b.iter(|| {
            j = (j + 13) % 1024;
            cold.access(f2, j)
        })
    });
    g.finish();
}

fn bench_cached_store_read(c: &mut Criterion) {
    let data = vec![3u8; 4 << 20];
    let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
    let cache = PageCache::new(8 << 20);
    let store = CachedStore::new(DramBackend::new(data), dev, cache);
    store.warm();
    let mut g = c.benchmark_group("cached_store");
    g.throughput(Throughput::Bytes(4096));
    let mut buf = vec![0u8; 4096];
    let mut off = 0u64;
    g.bench_function("warm_4k_read", |b| {
        b.iter(|| {
            off = (off + 8192) % ((4 << 20) - 4096);
            store.read_at(off, &mut buf).unwrap();
        })
    });
    g.finish();
}

fn bench_batch_vs_loop(c: &mut Criterion) {
    let data = vec![9u8; 1 << 20];
    let mut g = c.benchmark_group("submission_model");
    for batch in [8usize, 64] {
        let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        let store = sembfs_semext::NvmStore::new(DramBackend::new(data.clone()), dev);
        g.bench_with_input(BenchmarkId::new("loop_read_at", batch), &batch, |b, &n| {
            let mut buf = vec![0u8; 64];
            b.iter(|| {
                for i in 0..n {
                    store.read_at((i * 4096) as u64, &mut buf).unwrap();
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("read_batch_at", batch), &batch, |b, &n| {
            let mut bufs = vec![vec![0u8; 64]; n];
            b.iter(|| {
                let mut reqs: Vec<BatchRead<'_>> = bufs
                    .iter_mut()
                    .enumerate()
                    .map(|(i, buf)| BatchRead {
                        offset: (i * 4096) as u64,
                        buf: &mut buf[..],
                    })
                    .collect();
                store.read_batch_at(&mut reqs).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_page_cache_access,
    bench_cached_store_read,
    bench_batch_vs_loop
);
criterion_main!(benches);
