//! Microbenchmarks of the Graph500 substrate: Kronecker edge generation
//! (Step 1) and CSR / partitioned-graph construction (Step 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sembfs_csr::{build_csr, BuildOptions, DramForwardGraph};
use sembfs_graph500::KroneckerParams;
use sembfs_numa::RangePartition;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("kronecker_generate");
    for scale in [12u32, 14, 16] {
        let params = KroneckerParams::graph500(scale, 7);
        g.throughput(Throughput::Elements(params.num_edges()));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &params, |b, p| {
            b.iter(|| p.generate())
        });
    }
    g.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("csr_build");
    for scale in [12u32, 14] {
        let params = KroneckerParams::graph500(scale, 7);
        let edges = params.generate();
        g.throughput(Throughput::Elements(params.num_edges()));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &edges, |b, el| {
            b.iter(|| build_csr(el, BuildOptions::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_forward_partitioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("forward_graph_from_csr");
    let params = KroneckerParams::graph500(14, 7);
    let csr = build_csr(&params.generate(), BuildOptions::default()).unwrap();
    for domains in [1usize, 2, 4, 8] {
        let part = RangePartition::new(csr.num_vertices(), domains);
        g.bench_with_input(BenchmarkId::from_parameter(domains), &part, |b, p| {
            b.iter(|| DramForwardGraph::from_csr(&csr, p))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_csr_build,
    bench_forward_partitioning
);
criterion_main!(benches);
