//! Microbenchmarks of the semi-external storage layer: device-model
//! overhead, chunked span reads, and external CSR neighbor lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sembfs_semext::ext_csr::{write_csr_files, ExtCsr};
use sembfs_semext::{
    ChunkedReader, DelayMode, Device, DeviceProfile, DramBackend, FileBackend, NvmStore, ReadAt,
    TempDir,
};

fn bench_device_accounting_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("device_model");
    for (name, profile) in [
        ("dram", DeviceProfile::dram()),
        ("iodrive2", DeviceProfile::iodrive2()),
        ("ssd320", DeviceProfile::intel_ssd_320()),
    ] {
        let dev = Device::new(profile, DelayMode::Accounting);
        g.bench_with_input(BenchmarkId::new("read_request_4k", name), &dev, |b, dev| {
            b.iter(|| dev.read_request(4096))
        });
    }
    g.finish();
}

fn bench_chunked_reads(c: &mut Criterion) {
    let data: Vec<u8> = (0..1 << 22).map(|i| (i % 251) as u8).collect();
    let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
    let store = NvmStore::new(DramBackend::new(data), dev);
    let mut g = c.benchmark_group("chunked_read_64k_span");
    g.throughput(Throughput::Bytes(64 * 1024));
    for (name, reader) in [
        ("unmerged_4k", ChunkedReader::unmerged()),
        ("merged_16k", ChunkedReader::new(16 * 1024)),
        ("merged_64k", ChunkedReader::new(64 * 1024)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &reader, |b, r| {
            let mut buf = vec![0u8; 64 * 1024];
            b.iter(|| r.read_span(&store, 12_345, &mut buf).unwrap())
        });
    }
    g.finish();
}

fn bench_ext_csr_neighbors(c: &mut Criterion) {
    // A CSR with mixed degrees: vertex i has degree (i * 37) % 200.
    let n = 10_000usize;
    let mut index = vec![0u64];
    let mut values = Vec::new();
    for v in 0..n {
        let deg = (v * 37) % 200;
        for j in 0..deg {
            values.push(((v + j) % n) as u32);
        }
        index.push(values.len() as u64);
    }
    let dir = TempDir::new("bench-ext-csr").unwrap();
    let ip = dir.path().join("i");
    let vp = dir.path().join("v");
    write_csr_files(&ip, &vp, &index, &values).unwrap();

    let mut g = c.benchmark_group("ext_csr_read_neighbors");
    for (name, dram_index) in [("nvm_index", false), ("dram_index", true)] {
        let csr = {
            let c = ExtCsr::new(
                FileBackend::open(&ip).unwrap(),
                FileBackend::open(&vp).unwrap(),
            )
            .unwrap();
            if dram_index {
                c.with_dram_index().unwrap()
            } else {
                c
            }
        };
        g.bench_function(name, |b| {
            let reader = ChunkedReader::unmerged();
            let (mut out, mut scratch) = (Vec::new(), Vec::new());
            let mut v = 0u64;
            b.iter(|| {
                v = (v + 997) % n as u64;
                csr.read_neighbors(v, &reader, &mut out, &mut scratch)
                    .unwrap();
                out.len()
            })
        });
    }
    g.finish();
}

fn bench_backend_read_at(c: &mut Criterion) {
    let bytes: Vec<u8> = (0..1 << 22).map(|i| (i % 255) as u8).collect();
    let dir = TempDir::new("bench-backend").unwrap();
    let path = dir.path().join("blob");
    std::fs::write(&path, &bytes).unwrap();

    let mut g = c.benchmark_group("backend_read_4k");
    g.throughput(Throughput::Bytes(4096));
    let dram = DramBackend::new(bytes);
    let file = FileBackend::open(&path).unwrap();
    let mmap = sembfs_semext::MmapBackend::open(&path).unwrap();
    let mut buf = vec![0u8; 4096];
    let mut off = 0u64;
    let mut step = |b: &mut criterion::Bencher, r: &dyn ReadAt| {
        b.iter(|| {
            off = (off + 8192) % ((1 << 22) - 4096);
            r.read_at(off, &mut buf).unwrap();
        })
    };
    g.bench_function("dram", |b| step(b, &dram));
    g.bench_function("pread", |b| step(b, &file));
    g.bench_function("mmap", |b| step(b, &mmap));
    g.finish();
}

criterion_group!(
    benches,
    bench_device_accounting_overhead,
    bench_chunked_reads,
    bench_ext_csr_neighbors,
    bench_backend_read_at
);
criterion_main!(benches);
