//! Cost of the observability layer on the BFS hot path.
//!
//! Three configurations of the same hybrid BFS (flash scenario, accounting
//! device so the number measures code speed, not simulated I/O delay):
//!
//! * `tracer_off` — the global tracer disabled, as every non-traced run
//!   sees it: each instrumentation site is one relaxed `AtomicBool` load.
//! * `tracer_off_warm` — disabled again after a traced run, with the
//!   thread-local ring buffers already allocated (same branch, proves the
//!   buffers themselves are free when idle).
//! * `tracer_on` — recording, drained between iterations; the price of
//!   actually collecting spans.
//!
//! The acceptance bar is `tracer_off` within 2% of what the uninstrumented
//! tree measured; compare the Melem/s columns.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sembfs_core::{BfsConfig, Scenario, ScenarioData, ScenarioOptions};
use sembfs_graph500::{select_roots, KroneckerParams};
use sembfs_numa::Topology;
use sembfs_semext::DelayMode;

fn scale() -> u32 {
    std::env::var("SEMBFS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(14)
}

fn setup() -> (ScenarioData, u32, u64) {
    let scale = scale();
    let params = KroneckerParams::graph500(scale, 5);
    let edges = params.generate();
    let opts = ScenarioOptions {
        topology: Topology::new(4, 1),
        delay_mode: DelayMode::Accounting,
        ..Default::default()
    };
    let data = ScenarioData::build(&edges, Scenario::DramPcieFlash, opts).unwrap();
    let root = select_roots(data.csr().num_vertices(), 1, 2, |v| data.degree(v))[0];
    (data, root, params.num_edges())
}

fn bench_overhead(c: &mut Criterion) {
    let (data, root, m) = setup();
    let policy = Scenario::DramPcieFlash.best_policy();
    let cfg = BfsConfig::paper();
    let tracer = sembfs_obs::global();

    let mut g = c.benchmark_group("obs_overhead");
    g.throughput(Throughput::Elements(m));
    g.sample_size(20);

    tracer.set_enabled(false);
    g.bench_function("tracer_off", |b| {
        b.iter(|| data.run(root, &policy, &cfg).unwrap())
    });

    g.bench_function("tracer_on", |b| {
        data.align_trace_epoch();
        tracer.set_enabled(true);
        b.iter(|| {
            let run = data.run(root, &policy, &cfg).unwrap();
            // Drain inside the loop so the rings never saturate; draining is
            // part of what an always-on collector would pay.
            criterion::black_box(tracer.drain());
            run
        });
        tracer.set_enabled(false);
        tracer.drain();
    });

    // Rings are allocated now; the disabled path must still be one branch.
    g.bench_function("tracer_off_warm", |b| {
        b.iter(|| data.run(root, &policy, &cfg).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
