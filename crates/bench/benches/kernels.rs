//! Microbenchmarks of the two step kernels and the frontier conversions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sembfs_core::bitmap::AtomicBitmap;
use sembfs_core::bottomup::bottom_up_step;
use sembfs_core::frontier::{bitmap_to_queue, queue_to_bitmap};
use sembfs_core::topdown::top_down_step;
use sembfs_core::tree::new_parent_array;
use sembfs_csr::{build_csr, BackwardGraph, BuildOptions, DramForwardGraph, NeighborCtx};
use sembfs_graph500::KroneckerParams;
use sembfs_numa::RangePartition;

const SCALE: u32 = 14;

fn setup() -> (DramForwardGraph, BackwardGraph, u64) {
    let params = KroneckerParams::graph500(SCALE, 3);
    let csr = build_csr(&params.generate(), BuildOptions::default()).unwrap();
    let n = csr.num_vertices();
    let part = RangePartition::new(n, 4);
    let fg = DramForwardGraph::from_csr(&csr, &part);
    let bg = BackwardGraph::new(csr, part);
    (fg, bg, n)
}

/// A mid-size frontier: everything the root reaches in one level.
fn level1_frontier(fg: &DramForwardGraph, n: u64) -> Vec<u32> {
    use sembfs_csr::DomainNeighbors;
    let root = (0..n as u32)
        .max_by_key(|&v| {
            let mut ctx = NeighborCtx::dram();
            (0..fg.num_domains())
                .map(|k| fg.domain_degree(k, v, &mut ctx).unwrap())
                .sum::<u64>()
        })
        .unwrap();
    let parent = new_parent_array(n, root);
    let visited = AtomicBitmap::new(n);
    visited.set(root);
    top_down_step(fg, &[root], &parent, &visited, 64, &NeighborCtx::dram)
        .unwrap()
        .next
}

fn bench_top_down(c: &mut Criterion) {
    let (fg, _, n) = setup();
    let frontier = level1_frontier(&fg, n);
    let mut g = c.benchmark_group("top_down_step");
    g.throughput(Throughput::Elements(frontier.len() as u64));
    for batch in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let parent = new_parent_array(n, frontier[0]);
                let visited = AtomicBitmap::new(n);
                for &v in &frontier {
                    visited.set(v);
                }
                top_down_step(&fg, &frontier, &parent, &visited, batch, &NeighborCtx::dram).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_bottom_up(c: &mut Criterion) {
    let (fg, bg, n) = setup();
    let frontier_q = level1_frontier(&fg, n);
    let mut g = c.benchmark_group("bottom_up_step");
    g.throughput(Throughput::Elements(n));
    g.bench_function("level2", |b| {
        b.iter(|| {
            let parent = new_parent_array(n, frontier_q[0]);
            let visited = AtomicBitmap::new(n);
            let frontier = AtomicBitmap::new(n);
            for &v in &frontier_q {
                visited.set(v);
                frontier.set(v);
            }
            let next = AtomicBitmap::new(n);
            bottom_up_step(&bg, &frontier, &next, &parent, &visited, &NeighborCtx::dram).unwrap()
        })
    });
    g.finish();
}

fn bench_frontier_conversion(c: &mut Criterion) {
    let n = 1u64 << 20;
    let queue: Vec<u32> = (0..n as u32).step_by(7).collect();
    let mut g = c.benchmark_group("frontier_conversion");
    g.throughput(Throughput::Elements(queue.len() as u64));
    g.bench_function("queue_to_bitmap", |b| {
        b.iter(|| {
            let bm = AtomicBitmap::new(n);
            queue_to_bitmap(&queue, &bm);
            bm
        })
    });
    let bm = AtomicBitmap::new(n);
    queue_to_bitmap(&queue, &bm);
    g.bench_function("bitmap_to_queue", |b| b.iter(|| bitmap_to_queue(&bm)));
    g.finish();
}

criterion_group!(
    benches,
    bench_top_down,
    bench_bottom_up,
    bench_frontier_conversion
);
criterion_main!(benches);
