//! End-to-end benchmarks of the simulated multi-node searcher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sembfs_core::AlphaBetaPolicy;
use sembfs_dist::{dist_hybrid_bfs, ClusterSpec, DistGraph, NetworkProfile};
use sembfs_graph500::{select_roots, KroneckerParams};

const SCALE: u32 = 13;

fn bench_node_counts(c: &mut Criterion) {
    let params = KroneckerParams::graph500(SCALE, 5);
    let edges = params.generate();
    let policy = AlphaBetaPolicy::new(1e4, 1e5);
    let mut g = c.benchmark_group("dist_bfs_nodes");
    g.throughput(Throughput::Elements(params.num_edges()));
    g.sample_size(15);
    for nodes in [1usize, 2, 4, 8] {
        let graph = DistGraph::build(&edges, ClusterSpec::dram(nodes)).unwrap();
        let root = select_roots(graph.num_vertices(), 1, 2, |v| graph.degree(v))[0];
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &graph, |b, graph| {
            b.iter(|| dist_hybrid_bfs(graph, root, &policy).unwrap())
        });
    }
    g.finish();
}

fn bench_network_profiles(c: &mut Criterion) {
    let params = KroneckerParams::graph500(SCALE, 5);
    let edges = params.generate();
    let policy = AlphaBetaPolicy::new(1e4, 1e5);
    let mut g = c.benchmark_group("dist_bfs_network");
    g.sample_size(15);
    for (name, net) in [
        ("ideal", NetworkProfile::ideal()),
        ("infiniband", NetworkProfile::infiniband_qdr()),
        ("ten_gbe", NetworkProfile::ten_gbe()),
    ] {
        let mut spec = ClusterSpec::dram(4);
        spec.network = net;
        let graph = DistGraph::build(&edges, spec).unwrap();
        let root = select_roots(graph.num_vertices(), 1, 2, |v| graph.degree(v))[0];
        g.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, graph| {
            b.iter(|| dist_hybrid_bfs(graph, root, &policy).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_node_counts, bench_network_profiles);
criterion_main!(benches);
