//! End-to-end BFS benchmarks: the hybrid searcher per scenario and
//! policy, against the fixed-direction and serial-reference baselines.
//! (Device models run in accounting mode here — wall-clock device effects
//! are the figure binaries' job; these benches track the *code*'s speed.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sembfs_core::{
    reference_bfs, AlphaBetaPolicy, BeamerPolicy, BfsConfig, Direction, FixedPolicy, Scenario,
    ScenarioData, ScenarioOptions,
};
use sembfs_graph500::{select_roots, KroneckerParams};
use sembfs_numa::Topology;

const SCALE: u32 = 14;

fn setup(scenario: Scenario) -> (ScenarioData, u32) {
    let edges = KroneckerParams::graph500(SCALE, 5).generate();
    let opts = ScenarioOptions {
        topology: Topology::new(4, 1),
        ..Default::default()
    };
    let data = ScenarioData::build(&edges, scenario, opts).unwrap();
    let root = select_roots(data.csr().num_vertices(), 1, 2, |v| data.degree(v))[0];
    (data, root)
}

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("hybrid_bfs_scenario");
    let m = KroneckerParams::graph500(SCALE, 5).num_edges();
    g.throughput(Throughput::Elements(m));
    g.sample_size(20);
    for sc in Scenario::ALL {
        let (data, root) = setup(sc);
        let policy = sc.best_policy();
        g.bench_function(BenchmarkId::from_parameter(sc.label()), |b| {
            b.iter(|| data.run(root, &policy, &BfsConfig::paper()).unwrap())
        });
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("bfs_policy_dram_only");
    g.sample_size(20);
    let (data, root) = setup(Scenario::DramOnly);
    let total_edges = data.csr().num_values() / 2;

    let ab = AlphaBetaPolicy::dram_only_best();
    g.bench_function("alpha_beta_paper", |b| {
        b.iter(|| data.run(root, &ab, &BfsConfig::paper()).unwrap())
    });
    let beamer = BeamerPolicy::with_defaults(total_edges);
    let cfg = BfsConfig {
        count_frontier_edges: true,
        ..BfsConfig::paper()
    };
    g.bench_function("beamer_heuristic", |b| {
        b.iter(|| data.run(root, &beamer, &cfg).unwrap())
    });
    for (name, dir) in [
        ("top_down_only", Direction::TopDown),
        ("bottom_up_only", Direction::BottomUp),
    ] {
        let p = FixedPolicy(dir);
        g.bench_function(name, |b| {
            b.iter(|| data.run(root, &p, &BfsConfig::paper()).unwrap())
        });
    }
    g.bench_function("serial_reference", |b| {
        b.iter(|| reference_bfs(data.csr(), root))
    });
    g.finish();
}

fn bench_split_backward(c: &mut Criterion) {
    let mut g = c.benchmark_group("bfs_split_backward");
    g.sample_size(15);
    for k in [2u64, 32] {
        let edges = KroneckerParams::graph500(SCALE, 5).generate();
        let opts = ScenarioOptions {
            topology: Topology::new(4, 1),
            backward_offload_k: Some(k),
            ..Default::default()
        };
        let data = ScenarioData::build(&edges, Scenario::DramPcieFlash, opts).unwrap();
        let root = select_roots(data.csr().num_vertices(), 1, 2, |v| data.degree(v))[0];
        let policy = Scenario::DramPcieFlash.best_policy();
        g.bench_function(BenchmarkId::from_parameter(format!("k{k}")), |b| {
            b.iter(|| data.run(root, &policy, &BfsConfig::paper()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scenarios,
    bench_policies,
    bench_split_backward
);
criterion_main!(benches);
