//! The NUMA topology model.

/// A model of the machine's NUMA layout: `domains` NUMA nodes with
/// `cores_per_domain` cores each.
///
/// The paper's testbed is a 4-socket AMD Opteron 6172 (12 cores per
/// socket), i.e. `Topology::new(4, 12)`. [`Topology::detect`] builds a
/// 4-domain model sized to the local machine's available parallelism so
/// that benches keep the paper's *structure* while using the cores that
/// actually exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    domains: usize,
    cores_per_domain: usize,
}

impl Topology {
    /// Create a topology with `domains` NUMA domains of `cores_per_domain`
    /// cores each.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(domains: usize, cores_per_domain: usize) -> Self {
        assert!(domains > 0, "topology needs at least one domain");
        assert!(
            cores_per_domain > 0,
            "topology needs at least one core per domain"
        );
        Self {
            domains,
            cores_per_domain,
        }
    }

    /// The paper's testbed: 4 sockets × 12 cores (AMD Opteron 6172).
    pub fn paper_testbed() -> Self {
        Self::new(4, 12)
    }

    /// The default model: 4 domains (the paper's socket count — the
    /// topology is a *model*, so it keeps the paper's partitioning
    /// structure even on hosts with fewer cores), with cores spread
    /// across them.
    pub fn detect() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(4, (threads / 4).max(1))
    }

    /// A single-domain topology (no NUMA effects); useful for tests.
    pub fn flat() -> Self {
        Self::new(1, 1)
    }

    /// Number of NUMA domains `ℓ`.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// Cores per domain `c`.
    pub fn cores_per_domain(&self) -> usize {
        self.cores_per_domain
    }

    /// Total core count `ℓ·c`.
    pub fn total_cores(&self) -> usize {
        self.domains * self.cores_per_domain
    }

    /// Iterate over domain indices `0..ℓ`.
    pub fn domain_ids(&self) -> std::ops::Range<usize> {
        0..self.domains
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::detect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_table1() {
        let t = Topology::paper_testbed();
        assert_eq!(t.domains(), 4);
        assert_eq!(t.cores_per_domain(), 12);
        assert_eq!(t.total_cores(), 48);
    }

    #[test]
    fn detect_has_at_least_one_core() {
        let t = Topology::detect();
        assert!(t.domains() >= 1);
        assert!(t.total_cores() >= 1);
        assert_eq!(t.domains(), 4);
    }

    #[test]
    fn domain_ids_covers_all() {
        let t = Topology::new(3, 2);
        assert_eq!(t.domain_ids().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn zero_domains_panics() {
        Topology::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "core per domain")]
    fn zero_cores_panics() {
        Topology::new(1, 0);
    }

    #[test]
    fn flat_is_single_domain() {
        assert_eq!(Topology::flat().domains(), 1);
    }
}
