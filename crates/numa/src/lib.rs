//! Simulated NUMA topology model for `sembfs`.
//!
//! The paper's NETAL implementation partitions both graphs and BFS status
//! data across the NUMA nodes of a 4-socket Opteron machine (§IV-A, §V-B2).
//! We cannot portably pin memory pages to physical NUMA nodes, but the
//! *algorithmic* consequences of NUMA in NETAL are (a) how vertices and
//! adjacency data are partitioned and (b) which domain performs which part
//! of the traversal. Both are reproduced here as an explicit topology
//! *model*: a [`Topology`] describes `ℓ` domains with `c` cores each, and a
//! [`RangePartition`] assigns vertex `v_i` to domain `N_k` for
//! `i ∈ [k·n/ℓ, (k+1)·n/ℓ)` exactly as in §V-B2 of the paper.
//!
//! Per-domain access counters ([`DomainCounters`]) feed the locality
//! analysis used by the evaluation figures.

pub mod counters;
pub mod partition;
pub mod topology;

pub use counters::{DomainCounters, LocalDomainCounters};
pub use partition::RangePartition;
pub use topology::Topology;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every vertex belongs to exactly one domain and domains cover [0, n).
        #[test]
        fn partition_is_exact_cover(n in 1u64..100_000, domains in 1usize..16) {
            let part = RangePartition::new(n, domains);
            let mut total = 0u64;
            for k in 0..domains {
                let r = part.range(k);
                total += r.end - r.start;
                for v in [r.start, (r.start + r.end) / 2, r.end.saturating_sub(1)] {
                    if v >= r.start && v < r.end {
                        prop_assert_eq!(part.domain_of(v), k);
                    }
                }
            }
            prop_assert_eq!(total, n);
        }

        /// Ranges are contiguous and ordered.
        #[test]
        fn partition_ranges_contiguous(n in 1u64..1_000_000, domains in 1usize..32) {
            let part = RangePartition::new(n, domains);
            let mut prev_end = 0u64;
            for k in 0..domains {
                let r = part.range(k);
                prop_assert_eq!(r.start, prev_end);
                prev_end = r.end;
            }
            prop_assert_eq!(prev_end, n);
        }

        /// `domain_of` agrees with a linear scan over the ranges.
        #[test]
        fn domain_of_matches_ranges(n in 1u64..50_000, domains in 1usize..12, v in 0u64..50_000) {
            prop_assume!(v < n);
            let part = RangePartition::new(n, domains);
            let k = part.domain_of(v);
            let r = part.range(k);
            prop_assert!(v >= r.start && v < r.end);
        }
    }
}
