//! Range-based vertex partitioning across NUMA domains (§V-B2).

use std::ops::Range;

/// Assigns vertex `v_i` to domain `N_k` for `i ∈ [k·⌈n/ℓ⌉, (k+1)·⌈n/ℓ⌉)`,
/// the block partition used by NETAL (§V-B2 of the paper).
///
/// The last domain absorbs the remainder when `ℓ ∤ n`. Domains may be empty
/// when `n < ℓ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartition {
    n: u64,
    domains: usize,
    /// Vertices per domain (ceiling), so `domain_of` is a single division.
    block: u64,
}

impl RangePartition {
    /// Partition `n` vertices across `domains` domains.
    ///
    /// # Panics
    /// Panics if `domains == 0`.
    pub fn new(n: u64, domains: usize) -> Self {
        assert!(domains > 0, "partition needs at least one domain");
        let block = if n == 0 {
            1
        } else {
            n.div_ceil(domains as u64)
        };
        Self {
            n,
            domains,
            block: block.max(1),
        }
    }

    /// Total number of vertices `n`.
    pub fn num_vertices(&self) -> u64 {
        self.n
    }

    /// Number of domains `ℓ`.
    pub fn num_domains(&self) -> usize {
        self.domains
    }

    /// The half-open vertex range owned by domain `k`.
    ///
    /// # Panics
    /// Panics if `k >= ℓ`.
    pub fn range(&self, k: usize) -> Range<u64> {
        assert!(k < self.domains, "domain index {k} out of range");
        let start = (self.block * k as u64).min(self.n);
        let end = (self.block * (k as u64 + 1)).min(self.n);
        start..end
    }

    /// The domain that owns vertex `v`.
    ///
    /// # Panics
    /// Panics if `v >= n`.
    pub fn domain_of(&self, v: u64) -> usize {
        assert!(v < self.n, "vertex {v} out of range (n = {})", self.n);
        ((v / self.block) as usize).min(self.domains - 1)
    }

    /// Number of vertices owned by domain `k`.
    pub fn len(&self, k: usize) -> u64 {
        let r = self.range(k);
        r.end - r.start
    }

    /// True when domain `k` owns no vertices.
    pub fn is_empty(&self, k: usize) -> bool {
        self.len(k) == 0
    }

    /// Iterate over `(domain, range)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Range<u64>)> + '_ {
        (0..self.domains).map(move |k| (k, self.range(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let p = RangePartition::new(8, 4);
        assert_eq!(p.range(0), 0..2);
        assert_eq!(p.range(1), 2..4);
        assert_eq!(p.range(2), 4..6);
        assert_eq!(p.range(3), 6..8);
    }

    #[test]
    fn uneven_split_last_domain_short() {
        let p = RangePartition::new(10, 4);
        // block = ceil(10/4) = 3 → 3,3,3,1
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(3), 9..10);
        assert_eq!(p.len(3), 1);
    }

    #[test]
    fn fewer_vertices_than_domains() {
        let p = RangePartition::new(2, 4);
        assert_eq!(p.len(0), 1);
        assert_eq!(p.len(1), 1);
        assert!(p.is_empty(2));
        assert!(p.is_empty(3));
        assert_eq!(p.domain_of(0), 0);
        assert_eq!(p.domain_of(1), 1);
    }

    #[test]
    fn empty_graph() {
        let p = RangePartition::new(0, 3);
        for k in 0..3 {
            assert!(p.is_empty(k));
        }
    }

    #[test]
    fn domain_of_boundaries() {
        let p = RangePartition::new(100, 4);
        assert_eq!(p.domain_of(0), 0);
        assert_eq!(p.domain_of(24), 0);
        assert_eq!(p.domain_of(25), 1);
        assert_eq!(p.domain_of(99), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn domain_of_out_of_range_panics() {
        RangePartition::new(10, 2).domain_of(10);
    }

    #[test]
    fn iter_yields_all_domains() {
        let p = RangePartition::new(7, 3);
        let v: Vec<_> = p.iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].1, 0..3);
        assert_eq!(v[2].1, 6..7);
    }

    #[test]
    fn single_domain_owns_everything() {
        let p = RangePartition::new(1000, 1);
        assert_eq!(p.range(0), 0..1000);
        assert_eq!(p.domain_of(999), 0);
    }
}
