//! Per-domain access counters for locality analysis.

use std::sync::atomic::{AtomicU64, Ordering};

/// A set of relaxed atomic counters, one per NUMA domain, used to account
/// local vs remote accesses during traversal. Feeds the locality analysis
/// in the evaluation (who touched which domain's data).
#[derive(Debug)]
pub struct DomainCounters {
    local: Vec<AtomicU64>,
    remote: Vec<AtomicU64>,
}

impl DomainCounters {
    /// Counters for `domains` NUMA domains, all zero.
    pub fn new(domains: usize) -> Self {
        let mk = || (0..domains).map(|_| AtomicU64::new(0)).collect();
        Self {
            local: mk(),
            remote: mk(),
        }
    }

    /// Record `n` accesses performed by `from` on data owned by `to`.
    /// Counts as local when `from == to`, remote otherwise (charged to the
    /// *owning* domain).
    #[inline]
    pub fn record(&self, from: usize, to: usize, n: u64) {
        if from == to {
            self.local[to].fetch_add(n, Ordering::Relaxed);
        } else {
            self.remote[to].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Local accesses observed on domain `k`'s data.
    pub fn local(&self, k: usize) -> u64 {
        self.local[k].load(Ordering::Relaxed)
    }

    /// Remote accesses observed on domain `k`'s data.
    pub fn remote(&self, k: usize) -> u64 {
        self.remote[k].load(Ordering::Relaxed)
    }

    /// Sum of local accesses across domains.
    pub fn total_local(&self) -> u64 {
        self.local.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of remote accesses across domains.
    pub fn total_remote(&self) -> u64 {
        self.remote.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Fraction of accesses that were local, in `[0, 1]`; `1.0` when no
    /// accesses were recorded (vacuously perfectly local).
    pub fn locality(&self) -> f64 {
        let l = self.total_local();
        let r = self.total_remote();
        if l + r == 0 {
            1.0
        } else {
            l as f64 / (l + r) as f64
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        for c in self.local.iter().chain(self.remote.iter()) {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Number of domains tracked.
    pub fn domains(&self) -> usize {
        self.local.len()
    }

    /// Fold a thread-local accumulator into the shared counters — one
    /// `fetch_add` per non-zero cell instead of one per access, which keeps
    /// concurrent charging race-free and cheap (see
    /// [`LocalDomainCounters`]).
    pub fn merge(&self, local: &LocalDomainCounters) {
        assert_eq!(
            self.domains(),
            local.domains(),
            "domain count mismatch in counter merge"
        );
        for (k, &n) in local.local.iter().enumerate() {
            if n != 0 {
                self.local[k].fetch_add(n, Ordering::Relaxed);
            }
        }
        for (k, &n) in local.remote.iter().enumerate() {
            if n != 0 {
                self.remote[k].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Register these counters as a pull-style metrics source: per-domain
    /// local/remote access counters plus the aggregate locality gauge.
    pub fn register_metrics(self: &std::sync::Arc<Self>, registry: &sembfs_obs::MetricsRegistry) {
        use sembfs_obs::Metric;
        let counters = std::sync::Arc::clone(self);
        registry.register_source(Box::new(move || {
            let mut out = Vec::new();
            for k in 0..counters.domains() {
                let domain = k.to_string();
                out.push(Metric::counter(
                    "sembfs_numa_local_accesses_total",
                    &[("domain", &domain)],
                    counters.local(k) as f64,
                ));
                out.push(Metric::counter(
                    "sembfs_numa_remote_accesses_total",
                    &[("domain", &domain)],
                    counters.remote(k) as f64,
                ));
            }
            out.push(Metric::gauge(
                "sembfs_numa_locality",
                &[],
                counters.locality(),
            ));
            out
        }));
    }
}

/// Plain (non-atomic) per-thread accumulator with the same `record`
/// semantics as [`DomainCounters`].
///
/// Worker threads in the parallel BFS kernels charge into one of these and
/// fold it into the shared atomic counters once per step via
/// [`DomainCounters::merge`] — accumulate-then-merge instead of contended
/// per-access `fetch_add`s on the hot path.
#[derive(Debug, Clone)]
pub struct LocalDomainCounters {
    local: Vec<u64>,
    remote: Vec<u64>,
}

impl LocalDomainCounters {
    /// Zeroed accumulator for `domains` NUMA domains.
    pub fn new(domains: usize) -> Self {
        Self {
            local: vec![0; domains],
            remote: vec![0; domains],
        }
    }

    /// Record `n` accesses performed by `from` on data owned by `to`
    /// (charged to the owning domain, same as [`DomainCounters::record`]).
    #[inline]
    pub fn record(&mut self, from: usize, to: usize, n: u64) {
        if from == to {
            self.local[to] += n;
        } else {
            self.remote[to] += n;
        }
    }

    /// Number of domains tracked.
    pub fn domains(&self) -> usize {
        self.local.len()
    }

    /// Sum of every cell (local + remote across domains).
    pub fn total(&self) -> u64 {
        self.local.iter().chain(self.remote.iter()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_and_remote_separated() {
        let c = DomainCounters::new(2);
        c.record(0, 0, 5);
        c.record(1, 0, 3);
        assert_eq!(c.local(0), 5);
        assert_eq!(c.remote(0), 3);
        assert_eq!(c.local(1), 0);
    }

    #[test]
    fn locality_fraction() {
        let c = DomainCounters::new(2);
        c.record(0, 0, 3);
        c.record(0, 1, 1);
        assert!((c.locality() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_are_fully_local() {
        let c = DomainCounters::new(4);
        assert_eq!(c.locality(), 1.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = DomainCounters::new(3);
        c.record(2, 1, 10);
        c.reset();
        assert_eq!(c.total_local() + c.total_remote(), 0);
    }

    #[test]
    fn registered_metrics_follow_the_counters() {
        let c = std::sync::Arc::new(DomainCounters::new(2));
        let registry = sembfs_obs::MetricsRegistry::new();
        c.register_metrics(&registry);
        c.record(0, 0, 3);
        c.record(0, 1, 1);
        let text = registry.prometheus_text();
        assert!(
            text.contains("sembfs_numa_local_accesses_total{domain=\"0\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("sembfs_numa_remote_accesses_total{domain=\"1\"} 1"),
            "{text}"
        );
        assert!(text.contains("sembfs_numa_locality 0.75"), "{text}");
    }

    #[test]
    fn local_accumulators_merge_like_direct_recording() {
        let direct = DomainCounters::new(3);
        let merged = DomainCounters::new(3);
        let mut acc = LocalDomainCounters::new(3);
        for (from, to, n) in [(0, 0, 5), (1, 0, 3), (2, 2, 7), (0, 1, 2)] {
            direct.record(from, to, n);
            acc.record(from, to, n);
        }
        assert_eq!(acc.total(), 17);
        merged.merge(&acc);
        for k in 0..3 {
            assert_eq!(merged.local(k), direct.local(k), "local {k}");
            assert_eq!(merged.remote(k), direct.remote(k), "remote {k}");
        }
    }

    #[test]
    fn concurrent_merges_sum_exactly() {
        let shared = std::sync::Arc::new(DomainCounters::new(2));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut acc = LocalDomainCounters::new(2);
                for i in 0..1000u64 {
                    acc.record(t % 2, (t + i as usize) % 2, 1);
                }
                shared.merge(&acc);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.total_local() + shared.total_remote(), 8000);
    }

    #[test]
    fn concurrent_updates_are_summed() {
        let c = std::sync::Arc::new(DomainCounters::new(1));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.record(0, 0, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.local(0), 8000);
    }
}
