//! CSR graph structures for `sembfs` — Graph500 Step 2.
//!
//! NETAL (§IV-A) holds **two** CSR graphs: the *forward graph* used by the
//! top-down phase and the *backward graph* used by the bottom-up phase,
//! both partitioned across NUMA domains (§V-B2, Fig. 6):
//!
//! * the **forward graph** partitions each vertex's *neighbors* by the
//!   domain that owns them — domain `k` holds, for every source vertex, the
//!   sub-list of neighbors living in `k`'s vertex range, so a thread bound
//!   to `k` only ever writes vertices it owns;
//! * the **backward graph** partitions the *source vertices* by range —
//!   domain `k` holds the full adjacency of its own vertices, so the
//!   bottom-up scan is entirely domain-local.
//!
//! Both exist in DRAM forms and (for the forward graph and the backward
//! graph's cold tail) semi-external forms backed by `sembfs-semext`.

pub mod backward;
pub mod builder;
pub mod degree;
pub mod forward;
pub mod graph;
pub mod neighbors;
pub mod relabel;

pub use backward::{BackwardGraph, SplitBackwardGraph};
pub use builder::{build_csr, BuildOptions};
pub use degree::DegreeStats;
pub use forward::{DramForwardGraph, ExtForwardGraph};
pub use graph::CsrGraph;
pub use neighbors::{DomainNeighbors, NeighborCtx};
pub use relabel::Relabeling;

pub use sembfs_graph500::VertexId;
