//! Degree-ordered vertex relabeling (ablation).
//!
//! The Graph500 scrambler deliberately destroys any correlation between
//! vertex ID and degree. Real systems sometimes *re-introduce* structure:
//! relabeling vertices in descending-degree order packs the hubs into a
//! dense prefix, which (a) concentrates the bottom-up frontier bitmap hits
//! in a few cache lines and (b) moves the high-degree CSR rows — the ones
//! the early top-down levels read — next to each other on the device.
//! DESIGN.md §7.4 calls this out as an ablation against the paper's
//! unordered layout.

use rayon::prelude::*;

use crate::graph::CsrGraph;
use crate::VertexId;

/// A vertex renaming: `new_id = perm[old_id]`, with its inverse.
///
/// ```
/// use sembfs_csr::{CsrGraph, Relabeling};
///
/// // A hub (vertex 2, degree 3) buried among leaves.
/// let csr = CsrGraph::from_adjacency(&[vec![2], vec![2], vec![0, 1, 3], vec![2]]);
/// let relabeling = Relabeling::by_degree_desc(&csr);
/// assert_eq!(relabeling.new_id(2), 0); // hub first
/// let reordered = relabeling.apply_to_csr(&csr);
/// assert_eq!(reordered.degree(0), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    /// old → new.
    perm: Vec<VertexId>,
    /// new → old.
    inv: Vec<VertexId>,
}

impl Relabeling {
    /// Identity relabeling over `n` vertices.
    pub fn identity(n: u64) -> Self {
        let perm: Vec<VertexId> = (0..n as VertexId).collect();
        Self {
            inv: perm.clone(),
            perm,
        }
    }

    /// Descending-degree relabeling of `csr` (ties by old ID, so the
    /// result is deterministic).
    pub fn by_degree_desc(csr: &CsrGraph) -> Self {
        let n = csr.num_vertices() as usize;
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.par_sort_unstable_by_key(|&v| (std::cmp::Reverse(csr.degree(v)), v));
        // order[new] = old  ⇒  inv = order, perm = inverse of order.
        let mut perm = vec![0 as VertexId; n];
        for (new_id, &old_id) in order.iter().enumerate() {
            perm[old_id as usize] = new_id as VertexId;
        }
        Self { perm, inv: order }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Map an old vertex ID to its new ID.
    #[inline]
    pub fn new_id(&self, old: VertexId) -> VertexId {
        self.perm[old as usize]
    }

    /// Map a new vertex ID back to its old ID.
    #[inline]
    pub fn old_id(&self, new: VertexId) -> VertexId {
        self.inv[new as usize]
    }

    /// Rewrite a CSR under this relabeling: row `new` holds the renamed
    /// neighbors of `old_id(new)`.
    pub fn apply_to_csr(&self, csr: &CsrGraph) -> CsrGraph {
        let n = csr.num_vertices() as usize;
        assert_eq!(n, self.len());
        let mut index = Vec::with_capacity(n + 1);
        index.push(0u64);
        let mut acc = 0u64;
        for new in 0..n {
            acc += csr.degree(self.inv[new]);
            index.push(acc);
        }
        let mut values = vec![0 as VertexId; acc as usize];
        // Disjoint per-row output slices filled in parallel.
        let mut slices: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        let mut rest = values.as_mut_slice();
        for new in 0..n {
            let len = (index[new + 1] - index[new]) as usize;
            let (head, tail) = rest.split_at_mut(len);
            slices.push(head);
            rest = tail;
        }
        slices.par_iter_mut().enumerate().for_each(|(new, out)| {
            let old = self.inv[new];
            for (slot, &w) in out.iter_mut().zip(csr.neighbors(old)) {
                *slot = self.perm[w as usize];
            }
        });
        CsrGraph::new(index, values)
    }

    /// Translate a parent array produced on the relabeled graph back to
    /// the original IDs (so the original edge list validates it).
    pub fn parents_to_original(&self, parent_new: &[VertexId]) -> Vec<VertexId> {
        let mut out = vec![sembfs_graph500::INVALID_PARENT; parent_new.len()];
        for (new, &p) in parent_new.iter().enumerate() {
            if p != sembfs_graph500::INVALID_PARENT {
                out[self.inv[new] as usize] = self.inv[p as usize];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_csr, BuildOptions};
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_graph500::KroneckerParams;

    fn sample() -> CsrGraph {
        // Degrees: v0=1, v1=3, v2=2, v3=0, v4=2.
        build_csr(
            &MemEdgeList::new(5, vec![(0, 1), (1, 2), (1, 4), (2, 4)]),
            BuildOptions {
                sort_neighbors: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn identity_is_identity() {
        let csr = sample();
        let r = Relabeling::identity(5);
        assert_eq!(r.apply_to_csr(&csr), csr);
        assert_eq!(r.new_id(3), 3);
    }

    #[test]
    fn degree_order_puts_hub_first() {
        let csr = sample();
        let r = Relabeling::by_degree_desc(&csr);
        // v1 (degree 3) becomes vertex 0.
        assert_eq!(r.new_id(1), 0);
        assert_eq!(r.old_id(0), 1);
        // Isolated v3 goes last.
        assert_eq!(r.new_id(3), 4);
        let relabeled = r.apply_to_csr(&csr);
        // New degrees are non-increasing.
        let degs: Vec<u64> = (0..5).map(|v| relabeled.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degs {degs:?}");
    }

    #[test]
    fn relabeled_graph_is_isomorphic() {
        let csr = build_csr(
            &KroneckerParams::graph500(9, 77).generate(),
            BuildOptions::default(),
        )
        .unwrap();
        let r = Relabeling::by_degree_desc(&csr);
        let relabeled = r.apply_to_csr(&csr);
        assert_eq!(relabeled.num_values(), csr.num_values());
        for old in 0..csr.num_vertices() as VertexId {
            let new = r.new_id(old);
            let mut a: Vec<VertexId> = csr.neighbors(old).iter().map(|&w| r.new_id(w)).collect();
            let mut b = relabeled.neighbors(new).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "vertex {old}→{new}");
        }
    }

    #[test]
    fn roundtrip_ids() {
        let csr = sample();
        let r = Relabeling::by_degree_desc(&csr);
        for v in 0..5 {
            assert_eq!(r.old_id(r.new_id(v)), v);
            assert_eq!(r.new_id(r.old_id(v)), v);
        }
    }

    #[test]
    fn parents_translate_back() {
        let csr = sample();
        let r = Relabeling::by_degree_desc(&csr);
        let relabeled = r.apply_to_csr(&csr);
        // BFS on the relabeled graph from new-root = new_id(1).
        let root_new = r.new_id(1);
        let mut parent_new = vec![sembfs_graph500::INVALID_PARENT; 5];
        parent_new[root_new as usize] = root_new;
        for &w in relabeled.neighbors(root_new) {
            parent_new[w as usize] = root_new;
        }
        let parent_old = r.parents_to_original(&parent_new);
        assert_eq!(parent_old[1], 1); // old root
        assert_eq!(parent_old[0], 1);
        assert_eq!(parent_old[2], 1);
        assert_eq!(parent_old[4], 1);
        assert_eq!(parent_old[3], sembfs_graph500::INVALID_PARENT);
    }
}
