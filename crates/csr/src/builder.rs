//! Parallel CSR construction from (possibly external) edge lists.
//!
//! Two passes over the edge list, both chunk-parallel: count per-vertex
//! degrees with relaxed atomics, prefix-sum into the index array, then
//! scatter neighbors through per-vertex atomic cursors. The edge list is
//! only ever *streamed*, so construction works identically whether the
//! list sits in DRAM or on (simulated) NVM — exactly the paper's Step 2,
//! which builds both graphs "by directly reading the edge list from NVM".

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use sembfs_graph500::edge_list::EdgeList;
use sembfs_semext::Result;

use crate::graph::CsrGraph;
use crate::VertexId;

/// Options controlling CSR construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Drop self-loop edges `(v, v)`. The paper keeps the raw Kronecker
    /// output (its value array is exactly `2M` entries), so the default is
    /// `false`.
    pub drop_self_loops: bool,
    /// Sort each adjacency list ascending after construction
    /// (deterministic layout; also groups low vertex IDs first).
    pub sort_neighbors: bool,
    /// Edge-list chunk size (edges per parallel task).
    pub chunk_edges: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            drop_self_loops: false,
            sort_neighbors: false,
            chunk_edges: 1 << 16,
        }
    }
}

/// Build the undirected CSR (each edge stored in both directions) from an
/// edge list.
pub fn build_csr(edges: &dyn EdgeList, opts: BuildOptions) -> Result<CsrGraph> {
    let n = edges.num_vertices() as usize;

    // Pass 1: degree count.
    let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    edges.par_visit_chunks(opts.chunk_edges, &|_, chunk| {
        for &(u, v) in chunk {
            if opts.drop_self_loops && u == v {
                continue;
            }
            counts[u as usize].fetch_add(1, Ordering::Relaxed);
            counts[v as usize].fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    })?;

    // Prefix sum → index array.
    let mut index = Vec::with_capacity(n + 1);
    index.push(0u64);
    let mut acc = 0u64;
    for c in &counts {
        acc += c.load(Ordering::Relaxed) as u64;
        index.push(acc);
    }
    let total = acc as usize;

    // Pass 2: scatter through per-vertex cursors.
    let cursors: Vec<AtomicU64> = index[..n].iter().map(|&off| AtomicU64::new(off)).collect();
    let values: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
    edges.par_visit_chunks(opts.chunk_edges, &|_, chunk| {
        for &(u, v) in chunk {
            if opts.drop_self_loops && u == v {
                continue;
            }
            let pu = cursors[u as usize].fetch_add(1, Ordering::Relaxed);
            values[pu as usize].store(v, Ordering::Relaxed);
            let pv = cursors[v as usize].fetch_add(1, Ordering::Relaxed);
            values[pv as usize].store(u, Ordering::Relaxed);
        }
        Ok(())
    })?;

    let mut values: Vec<VertexId> = values.into_iter().map(AtomicU32::into_inner).collect();

    if opts.sort_neighbors {
        use rayon::prelude::*;
        // Sort each adjacency list in place, domain by vertex.
        let mut slices: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        let mut rest = values.as_mut_slice();
        for v in 0..n {
            let len = (index[v + 1] - index[v]) as usize;
            let (head, tail) = rest.split_at_mut(len);
            slices.push(head);
            rest = tail;
        }
        slices.par_iter_mut().for_each(|s| s.sort_unstable());
    }

    Ok(CsrGraph::new(index, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_graph500::KroneckerParams;

    fn sorted(mut v: Vec<VertexId>) -> Vec<VertexId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn small_graph_both_directions() {
        let el = MemEdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let g = build_csr(&el, BuildOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_values(), 6);
        assert_eq!(sorted(g.neighbors(1).to_vec()), vec![0, 2]);
        assert_eq!(sorted(g.neighbors(2).to_vec()), vec![1, 3]);
    }

    #[test]
    fn self_loops_kept_by_default() {
        let el = MemEdgeList::new(2, vec![(0, 0), (0, 1)]);
        let g = build_csr(&el, BuildOptions::default()).unwrap();
        // Self-loop stored twice (both directions), like the reference.
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn self_loops_droppable() {
        let el = MemEdgeList::new(2, vec![(0, 0), (0, 1)]);
        let opts = BuildOptions {
            drop_self_loops: true,
            ..Default::default()
        };
        let g = build_csr(&el, opts).unwrap();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.num_values(), 2);
    }

    #[test]
    fn duplicate_edges_kept() {
        let el = MemEdgeList::new(2, vec![(0, 1), (0, 1), (1, 0)]);
        let g = build_csr(&el, BuildOptions::default()).unwrap();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 3);
    }

    #[test]
    fn sorted_neighbors_option() {
        let el = MemEdgeList::new(5, vec![(0, 4), (0, 1), (0, 3), (0, 2)]);
        let opts = BuildOptions {
            sort_neighbors: true,
            ..Default::default()
        };
        let g = build_csr(&el, opts).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn kronecker_value_count_is_2m() {
        let p = KroneckerParams::graph500(10, 5);
        let el = p.generate();
        let g = build_csr(&el, BuildOptions::default()).unwrap();
        assert_eq!(g.num_values(), 2 * p.num_edges());
        assert_eq!(g.num_vertices(), p.num_vertices());
    }

    #[test]
    fn construction_is_permutation_invariant_per_vertex() {
        // Same multiset of neighbors regardless of chunking.
        let p = KroneckerParams::graph500(9, 11);
        let el = p.generate();
        let a = build_csr(
            &el,
            BuildOptions {
                chunk_edges: 7,
                ..Default::default()
            },
        )
        .unwrap();
        let b = build_csr(
            &el,
            BuildOptions {
                chunk_edges: 4096,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a.index(), b.index());
        for v in 0..a.num_vertices() as VertexId {
            assert_eq!(
                sorted(a.neighbors(v).to_vec()),
                sorted(b.neighbors(v).to_vec()),
                "vertex {v}"
            );
        }
    }

    #[test]
    fn empty_edge_list() {
        let el = MemEdgeList::new(3, vec![]);
        let g = build_csr(&el, BuildOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_values(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every input edge appears in both adjacency lists, and the
            /// total value count is exactly twice the edge count.
            #[test]
            fn csr_preserves_edges(
                edges in proptest::collection::vec((0u32..50, 0u32..50), 0..200)
            ) {
                let el = MemEdgeList::new(50, edges.clone());
                let g = build_csr(&el, BuildOptions::default()).unwrap();
                prop_assert_eq!(g.num_values(), 2 * edges.len() as u64);
                for &(u, v) in &edges {
                    prop_assert!(g.neighbors(u).contains(&v));
                    prop_assert!(g.neighbors(v).contains(&u));
                }
            }
        }
    }
}
