//! The forward graph: destination-partitioned CSR for the top-down phase.
//!
//! Per §V-B2 / Fig. 6, each vertex's neighbor list is split by the NUMA
//! domain owning the *destination* vertex: domain `k` holds a CSR over all
//! `n` source vertices whose values are only the neighbors inside `k`'s
//! vertex range. A thread bound to domain `k` expands frontier vertices
//! against `k`'s sub-CSR exclusively, so all `tree`/bitmap writes stay
//! domain-local (the frontier itself is conceptually duplicated per
//! domain).
//!
//! [`DramForwardGraph`] keeps the per-domain CSRs in DRAM (the *DRAM-only*
//! scenario); [`ExtForwardGraph`] reads them from index/value files —
//! "twice as many files as the number of NUMA nodes" (§V-B2) — through any
//! [`ReadAt`] store, typically a metered
//! [`NvmStore`](sembfs_semext::NvmStore).

use std::path::{Path, PathBuf};

use rayon::prelude::*;
use sembfs_numa::RangePartition;
use sembfs_semext::ext_csr::{write_csr_files, ExtCsr};
use sembfs_semext::{ReadAt, Result};

use crate::graph::CsrGraph;
use crate::neighbors::{DomainNeighbors, NeighborCtx};
use crate::VertexId;

/// Forward graph in DRAM: one destination-filtered CSR per domain.
#[derive(Debug, Clone)]
pub struct DramForwardGraph {
    domains: Vec<CsrGraph>,
    partition: RangePartition,
}

impl DramForwardGraph {
    /// Build from a full undirected CSR by splitting every adjacency list
    /// by destination domain (parallel over vertices).
    pub fn from_csr(csr: &CsrGraph, partition: &RangePartition) -> Self {
        let n = csr.num_vertices() as usize;
        let l = partition.num_domains();
        assert_eq!(partition.num_vertices(), csr.num_vertices());

        // Per-domain degree of each vertex (no atomics: one writer per v).
        let mut counts: Vec<Vec<u32>> = (0..l).map(|_| vec![0u32; n]).collect();
        {
            // Count in parallel over vertices, writing column v of each
            // domain row; transpose-free via per-vertex local counting.
            let counts_cols: Vec<Vec<u32>> = (0..n)
                .into_par_iter()
                .map(|v| {
                    let mut local = vec![0u32; l];
                    for &w in csr.neighbors(v as VertexId) {
                        local[partition.domain_of(w as u64)] += 1;
                    }
                    local
                })
                .collect();
            for (v, local) in counts_cols.iter().enumerate() {
                for (k, &c) in local.iter().enumerate() {
                    counts[k][v] = c;
                }
            }
        }

        let domains: Vec<CsrGraph> = (0..l)
            .into_par_iter()
            .map(|k| {
                let mut index = Vec::with_capacity(n + 1);
                index.push(0u64);
                let mut acc = 0u64;
                for &c in &counts[k][..n] {
                    acc += c as u64;
                    index.push(acc);
                }
                let mut values = vec![0 as VertexId; acc as usize];
                // Fill per vertex into disjoint ranges.
                let mut slices: Vec<&mut [VertexId]> = Vec::with_capacity(n);
                let mut rest = values.as_mut_slice();
                for v in 0..n {
                    let len = (index[v + 1] - index[v]) as usize;
                    let (head, tail) = rest.split_at_mut(len);
                    slices.push(head);
                    rest = tail;
                }
                slices.par_iter_mut().enumerate().for_each(|(v, out)| {
                    let mut pos = 0;
                    for &w in csr.neighbors(v as VertexId) {
                        if partition.domain_of(w as u64) == k {
                            out[pos] = w;
                            pos += 1;
                        }
                    }
                    debug_assert_eq!(pos, out.len());
                });
                CsrGraph::new(index, values)
            })
            .collect();

        Self {
            domains,
            partition: partition.clone(),
        }
    }

    /// The partition the graph was built with.
    pub fn partition(&self) -> &RangePartition {
        &self.partition
    }

    /// Domain `k`'s sub-CSR.
    pub fn domain(&self, k: usize) -> &CsrGraph {
        &self.domains[k]
    }

    /// Write the per-domain CSRs as `fg-<k>.index` / `fg-<k>.values` files
    /// in `dir` ("offload the constructed forward graph to NVM", §V-A).
    /// Returns the per-domain file paths.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> Result<Vec<(PathBuf, PathBuf)>> {
        let dir = dir.as_ref();
        let mut paths = Vec::with_capacity(self.domains.len());
        for (k, g) in self.domains.iter().enumerate() {
            let ip = dir.join(format!("fg-{k}.index"));
            let vp = dir.join(format!("fg-{k}.values"));
            write_csr_files(&ip, &vp, g.index(), g.values())?;
            paths.push((ip, vp));
        }
        Ok(paths)
    }
}

impl DomainNeighbors for DramForwardGraph {
    fn num_domains(&self) -> usize {
        self.domains.len()
    }

    fn num_vertices(&self) -> u64 {
        self.partition.num_vertices()
    }

    fn num_values(&self) -> u64 {
        self.domains.iter().map(CsrGraph::num_values).sum()
    }

    fn byte_size(&self) -> u64 {
        self.domains.iter().map(CsrGraph::byte_size).sum()
    }

    fn with_neighbors<R>(
        &self,
        k: usize,
        v: VertexId,
        _ctx: &mut NeighborCtx,
        f: impl FnOnce(&[VertexId]) -> R,
    ) -> Result<R> {
        Ok(f(self.domains[k].neighbors(v)))
    }
}

/// Forward graph on (semi-)external memory: one [`ExtCsr`] per domain.
#[derive(Debug)]
pub struct ExtForwardGraph<R> {
    domains: Vec<ExtCsr<R>>,
    partition: RangePartition,
}

impl<R: ReadAt> ExtForwardGraph<R> {
    /// Assemble from per-domain external CSRs (one per partition domain).
    ///
    /// # Panics
    /// Panics when the domain count or vertex counts are inconsistent.
    pub fn new(domains: Vec<ExtCsr<R>>, partition: RangePartition) -> Self {
        assert_eq!(domains.len(), partition.num_domains(), "one CSR per domain");
        for d in &domains {
            assert_eq!(
                d.num_vertices(),
                partition.num_vertices(),
                "every domain CSR spans all source vertices"
            );
        }
        Self { domains, partition }
    }

    /// The partition the graph was built with.
    pub fn partition(&self) -> &RangePartition {
        &self.partition
    }

    /// Domain `k`'s external CSR.
    pub fn domain(&self, k: usize) -> &ExtCsr<R> {
        &self.domains[k]
    }

    /// Pin every domain's index array in DRAM (ablation knob; the paper's
    /// baseline reads indices from NVM).
    pub fn with_dram_index(self) -> Result<Self> {
        let domains = self
            .domains
            .into_iter()
            .map(ExtCsr::with_dram_index)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            domains,
            partition: self.partition,
        })
    }
}

impl<R: ReadAt> DomainNeighbors for ExtForwardGraph<R> {
    fn num_domains(&self) -> usize {
        self.domains.len()
    }

    fn num_vertices(&self) -> u64 {
        self.partition.num_vertices()
    }

    fn num_values(&self) -> u64 {
        self.domains.iter().map(ExtCsr::num_values).sum()
    }

    fn byte_size(&self) -> u64 {
        self.domains.iter().map(ExtCsr::byte_size).sum()
    }

    fn is_external(&self) -> bool {
        true
    }

    fn with_neighbors<R2>(
        &self,
        k: usize,
        v: VertexId,
        ctx: &mut NeighborCtx,
        f: impl FnOnce(&[VertexId]) -> R2,
    ) -> Result<R2> {
        let NeighborCtx {
            reader,
            buf,
            scratch,
            ..
        } = ctx;
        self.domains[k].read_neighbors(v as u64, reader, buf, scratch)?;
        Ok(f(buf))
    }

    fn with_neighbors_batch(
        &self,
        k: usize,
        vs: &[VertexId],
        ctx: &mut NeighborCtx,
        f: &mut dyn FnMut(VertexId, &[VertexId]),
    ) -> Result<()> {
        if !ctx.aggregate {
            for &v in vs {
                self.with_neighbors(k, v, ctx, |ns| f(v, ns))?;
            }
            return Ok(());
        }
        // §VI-D aggregation: one batched submission for the whole dequeue
        // batch (the paper dequeues 64 vertices at a time, §V-C). With a
        // page cache attached, dense batches additionally prefetch their
        // covering value window so the spans are served from DRAM.
        ctx.scratch.clear();
        let ids: Vec<u64> = vs.iter().map(|&v| v as u64).collect();
        self.domains[k].read_neighbors_batch_opts(
            &ids,
            &ctx.reader,
            &mut ctx.batch,
            ctx.cache.is_some(),
        )?;
        for (i, &v) in vs.iter().enumerate() {
            f(v, &ctx.batch.outs[i]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_csr, BuildOptions};
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_graph500::KroneckerParams;
    use sembfs_semext::{FileBackend, TempDir};

    fn sample() -> (CsrGraph, RangePartition) {
        // 8 vertices, 2 domains: [0..4) and [4..8).
        let el = MemEdgeList::new(
            8,
            vec![
                (0, 1),
                (0, 4),
                (0, 7),
                (1, 5),
                (2, 3),
                (4, 5),
                (6, 7),
                (3, 4),
            ],
        );
        let csr = build_csr(&el, BuildOptions::default()).unwrap();
        (csr, RangePartition::new(8, 2))
    }

    #[test]
    fn domain_split_covers_all_neighbors() {
        let (csr, part) = sample();
        let fg = DramForwardGraph::from_csr(&csr, &part);
        assert_eq!(fg.num_values(), csr.num_values());
        let mut ctx = NeighborCtx::dram();
        for v in 0..8u32 {
            let mut combined: Vec<u32> = Vec::new();
            for k in 0..2 {
                fg.with_neighbors(k, v, &mut ctx, |ns| {
                    // Every neighbor must belong to domain k.
                    for &w in ns {
                        assert_eq!(part.domain_of(w as u64), k, "v {v} w {w}");
                    }
                    combined.extend_from_slice(ns);
                })
                .unwrap();
            }
            let mut expect = csr.neighbors(v).to_vec();
            expect.sort_unstable();
            combined.sort_unstable();
            assert_eq!(combined, expect, "vertex {v}");
        }
    }

    #[test]
    fn byte_size_exceeds_plain_csr_due_to_duplicated_index() {
        // The paper notes the forward graph is larger than the backward
        // graph: the index array is replicated per domain.
        let (csr, part) = sample();
        let fg = DramForwardGraph::from_csr(&csr, &part);
        assert!(fg.byte_size() > csr.byte_size());
        assert_eq!(
            fg.byte_size(),
            csr.values().len() as u64 * 4 + 2 * (csr.num_vertices() + 1) * 8
        );
    }

    #[test]
    fn external_matches_dram() {
        let p = KroneckerParams::graph500(8, 21);
        let el = p.generate();
        let csr = build_csr(&el, BuildOptions::default()).unwrap();
        let part = RangePartition::new(csr.num_vertices(), 4);
        let fg = DramForwardGraph::from_csr(&csr, &part);

        let dir = TempDir::new("fwd-ext").unwrap();
        let paths = fg.write_to_dir(dir.path()).unwrap();
        assert_eq!(paths.len(), 4); // 2·ℓ files total, ℓ pairs

        let ext = ExtForwardGraph::new(
            paths
                .iter()
                .map(|(ip, vp)| {
                    ExtCsr::new(
                        FileBackend::open(ip).unwrap(),
                        FileBackend::open(vp).unwrap(),
                    )
                    .unwrap()
                })
                .collect(),
            part.clone(),
        );
        assert_eq!(ext.num_values(), fg.num_values());
        assert_eq!(ext.byte_size(), fg.byte_size());

        let mut dctx = NeighborCtx::dram();
        let mut ectx = NeighborCtx::dram();
        for v in (0..csr.num_vertices() as u32).step_by(17) {
            for k in 0..4 {
                let a = fg
                    .with_neighbors(k, v, &mut dctx, |ns| ns.to_vec())
                    .unwrap();
                let b = ext
                    .with_neighbors(k, v, &mut ectx, |ns| ns.to_vec())
                    .unwrap();
                assert_eq!(a, b, "v {v} k {k}");
            }
        }
    }

    #[test]
    fn dram_index_variant_agrees() {
        let (csr, part) = sample();
        let fg = DramForwardGraph::from_csr(&csr, &part);
        let dir = TempDir::new("fwd-idx").unwrap();
        let paths = fg.write_to_dir(dir.path()).unwrap();
        let ext = ExtForwardGraph::new(
            paths
                .iter()
                .map(|(ip, vp)| {
                    ExtCsr::new(
                        FileBackend::open(ip).unwrap(),
                        FileBackend::open(vp).unwrap(),
                    )
                    .unwrap()
                })
                .collect(),
            part,
        )
        .with_dram_index()
        .unwrap();
        let mut ctx = NeighborCtx::dram();
        let deg: u64 = (0..8u32)
            .map(|v| {
                (0..2)
                    .map(|k| ext.domain_degree(k, v, &mut ctx).unwrap())
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(deg, csr.num_values());
    }

    #[test]
    fn single_domain_forward_is_the_whole_graph() {
        let (csr, _) = sample();
        let part = RangePartition::new(8, 1);
        let fg = DramForwardGraph::from_csr(&csr, &part);
        let mut ctx = NeighborCtx::dram();
        for v in 0..8u32 {
            let ns = fg.with_neighbors(0, v, &mut ctx, |ns| ns.to_vec()).unwrap();
            assert_eq!(ns, csr.neighbors(v));
        }
    }
}
