//! The backward graph: source-partitioned CSR for the bottom-up phase,
//! and its partially-offloaded split form (§V-C, §VI-E).
//!
//! Because NETAL's vertex partition is by contiguous ranges, "one CSR per
//! domain" for the backward graph is simply a range view over one full
//! CSR — domain `k` scans its own vertices `[k·n/ℓ, (k+1)·n/ℓ)` with their
//! complete neighbor lists ([`BackwardGraph`]).
//!
//! [`SplitBackwardGraph`] implements the §VI-E extension the paper
//! measures but leaves unimplemented ("although unsupported in our current
//! implementation"): only the first `k_limit` neighbors of each vertex
//! stay in DRAM (the hot head — bottom-up usually terminates within a few
//! probes), while the tail is offloaded to external memory and streamed
//! only when the head is exhausted.

use std::ops::Range;

use sembfs_numa::RangePartition;
use sembfs_semext::ext_csr::ExtCsr;
use sembfs_semext::{ReadAt, Result};

use crate::graph::CsrGraph;
use crate::neighbors::NeighborCtx;
use crate::VertexId;

/// Backward graph fully in DRAM: a full CSR plus the domain partition.
#[derive(Debug, Clone)]
pub struct BackwardGraph {
    csr: CsrGraph,
    partition: RangePartition,
}

impl BackwardGraph {
    /// Wrap a full CSR with its domain partition.
    ///
    /// # Panics
    /// Panics when the vertex counts disagree.
    pub fn new(csr: CsrGraph, partition: RangePartition) -> Self {
        assert_eq!(csr.num_vertices(), partition.num_vertices());
        Self { csr, partition }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.csr.num_vertices()
    }

    /// The domain partition.
    pub fn partition(&self) -> &RangePartition {
        &self.partition
    }

    /// The vertex range owned by domain `k` (its bottom-up scan range).
    pub fn local_vertices(&self, k: usize) -> Range<u64> {
        self.partition.range(k)
    }

    /// Full neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr.neighbors(v)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.csr.degree(v)
    }

    /// The underlying CSR.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// DRAM footprint in bytes.
    pub fn byte_size(&self) -> u64 {
        self.csr.byte_size()
    }
}

/// Split a CSR into a DRAM head (first `k_limit` neighbors per vertex) and
/// an external tail (the rest). Returns `(head, tail_index, tail_values)`;
/// the tail arrays are written to files by the caller.
pub fn split_csr(csr: &CsrGraph, k_limit: u64) -> (CsrGraph, Vec<u64>, Vec<VertexId>) {
    let n = csr.num_vertices() as usize;
    let mut head_index = Vec::with_capacity(n + 1);
    let mut tail_index = Vec::with_capacity(n + 1);
    head_index.push(0u64);
    tail_index.push(0u64);
    let mut head_values = Vec::new();
    let mut tail_values = Vec::new();
    for v in 0..n {
        let ns = csr.neighbors(v as VertexId);
        let cut = (k_limit as usize).min(ns.len());
        head_values.extend_from_slice(&ns[..cut]);
        tail_values.extend_from_slice(&ns[cut..]);
        head_index.push(head_values.len() as u64);
        tail_index.push(tail_values.len() as u64);
    }
    (
        CsrGraph::new(head_index, head_values),
        tail_index,
        tail_values,
    )
}

/// Backward graph with its cold tail offloaded: DRAM head + external tail.
#[derive(Debug)]
pub struct SplitBackwardGraph<R> {
    head: CsrGraph,
    tail: ExtCsr<R>,
    partition: RangePartition,
    k_limit: u64,
}

impl<R: ReadAt> SplitBackwardGraph<R> {
    /// Assemble from a DRAM head and an external tail CSR.
    ///
    /// # Panics
    /// Panics when shapes disagree.
    pub fn new(head: CsrGraph, tail: ExtCsr<R>, partition: RangePartition, k_limit: u64) -> Self {
        assert_eq!(head.num_vertices(), partition.num_vertices());
        assert_eq!(tail.num_vertices(), head.num_vertices());
        Self {
            head,
            tail,
            partition,
            k_limit,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.head.num_vertices()
    }

    /// The per-vertex DRAM neighbor limit.
    pub fn k_limit(&self) -> u64 {
        self.k_limit
    }

    /// The domain partition.
    pub fn partition(&self) -> &RangePartition {
        &self.partition
    }

    /// The vertex range owned by domain `k`.
    pub fn local_vertices(&self, k: usize) -> Range<u64> {
        self.partition.range(k)
    }

    /// The hot head neighbors of `v` (in DRAM).
    #[inline]
    pub fn head_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.head.neighbors(v)
    }

    /// Number of tail (offloaded) neighbors of `v`. Zero storage requests
    /// (the tail index is consulted via the head shape only when needed —
    /// this uses the external index, so it does issue a request unless the
    /// index is pinned; pin with [`ExtCsr::with_dram_index`] upstream).
    pub fn tail_degree(&self, v: VertexId) -> Result<u64> {
        self.tail.degree(v as u64)
    }

    /// Stream the offloaded tail neighbors of `v` into `ctx.buf` and hand
    /// them to `f`. Issues storage requests on the tail's device.
    pub fn with_tail_neighbors<T>(
        &self,
        v: VertexId,
        ctx: &mut NeighborCtx,
        f: impl FnOnce(&[VertexId]) -> T,
    ) -> Result<T> {
        let NeighborCtx {
            reader,
            buf,
            scratch,
            ..
        } = ctx;
        self.tail.read_neighbors(v as u64, reader, buf, scratch)?;
        Ok(f(buf))
    }

    /// DRAM footprint (head only).
    pub fn dram_byte_size(&self) -> u64 {
        self.head.byte_size()
    }

    /// External footprint (tail index + values).
    pub fn nvm_byte_size(&self) -> u64 {
        self.tail.byte_size()
    }

    /// The head CSR.
    pub fn head(&self) -> &CsrGraph {
        &self.head
    }

    /// The tail external CSR.
    pub fn tail(&self) -> &ExtCsr<R> {
        &self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_csr, BuildOptions};
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_semext::ext_csr::write_csr_files;
    use sembfs_semext::{FileBackend, TempDir};

    fn star_plus_path() -> CsrGraph {
        // Vertex 0 is a hub with 6 neighbors; 7-8-9 a path.
        let el = MemEdgeList::new(
            10,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (7, 8),
                (8, 9),
            ],
        );
        build_csr(
            &el,
            BuildOptions {
                sort_neighbors: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn backward_graph_ranges() {
        let csr = star_plus_path();
        let bg = BackwardGraph::new(csr.clone(), RangePartition::new(10, 2));
        assert_eq!(bg.local_vertices(0), 0..5);
        assert_eq!(bg.local_vertices(1), 5..10);
        assert_eq!(bg.neighbors(0), csr.neighbors(0));
        assert_eq!(bg.byte_size(), csr.byte_size());
    }

    #[test]
    fn split_preserves_order_and_content() {
        let csr = star_plus_path();
        let (head, tail_index, tail_values) = split_csr(&csr, 2);
        for v in 0..10u32 {
            let full = csr.neighbors(v);
            let h = head.neighbors(v);
            let ts = tail_index[v as usize] as usize;
            let te = tail_index[v as usize + 1] as usize;
            let t = &tail_values[ts..te];
            assert_eq!(h.len(), full.len().min(2), "vertex {v}");
            let mut joined = h.to_vec();
            joined.extend_from_slice(t);
            assert_eq!(joined, full, "vertex {v}");
        }
    }

    #[test]
    fn split_zero_keeps_nothing_in_dram() {
        let csr = star_plus_path();
        let (head, _, tail_values) = split_csr(&csr, 0);
        assert_eq!(head.num_values(), 0);
        assert_eq!(tail_values.len() as u64, csr.num_values());
    }

    #[test]
    fn split_large_keeps_everything_in_dram() {
        let csr = star_plus_path();
        let (head, _, tail_values) = split_csr(&csr, 1000);
        assert_eq!(head.num_values(), csr.num_values());
        assert!(tail_values.is_empty());
    }

    #[test]
    fn split_backward_graph_reads_tail() {
        let csr = star_plus_path();
        let (head, tail_index, tail_values) = split_csr(&csr, 2);
        let dir = TempDir::new("split-bg").unwrap();
        let ip = dir.path().join("bg-tail.index");
        let vp = dir.path().join("bg-tail.values");
        write_csr_files(&ip, &vp, &tail_index, &tail_values).unwrap();
        let tail = ExtCsr::new(
            FileBackend::open(&ip).unwrap(),
            FileBackend::open(&vp).unwrap(),
        )
        .unwrap()
        .with_dram_index()
        .unwrap();

        let sbg = SplitBackwardGraph::new(head, tail, RangePartition::new(10, 2), 2);
        assert_eq!(sbg.k_limit(), 2);
        assert_eq!(sbg.head_neighbors(0), &[1, 2]);
        assert_eq!(sbg.tail_degree(0).unwrap(), 4);
        let mut ctx = NeighborCtx::dram();
        let t = sbg
            .with_tail_neighbors(0, &mut ctx, |ns| ns.to_vec())
            .unwrap();
        assert_eq!(t, vec![3, 4, 5, 6]);
        // Path vertices have no tail at limit 2.
        assert_eq!(sbg.tail_degree(8).unwrap(), 0);
        assert!(sbg.dram_byte_size() < csr.byte_size());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// split_csr partitions each adjacency list at min(k, deg)
            /// preserving order, for arbitrary graphs and limits.
            #[test]
            fn split_partitions_cleanly(
                adj in proptest::collection::vec(
                    proptest::collection::vec(0u32..64, 0..30), 1..30),
                k in 0u64..20,
            ) {
                let csr = CsrGraph::from_adjacency(&adj);
                let (head, ti, tv) = split_csr(&csr, k);
                prop_assert_eq!(head.num_values() + tv.len() as u64, csr.num_values());
                for (v, list) in adj.iter().enumerate() {
                    let h = head.neighbors(v as VertexId);
                    let t = &tv[ti[v] as usize..ti[v + 1] as usize];
                    let mut joined = h.to_vec();
                    joined.extend_from_slice(t);
                    prop_assert_eq!(&joined, list);
                    prop_assert!(h.len() as u64 <= k);
                }
            }
        }
    }
}
