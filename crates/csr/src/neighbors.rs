//! The neighbor-source abstraction shared by DRAM and semi-external
//! forward graphs.
//!
//! The top-down step is identical whether the forward graph lives in DRAM
//! or on NVM — only the way a neighbor sub-list is materialized differs.
//! [`DomainNeighbors`] abstracts "give me `v`'s neighbors that live in
//! domain `k`", and [`NeighborCtx`] carries the per-thread scratch (chunk
//! reader, decode buffers) the semi-external path needs, so the hot loop
//! allocates nothing.

use std::sync::Arc;

use sembfs_semext::{ChunkedReader, NeighborBatch, Result, ShardedPageCache};

use crate::VertexId;

/// Per-thread scratch state for neighbor reads.
#[derive(Debug)]
pub struct NeighborCtx {
    /// The chunked reader used for external value spans.
    pub reader: ChunkedReader,
    /// Decoded neighbor buffer (reused across reads).
    pub buf: Vec<VertexId>,
    /// Raw byte scratch (reused across reads).
    pub scratch: Vec<u8>,
    /// When set, batch-capable sources serve
    /// [`DomainNeighbors::with_neighbors_batch`] through asynchronous
    /// batch submissions (the `libaio` aggregation of §VI-D) instead of
    /// one synchronous request per read.
    pub aggregate: bool,
    /// Scratch for batched reads.
    pub batch: NeighborBatch,
    /// The page cache fronting the forward graph's stores, when one is
    /// configured. Semi-external sources use its presence to issue
    /// coalesced span prefetches ahead of batched neighbor reads (the
    /// cache itself sits inside the store, so demand reads hit it either
    /// way).
    pub cache: Option<Arc<ShardedPageCache>>,
}

impl NeighborCtx {
    /// Scratch with a specific chunk reader (external graphs).
    pub fn new(reader: ChunkedReader) -> Self {
        Self {
            reader,
            buf: Vec::new(),
            scratch: Vec::new(),
            aggregate: false,
            batch: NeighborBatch::new(),
            cache: None,
        }
    }

    /// Scratch for DRAM-only graphs (the reader is never used).
    pub fn dram() -> Self {
        Self::new(ChunkedReader::unmerged())
    }

    /// Enable `libaio`-style batched submissions on batch-capable sources.
    pub fn with_aggregation(mut self) -> Self {
        self.aggregate = true;
        self
    }

    /// Attach the page cache fronting the forward graph's stores.
    pub fn with_cache(mut self, cache: Arc<ShardedPageCache>) -> Self {
        self.cache = Some(cache);
        self
    }
}

impl Default for NeighborCtx {
    fn default() -> Self {
        Self::dram()
    }
}

/// A NUMA-partitioned neighbor source: for each `(domain, vertex)` pair,
/// the sub-list of `vertex`'s neighbors owned by `domain`.
pub trait DomainNeighbors: Send + Sync {
    /// Number of NUMA domains `ℓ`.
    fn num_domains(&self) -> usize;

    /// Number of vertices `n`.
    fn num_vertices(&self) -> u64;

    /// Total neighbor entries across all domains (`2M` for an undirected
    /// Graph500 instance).
    fn num_values(&self) -> u64;

    /// Total size in bytes of the structure (DRAM or NVM footprint).
    fn byte_size(&self) -> u64;

    /// True when neighbor reads are served from external memory (NVM),
    /// so every scanned edge is an NVM read. DRAM sources keep the
    /// default.
    fn is_external(&self) -> bool {
        false
    }

    /// Invoke `f` with the neighbors of `v` that live in domain `k`.
    ///
    /// The slice is only valid during the call; external implementations
    /// decode into `ctx.buf`.
    fn with_neighbors<R>(
        &self,
        k: usize,
        v: VertexId,
        ctx: &mut NeighborCtx,
        f: impl FnOnce(&[VertexId]) -> R,
    ) -> Result<R>;

    /// Degree of `v` within domain `k` (entries `f` would see).
    fn domain_degree(&self, k: usize, v: VertexId, ctx: &mut NeighborCtx) -> Result<u64> {
        self.with_neighbors(k, v, ctx, |ns| ns.len() as u64)
    }

    /// Visit the domain-`k` neighbor lists of all of `vs`, invoking
    /// `f(v, neighbors)` per vertex. The default loops over
    /// [`with_neighbors`](Self::with_neighbors); semi-external sources
    /// override it to submit the whole batch asynchronously when
    /// `ctx.aggregate` is set (§VI-D's aggregation).
    fn with_neighbors_batch(
        &self,
        k: usize,
        vs: &[VertexId],
        ctx: &mut NeighborCtx,
        f: &mut dyn FnMut(VertexId, &[VertexId]),
    ) -> Result<()> {
        for &v in vs {
            self.with_neighbors(k, v, ctx, |ns| f(v, ns))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_default_is_dram() {
        let ctx = NeighborCtx::default();
        assert_eq!(ctx.reader, ChunkedReader::unmerged());
        assert!(ctx.buf.is_empty());
    }
}
