//! Degree statistics for analysis figures.
//!
//! The paper's degradation analysis (§VI-C, Fig. 11) is driven by the
//! *average degree* of vertices expanded per level — first top-down levels
//! touch hubs (≈11 183 average degree), last levels touch degree-1 leaves.
//! These helpers summarize degree distributions for that analysis and for
//! sizing reports.

use crate::graph::CsrGraph;

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: u64,
    /// Maximum degree.
    pub max: u64,
    /// Mean degree.
    pub mean: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: u64,
    /// Histogram over power-of-two buckets: `buckets[i]` counts vertices
    /// with degree in `[2^i, 2^(i+1))`; bucket 0 also counts degree 1.
    pub log2_buckets: Vec<u64>,
}

impl DegreeStats {
    /// Compute statistics over all vertices of `csr`.
    pub fn from_csr(csr: &CsrGraph) -> Self {
        let n = csr.num_vertices();
        assert!(n > 0, "degree stats need at least one vertex");
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut isolated = 0u64;
        let mut log2_buckets = vec![0u64; 33];
        for v in 0..n {
            let d = csr.degree(v as u32);
            min = min.min(d);
            max = max.max(d);
            sum += d;
            if d == 0 {
                isolated += 1;
            } else {
                log2_buckets[d.ilog2() as usize] += 1;
            }
        }
        while log2_buckets.len() > 1 && *log2_buckets.last().unwrap() == 0 {
            log2_buckets.pop();
        }
        Self {
            min,
            max,
            mean: sum as f64 / n as f64,
            isolated,
            log2_buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_distribution() {
        // Degrees: 3, 1, 1, 1, 0.
        let csr = CsrGraph::from_adjacency(&[vec![1, 2, 3], vec![0], vec![0], vec![0], vec![]]);
        let s = DegreeStats::from_csr(&csr);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert_eq!(s.isolated, 1);
        assert!((s.mean - 1.2).abs() < 1e-12);
        // Bucket 0 (degree 1): three vertices; bucket 1 (degree 2..3): one.
        assert_eq!(s.log2_buckets[0], 3);
        assert_eq!(s.log2_buckets[1], 1);
    }

    #[test]
    fn single_vertex() {
        let csr = CsrGraph::from_adjacency(&[vec![]]);
        let s = DegreeStats::from_csr(&csr);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn hub_lands_in_high_bucket() {
        let adj = vec![(0..64).collect::<Vec<u32>>()];
        let mut all = adj;
        for _ in 0..64 {
            all.push(vec![0]);
        }
        let csr = CsrGraph::from_adjacency(&all);
        let s = DegreeStats::from_csr(&csr);
        assert_eq!(s.max, 64);
        assert_eq!(s.log2_buckets[6], 1); // degree 64 → bucket 6
    }
}
