//! The in-memory CSR representation (§V-B1, Fig. 5).

use crate::VertexId;

/// A CSR adjacency structure in DRAM: an *index* array of `n + 1` offsets
/// into a *value* array of neighbor vertex IDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    index: Vec<u64>,
    values: Vec<VertexId>,
}

impl CsrGraph {
    /// Wrap raw CSR arrays.
    ///
    /// # Panics
    /// Panics when the index is empty, non-monotone, or inconsistent with
    /// the value array.
    pub fn new(index: Vec<u64>, values: Vec<VertexId>) -> Self {
        assert!(!index.is_empty(), "CSR index must have at least one entry");
        assert_eq!(
            *index.last().unwrap(),
            values.len() as u64,
            "CSR index final entry must equal value count"
        );
        debug_assert!(
            index.windows(2).all(|w| w[0] <= w[1]),
            "CSR index must be monotone"
        );
        Self { index, values }
    }

    /// Build from per-vertex adjacency lists (test/example helper).
    pub fn from_adjacency(adj: &[Vec<VertexId>]) -> Self {
        let mut index = Vec::with_capacity(adj.len() + 1);
        index.push(0u64);
        let mut values = Vec::new();
        for list in adj {
            values.extend_from_slice(list);
            index.push(values.len() as u64);
        }
        Self::new(index, values)
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> u64 {
        (self.index.len() - 1) as u64
    }

    /// Number of stored neighbor entries (directed; an undirected graph
    /// stores `2M`).
    pub fn num_values(&self) -> u64 {
        self.values.len() as u64
    }

    /// Neighbors of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (s, e) = self.neighbor_range(v);
        &self.values[s as usize..e as usize]
    }

    /// `[start, end)` of `v`'s neighbors in the value array.
    #[inline]
    pub fn neighbor_range(&self, v: VertexId) -> (u64, u64) {
        (self.index[v as usize], self.index[v as usize + 1])
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        let (s, e) = self.neighbor_range(v);
        e - s
    }

    /// The raw index array.
    pub fn index(&self) -> &[u64] {
        &self.index
    }

    /// The raw value array.
    pub fn values(&self) -> &[VertexId] {
        &self.values
    }

    /// Heap size in bytes (what Table II / Fig. 3 report).
    pub fn byte_size(&self) -> u64 {
        self.index.len() as u64 * 8 + self.values.len() as u64 * 4
    }

    /// Consume into raw arrays (for offloading to external files).
    pub fn into_parts(self) -> (Vec<u64>, Vec<VertexId>) {
        (self.index, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        CsrGraph::from_adjacency(&[vec![1, 2], vec![0, 2, 3], vec![], vec![1]])
    }

    #[test]
    fn shape() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_values(), 6);
        assert_eq!(g.byte_size(), 5 * 8 + 6 * 4);
    }

    #[test]
    fn neighbors_and_degrees() {
        let g = sample();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.neighbors(3), &[1]);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::new(vec![0], vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_values(), 0);
    }

    #[test]
    #[should_panic(expected = "final entry must equal")]
    fn inconsistent_rejected() {
        CsrGraph::new(vec![0, 5], vec![1, 2]);
    }

    #[test]
    fn into_parts_roundtrip() {
        let g = sample();
        let (index, values) = g.clone().into_parts();
        assert_eq!(CsrGraph::new(index, values), g);
    }
}
