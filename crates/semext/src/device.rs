//! The simulated NVM device model.
//!
//! This is the hardware substitution documented in DESIGN.md §3. The paper
//! evaluates on a FusionIO ioDrive2 (PCIe flash) and an Intel SSD 320; we
//! model a device as a single server with
//!
//! * a **service time** per request — `max(1/IOPS, bytes/bandwidth)` — that
//!   is reserved on a shared atomic device timeline (FIFO queueing), and
//! * an **access latency** floor — a request never completes earlier than
//!   `arrival + latency` even on an idle device.
//!
//! In [`DelayMode::Throttled`] the calling thread really waits until its
//! modeled completion time, so wall-clock measurements (TEPS, per-level
//! timings) reflect the device — this is what the benches use. In
//! [`DelayMode::Accounting`] the model runs but nobody waits — this is what
//! fast functional tests use. Either way every request is recorded in
//! [`IoStats`], which yields the paper's `avgqu-sz`/`avgrq-sz` figures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::backend::ReadAt;
use crate::error::Result;
use crate::fault::{self, FaultPlan, FaultState, PageIntegrity, MAX_WEAR_FACTOR};
use crate::iostat::{IoSnapshot, IoStats};

/// Performance parameters of a (simulated) storage device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// End-to-end access latency floor per request.
    pub latency: Duration,
    /// Sustained read bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Maximum sustained read IOPS (caps request rate).
    pub iops: u64,
    /// Kernel-style request merging limit: contiguous application chunks
    /// are merged into device requests of at most this many bytes (see
    /// [`crate::ChunkedReader`]).
    pub merge_limit: usize,
    /// Minimum physical transfer unit: the block layer reads whole pages,
    /// so a 16-byte index lookup still moves (and is accounted as) one
    /// 4 KiB page. Set to 1 to disable (DRAM profile).
    pub min_transfer: u64,
}

impl DeviceProfile {
    /// FusionIO ioDrive2 (the paper's PCIe-flash scenario): ~68 µs access
    /// latency, ~1.4 GB/s sustained read, ~250 kIOPS.
    pub fn iodrive2() -> Self {
        Self {
            name: "FusionIO ioDrive2 (PCIe flash)",
            latency: Duration::from_micros(68),
            bandwidth: 1_400_000_000,
            iops: 250_000,
            merge_limit: 16 * 1024,
            min_transfer: 4096,
        }
    }

    /// Intel SSD 320 (the paper's SATA-SSD scenario): ~270 MB/s sustained
    /// read, ~38 kIOPS. The latency is the *loaded* random-read latency
    /// (~160 µs), calibrated so the single-request flash:SSD cost ratio
    /// matches the paper's observed per-level top-down degradation ratio
    /// (Fig. 11: minima 1.2× vs 2.8× over DRAM-only ⇒ SSD ≈ 2.3× flash).
    /// On the paper's 48-thread testbed that ratio emerged from queueing
    /// on the 38 kIOPS device; a low-core host cannot build that queue, so
    /// it is folded into the per-request latency instead.
    pub fn intel_ssd_320() -> Self {
        Self {
            name: "Intel SSD 320 (SATA)",
            latency: Duration::from_micros(160),
            bandwidth: 270_000_000,
            iops: 38_000,
            merge_limit: 16 * 1024,
            min_transfer: 4096,
        }
    }

    /// An eMLC SATA drive of the paper's era but a class up from the
    /// SSD 320 (Intel DC S3700-like): ~80 µs loaded latency, ~500 MB/s,
    /// ~75 kIOPS. For the "performance studies on various NVM devices"
    /// the paper lists as future work. The loaded latency sits between the
    /// PCIe ioDrive2 (68 µs) and the SATA SSD 320 (160 µs): SATA protocol
    /// overhead keeps even an eMLC drive behind PCIe flash on 4 KiB random
    /// reads, which is the ordering the future-device study relies on.
    pub fn dc_s3700() -> Self {
        Self {
            name: "Intel DC S3700 (SATA eMLC)",
            latency: Duration::from_micros(80),
            bandwidth: 500_000_000,
            iops: 75_000,
            merge_limit: 16 * 1024,
            min_transfer: 4096,
        }
    }

    /// A modern NVMe flash drive (PCIe Gen4 class): ~12 µs latency,
    /// ~7 GB/s, ~1 MIOPS. A decade of device progress over the paper's
    /// testbed, for the future-device study.
    pub fn nvme_gen4() -> Self {
        Self {
            name: "NVMe Gen4 flash",
            latency: Duration::from_micros(12),
            bandwidth: 7_000_000_000,
            iops: 1_000_000,
            merge_limit: 64 * 1024,
            min_transfer: 4096,
        }
    }

    /// App-direct persistent memory (Optane DC-like): ~0.35 µs latency,
    /// ~6 GB/s, effectively unbounded IOPS at 256-byte granularity.
    pub fn pmem() -> Self {
        Self {
            name: "persistent memory (app-direct)",
            latency: Duration::from_nanos(350),
            bandwidth: 6_000_000_000,
            iops: 10_000_000,
            merge_limit: 64 * 1024,
            min_transfer: 256,
        }
    }

    /// A zero-cost profile: requests are recorded but modeled as free.
    /// Used for the DRAM side of scenarios so all code paths are uniform.
    pub fn dram() -> Self {
        Self {
            name: "DRAM",
            latency: Duration::ZERO,
            bandwidth: u64::MAX,
            iops: u64::MAX,
            merge_limit: usize::MAX,
            min_transfer: 1,
        }
    }

    /// Scale the device slower (`factor > 1`) or faster (`factor < 1`):
    /// latency and per-request service scale by `factor`, bandwidth and
    /// IOPS by `1/factor`. Used to calibrate paper-era devices against
    /// scaled-down problem sizes.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale_u64 = |v: u64| -> u64 {
            if v == u64::MAX {
                u64::MAX
            } else {
                ((v as f64 / factor).max(1.0)) as u64
            }
        };
        self.latency = Duration::from_nanos((self.latency.as_nanos() as f64 * factor) as u64);
        self.bandwidth = scale_u64(self.bandwidth);
        self.iops = scale_u64(self.iops);
        self
    }

    /// Physical bytes moved for a logical request of `bytes` (rounded up
    /// to whole `min_transfer` units; zero-byte requests stay zero).
    pub fn physical_bytes(&self, bytes: u64) -> u64 {
        if bytes == 0 || self.min_transfer <= 1 {
            bytes
        } else {
            bytes.div_ceil(self.min_transfer) * self.min_transfer
        }
    }

    /// Modeled service time (device occupancy) for a request of `bytes`
    /// (logical; the transfer component uses the physical size).
    pub fn service_ns(&self, bytes: u64) -> u64 {
        let bytes = self.physical_bytes(bytes);
        let per_request = if self.iops == u64::MAX {
            0
        } else {
            1_000_000_000u64.div_ceil(self.iops)
        };
        let transfer = if self.bandwidth == u64::MAX {
            0
        } else {
            (bytes.saturating_mul(1_000_000_000)).div_ceil(self.bandwidth)
        };
        per_request.max(transfer)
    }
}

/// Whether the device model makes callers actually wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayMode {
    /// Callers spin/sleep until their modeled completion time. Wall-clock
    /// measurements then reflect the simulated device.
    Throttled,
    /// The model runs and statistics are recorded, but callers do not
    /// wait. Use in functional tests.
    Accounting,
}

/// A simulated storage device: a profile, a FIFO service timeline, and
/// request statistics. Many [`NvmStore`]s (files) can share one device,
/// exactly like the paper stores the forward graph's per-NUMA-node
/// index/value files on a single flash card.
///
/// ```
/// use sembfs_semext::{DelayMode, Device, DeviceProfile, DramBackend, NvmStore, ReadAt};
///
/// let device = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
/// let store = NvmStore::new(DramBackend::new(vec![7u8; 8192]), device.clone());
///
/// let mut buf = [0u8; 512];
/// store.read_at(4096, &mut buf).unwrap();
///
/// let stats = device.snapshot();
/// assert_eq!(stats.requests, 1);
/// assert_eq!(stats.bytes, 4096); // physical 4 KiB page transfer
/// ```
#[derive(Debug)]
pub struct Device {
    profile: DeviceProfile,
    mode: DelayMode,
    epoch: Instant,
    /// Device-busy horizon in nanoseconds since `epoch`.
    busy_until_ns: AtomicU64,
    stats: IoStats,
    /// Fault-injection state, when the device runs under a [`FaultPlan`].
    faults: Option<Arc<FaultState>>,
    /// Physical bytes served since creation (wear-out input; unlike
    /// [`IoStats`] this is never reset).
    wear_served: AtomicU64,
    /// Wear horizon in bytes (`plan.wear_gb`); 0 disables wear-out.
    wear_bytes: u64,
}

impl Device {
    /// Create a device with the given profile and delay mode.
    pub fn new(profile: DeviceProfile, mode: DelayMode) -> Arc<Self> {
        Arc::new(Self {
            profile,
            mode,
            epoch: Instant::now(),
            busy_until_ns: AtomicU64::new(0),
            stats: IoStats::new(),
            faults: None,
            wear_served: AtomicU64::new(0),
            wear_bytes: 0,
        })
    }

    /// Create a device that executes a [`FaultPlan`]: reads through
    /// [`NvmStore`]s bound to it draw deterministic transient failures,
    /// corruptions and stalls, and the device's service time degrades as
    /// bytes are served when the plan sets a wear horizon.
    pub fn with_fault_plan(profile: DeviceProfile, mode: DelayMode, plan: FaultPlan) -> Arc<Self> {
        let wear_bytes = (plan.wear_gb * (1u64 << 30) as f64) as u64;
        Arc::new(Self {
            profile,
            mode,
            epoch: Instant::now(),
            busy_until_ns: AtomicU64::new(0),
            stats: IoStats::new(),
            faults: Some(Arc::new(FaultState::new(plan))),
            wear_served: AtomicU64::new(0),
            wear_bytes,
        })
    }

    /// The fault-injection state, when a plan is attached.
    pub fn faults(&self) -> Option<&Arc<FaultState>> {
        self.faults.as_ref()
    }

    /// Whether the health monitor has seen enough faults to declare the
    /// device degraded. Always `false` without a fault plan.
    pub fn is_degraded(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.health().is_degraded())
    }

    /// Current wear-out service-time multiplier (1.0 = fresh device,
    /// capped at [`MAX_WEAR_FACTOR`]).
    pub fn wear_factor(&self) -> f64 {
        if self.wear_bytes == 0 {
            return 1.0;
        }
        let served = self.wear_served.load(Ordering::Relaxed) as f64;
        1.0 + (served / self.wear_bytes as f64).min(MAX_WEAR_FACTOR - 1.0)
    }

    /// A free device that only counts requests.
    pub fn unmetered() -> Arc<Self> {
        Self::new(DeviceProfile::dram(), DelayMode::Accounting)
    }

    /// The device's profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The configured delay mode.
    pub fn mode(&self) -> DelayMode {
        self.mode
    }

    /// The instant the device clock started. All recorded arrival and
    /// completion nanoseconds are offsets from this epoch; aligning a
    /// tracer on it (`Tracer::set_epoch`) makes trace timestamps and
    /// device timestamps directly comparable.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Snapshot the request statistics.
    pub fn snapshot(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Register this device's request statistics as pull-style gauges and
    /// counters on a metrics registry (Prometheus exposition).
    pub fn register_metrics(self: &Arc<Self>, registry: &sembfs_obs::MetricsRegistry) {
        use sembfs_obs::Metric;
        let dev = Arc::clone(self);
        let name = dev.profile.name;
        registry.register_source(Box::new(move || {
            let snap = dev.snapshot();
            let labels: &[(&str, &str)] = &[("device", name)];
            vec![
                Metric::counter(
                    "sembfs_device_read_requests_total",
                    labels,
                    snap.requests as f64,
                ),
                Metric::counter("sembfs_device_read_bytes_total", labels, snap.bytes as f64),
                Metric::counter(
                    "sembfs_device_response_seconds_total",
                    labels,
                    snap.response_ns as f64 / 1e9,
                ),
                Metric::counter(
                    "sembfs_device_service_seconds_total",
                    labels,
                    snap.service_ns as f64 / 1e9,
                ),
                Metric::gauge("sembfs_device_avgqu_sz", labels, snap.avgqu_sz()),
                Metric::gauge("sembfs_device_avgrq_sz", labels, snap.avgrq_sz()),
            ]
        }));
        if self.faults.is_some() {
            let dev = Arc::clone(self);
            registry.register_source(Box::new(move || {
                let faults = dev.faults.as_ref().expect("registered with faults");
                let snap = faults.snapshot();
                let labels: &[(&str, &str)] = &[("device", name)];
                vec![
                    Metric::counter(
                        "sembfs_device_faults_total",
                        &[("device", name), ("kind", "eio")],
                        snap.eio as f64,
                    ),
                    Metric::counter(
                        "sembfs_device_faults_total",
                        &[("device", name), ("kind", "corrupt")],
                        snap.corrupt as f64,
                    ),
                    Metric::counter(
                        "sembfs_device_faults_total",
                        &[("device", name), ("kind", "stall")],
                        snap.stall as f64,
                    ),
                    Metric::counter("sembfs_device_retries_total", labels, snap.retries as f64),
                    Metric::counter(
                        "sembfs_device_checksum_failures_total",
                        labels,
                        snap.checksum_failures as f64,
                    ),
                    Metric::gauge(
                        "sembfs_device_degraded",
                        labels,
                        if dev.is_degraded() { 1.0 } else { 0.0 },
                    ),
                    Metric::gauge("sembfs_device_wear_factor", labels, dev.wear_factor()),
                ]
            }));
        }
    }

    /// Emit an NVM-read span on the global tracer, translating this
    /// device's clock (`ns since [`Self::epoch`]`) into the tracer's
    /// timebase. When the tracer epoch is aligned on the device epoch the
    /// translation is the identity; otherwise it is still correct, just
    /// offset.
    fn trace_read(&self, arrival_ns: u64, completion_ns: u64, bytes: u64, requests: u64) {
        let tracer = sembfs_obs::global();
        if !tracer.is_enabled() {
            return;
        }
        let start = tracer.ns_of(self.epoch + Duration::from_nanos(arrival_ns));
        let end = tracer.ns_of(self.epoch + Duration::from_nanos(completion_ns));
        tracer.span(
            start,
            end,
            sembfs_obs::TraceEvent::NvmRead { bytes, requests },
        );
    }

    /// Reset the request statistics (the timeline keeps running).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Model (and, when throttled, wait out) a read request of `bytes`.
    ///
    /// Returns the modeled completion time on the device clock.
    pub fn read_request(&self, bytes: u64) -> u64 {
        let arrival = self.now_ns();
        let service = self.worn_service_ns(bytes);

        // Reserve `service` ns on the FIFO timeline.
        let mut prev = self.busy_until_ns.load(Ordering::Relaxed);
        let (begin, end) = loop {
            let begin = prev.max(arrival);
            let end = begin + service;
            match self.busy_until_ns.compare_exchange_weak(
                prev,
                end,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break (begin, end),
                Err(cur) => prev = cur,
            }
        };
        // Requests already ahead of us, estimated as backlog over this
        // request's own service time.
        let queue_ahead = begin
            .saturating_sub(arrival)
            .checked_div(service)
            .unwrap_or(0);

        let latency_ns = self.profile.latency.as_nanos() as u64;
        let completion = end.max(arrival + latency_ns);

        if self.mode == DelayMode::Throttled && completion > arrival {
            self.wait_until(completion);
        }

        self.stats.record(
            self.profile.physical_bytes(bytes),
            arrival,
            completion,
            service,
            queue_ahead,
        );
        self.record_wear(self.profile.physical_bytes(bytes));
        self.trace_read(arrival, completion, self.profile.physical_bytes(bytes), 1);
        completion
    }

    /// Service time with the current wear-out multiplier applied.
    fn worn_service_ns(&self, bytes: u64) -> u64 {
        let service = self.profile.service_ns(bytes);
        if self.wear_bytes == 0 {
            service
        } else {
            (service as f64 * self.wear_factor()) as u64
        }
    }

    fn record_wear(&self, physical_bytes: u64) {
        if self.wear_bytes != 0 {
            self.wear_served
                .fetch_add(physical_bytes, Ordering::Relaxed);
        }
    }

    /// Occupy the device for an injected latency stall: `stall` extra
    /// nanoseconds are reserved on the busy timeline (so concurrent
    /// readers queue behind the stall, exactly like a real firmware
    /// hiccup) and, when throttled, the caller waits them out. Returns
    /// the stall's end on the device clock.
    pub fn apply_stall(&self, stall: Duration) -> u64 {
        let ns = stall.as_nanos() as u64;
        let arrival = self.now_ns();
        let mut prev = self.busy_until_ns.load(Ordering::Relaxed);
        let end = loop {
            let begin = prev.max(arrival);
            let end = begin + ns;
            match self.busy_until_ns.compare_exchange_weak(
                prev,
                end,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break end,
                Err(cur) => prev = cur,
            }
        };
        if self.mode == DelayMode::Throttled && end > arrival {
            self.wait_until(end);
        }
        end
    }

    /// Wait out a retry-backoff delay on the device clock: a real wait in
    /// [`DelayMode::Throttled`], a no-op in [`DelayMode::Accounting`]
    /// (functional tests must not sleep). Unlike [`Self::apply_stall`]
    /// the device is *not* occupied — backing off frees it for others.
    pub fn wait_backoff(&self, delay: Duration) {
        if self.mode == DelayMode::Throttled && !delay.is_zero() {
            let deadline = self.now_ns() + delay.as_nanos() as u64;
            self.wait_until(deadline);
        }
    }

    /// Model an **asynchronous batch submission** (the `libaio`-style
    /// aggregation §VI-D suggests): all requests are queued at once and
    /// the caller waits for the *last* completion instead of paying the
    /// access latency once per request. Device occupancy (service time) is
    /// unchanged — aggregation removes the per-request wait serialization,
    /// not the device work. Returns the batch completion time.
    pub fn read_batch(&self, sizes: &[u64]) -> u64 {
        if sizes.is_empty() {
            return self.now_ns();
        }
        let arrival = self.now_ns();
        let total_service: u64 = sizes.iter().map(|&b| self.worn_service_ns(b)).sum();

        // Reserve the whole batch contiguously on the FIFO timeline.
        let mut prev = self.busy_until_ns.load(Ordering::Relaxed);
        let (begin, end) = loop {
            let begin = prev.max(arrival);
            let end = begin + total_service;
            match self.busy_until_ns.compare_exchange_weak(
                prev,
                end,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break (begin, end),
                Err(cur) => prev = cur,
            }
        };
        let latency_ns = self.profile.latency.as_nanos() as u64;
        let completion = end.max(arrival + latency_ns);

        if self.mode == DelayMode::Throttled && completion > arrival {
            self.wait_until(completion);
        }

        // Record per-request statistics: each request's completion is its
        // position on the timeline (so avgrq-sz/avgqu-sz stay meaningful),
        // with the batch's shared arrival.
        let mut cursor = begin;
        let backlog = begin.saturating_sub(arrival);
        for &bytes in sizes {
            let service = self.worn_service_ns(bytes);
            cursor += service;
            let req_completion = cursor.max(arrival + latency_ns);
            let queue_ahead = backlog.checked_div(service.max(1)).unwrap_or(0);
            self.stats.record(
                self.profile.physical_bytes(bytes),
                arrival,
                req_completion,
                service,
                queue_ahead,
            );
        }
        let physical: u64 = sizes.iter().map(|&b| self.profile.physical_bytes(b)).sum();
        self.record_wear(physical);
        self.trace_read(arrival, completion, physical, sizes.len() as u64);
        completion
    }

    /// Hybrid wait: sleep for the bulk of long waits, yield the final
    /// stretch for accuracy (OS sleep granularity is ~50–100 µs). Yielding
    /// rather than spinning matters when concurrent readers share cores:
    /// a waiting thread must not burn the CPU another reader could use to
    /// overlap its own device wait.
    fn wait_until(&self, deadline_ns: u64) {
        const SPIN_WINDOW_NS: u64 = 100_000;
        loop {
            let now = self.now_ns();
            if now >= deadline_ns {
                return;
            }
            let remaining = deadline_ns - now;
            if remaining > 2 * SPIN_WINDOW_NS {
                std::thread::sleep(Duration::from_nanos(remaining - SPIN_WINDOW_NS));
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// A storage backend bound to a [`Device`]: every read is metered (and in
/// throttled mode, delayed) by the device model.
///
/// When the device carries a [`FaultPlan`] with active per-read fault
/// rates, reads go through the resilient path ([`fault::faulted_read`]):
/// faults are drawn deterministically, page checksums (when sealed via
/// [`Self::with_integrity`]) are verified, and transient failures retry
/// under capped backoff before surfacing as typed errors.
#[derive(Debug)]
pub struct NvmStore<B> {
    backend: B,
    device: Arc<Device>,
    integrity: Option<Arc<PageIntegrity>>,
}

impl<B: ReadAt> NvmStore<B> {
    /// Bind `backend` to `device`.
    pub fn new(backend: B, device: Arc<Device>) -> Self {
        Self {
            backend,
            device,
            integrity: None,
        }
    }

    /// Attach per-page checksums sealed at build time; the fault path
    /// verifies every read against them and a torn page surfaces as
    /// [`crate::Error::ChecksumMismatch`] instead of bad data.
    pub fn with_integrity(mut self, integrity: Arc<PageIntegrity>) -> Self {
        self.integrity = Some(integrity);
        self
    }

    /// The sealed page checksums, when attached.
    pub fn integrity(&self) -> Option<&Arc<PageIntegrity>> {
        self.integrity.as_ref()
    }

    /// The device this store is bound to.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The raw (unmetered) backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The fault state to route reads through, if any fault can fire.
    fn active_faults(&self) -> Option<&Arc<FaultState>> {
        self.device.faults().filter(|f| f.plan().has_read_faults())
    }
}

impl<B: ReadAt> ReadAt for NvmStore<B> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if let Some(state) = self.active_faults() {
            return fault::faulted_read(
                &self.backend,
                &self.device,
                self.integrity.as_deref(),
                state,
                offset,
                buf,
            );
        }
        match &self.integrity {
            Some(integrity) => fault::verified_read(&self.backend, integrity, offset, buf)?,
            None => self.backend.read_at(offset, buf)?,
        }
        self.device.read_request(buf.len() as u64);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.backend.len()
    }

    fn read_batch_at(&self, reqs: &mut [crate::backend::BatchRead<'_>]) -> Result<()> {
        if let Some(state) = self.active_faults() {
            // Under fault injection each member of the batch is served
            // (and retried) individually: a failed member of an async
            // batch forces its own resubmission, so the latency-once
            // batching optimisation does not apply.
            for r in reqs.iter_mut() {
                fault::faulted_read(
                    &self.backend,
                    &self.device,
                    self.integrity.as_deref(),
                    state,
                    r.offset,
                    r.buf,
                )?;
            }
            return Ok(());
        }
        for r in reqs.iter_mut() {
            match &self.integrity {
                Some(integrity) => fault::verified_read(&self.backend, integrity, r.offset, r.buf)?,
                None => self.backend.read_at(r.offset, r.buf)?,
            }
        }
        let sizes: Vec<u64> = reqs.iter().map(|r| r.buf.len() as u64).collect();
        self.device.read_batch(&sizes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DramBackend;
    use crate::fault::FaultSnapshot;

    #[test]
    fn service_time_is_max_of_components() {
        let p = DeviceProfile {
            name: "toy",
            latency: Duration::from_micros(10),
            bandwidth: 1_000_000_000, // 1 GB/s → 1 ns/byte
            iops: 100_000,            // → 10 µs per request
            merge_limit: 4096,
            min_transfer: 1,
        };
        // Small request: IOPS bound (10 µs).
        assert_eq!(p.service_ns(100), 10_000);
        // Large request: bandwidth bound (100 µs for 100 KB).
        assert_eq!(p.service_ns(100_000), 100_000);
    }

    #[test]
    fn dram_profile_is_free() {
        let p = DeviceProfile::dram();
        assert_eq!(p.service_ns(1 << 30), 0);
        assert_eq!(p.latency, Duration::ZERO);
    }

    #[test]
    fn paper_profiles_ordering() {
        let flash = DeviceProfile::iodrive2();
        let ssd = DeviceProfile::intel_ssd_320();
        // Flash strictly dominates the SSD for the paper's access pattern.
        assert!(flash.service_ns(4096) < ssd.service_ns(4096));
        assert!(flash.latency <= ssd.latency);
    }

    #[test]
    fn device_generations_order_by_latency() {
        // The future-device study relies on a strict speed ordering for a
        // 4 KiB random read: SSD 320 > DC S3700 ≥ ioDrive2 > NVMe > pmem.
        let cost = |p: DeviceProfile| p.latency.max(Duration::from_nanos(p.service_ns(4096)));
        assert!(cost(DeviceProfile::intel_ssd_320()) > cost(DeviceProfile::dc_s3700()));
        assert!(cost(DeviceProfile::dc_s3700()) >= cost(DeviceProfile::iodrive2()));
        assert!(cost(DeviceProfile::iodrive2()) > cost(DeviceProfile::nvme_gen4()));
        assert!(cost(DeviceProfile::nvme_gen4()) > cost(DeviceProfile::pmem()));
    }

    #[test]
    fn pmem_fine_grained_transfers() {
        // App-direct pmem is byte-addressable-ish: a 16-byte index read
        // moves one 256-byte line, not a whole 4 KiB page.
        let p = DeviceProfile::pmem();
        assert_eq!(p.physical_bytes(16), 256);
        assert_eq!(DeviceProfile::nvme_gen4().physical_bytes(16), 4096);
    }

    #[test]
    fn scaled_profile_slows_down() {
        let base = DeviceProfile::intel_ssd_320();
        let slow = base.clone().scaled(2.0);
        assert_eq!(slow.service_ns(4096), base.service_ns(4096) * 2);
        assert_eq!(slow.latency, base.latency * 2);
        let fast = base.clone().scaled(0.5);
        assert!(fast.service_ns(65536) < base.service_ns(65536));
    }

    #[test]
    fn accounting_mode_records_without_waiting() {
        let dev = Device::new(DeviceProfile::intel_ssd_320(), DelayMode::Accounting);
        let t0 = Instant::now();
        for _ in 0..100 {
            dev.read_request(4096);
        }
        // 100 SSD requests would be ≥ 2.6 ms throttled; accounting is fast.
        assert!(t0.elapsed() < Duration::from_millis(100));
        let snap = dev.snapshot();
        assert_eq!(snap.requests, 100);
        assert_eq!(snap.bytes, 409_600);
        assert_eq!(snap.sectors, 800);
        assert!((snap.avgrq_sz() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn throttled_mode_really_waits() {
        let profile = DeviceProfile {
            name: "slow-toy",
            latency: Duration::from_millis(2),
            bandwidth: u64::MAX,
            iops: u64::MAX,
            merge_limit: 4096,
            min_transfer: 1,
        };
        let dev = Device::new(profile, DelayMode::Throttled);
        let t0 = Instant::now();
        dev.read_request(4096);
        assert!(t0.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn queue_builds_under_concurrency() {
        // 64 concurrent requests on a device that serves one per 50 µs:
        // later arrivals must observe a backlog.
        let profile = DeviceProfile {
            name: "queuey",
            latency: Duration::from_micros(1),
            bandwidth: u64::MAX,
            iops: 20_000,
            merge_limit: 4096,
            min_transfer: 1,
        };
        let dev = Device::new(profile, DelayMode::Accounting);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..8 {
                        dev.read_request(512);
                    }
                });
            }
        });
        let snap = dev.snapshot();
        assert_eq!(snap.requests, 64);
        // With 64 near-simultaneous arrivals at 50 µs service, the summed
        // response time must exceed 64 × service (queueing happened).
        assert!(snap.response_ns > 64 * 50_000);
        assert!(snap.queued_at_arrival > 0);
    }

    #[test]
    fn nvm_store_reads_correct_data_and_meters() {
        let data: Vec<u8> = (0..255u8).cycle().take(8192).collect();
        let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        let store = NvmStore::new(DramBackend::new(data.clone()), dev.clone());
        let mut buf = vec![0u8; 1000];
        store.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[100..1100]);
        assert_eq!(store.len(), 8192);
        assert_eq!(dev.snapshot().requests, 1);
        // A 1000-byte logical read moves one physical 4 KiB page.
        assert_eq!(dev.snapshot().bytes, 4096);
    }

    #[test]
    fn shared_device_accumulates_across_stores() {
        let dev = Device::new(DeviceProfile::dram(), DelayMode::Accounting);
        let a = NvmStore::new(DramBackend::new(vec![0u8; 64]), dev.clone());
        let b = NvmStore::new(DramBackend::new(vec![1u8; 64]), dev.clone());
        let mut buf = [0u8; 32];
        a.read_at(0, &mut buf).unwrap();
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(dev.snapshot().requests, 2);
    }

    #[test]
    fn batch_pays_latency_once() {
        // Throttled: 8 sync requests pay 8 × latency; one batch of 8 pays
        // ~1 × latency + 8 × service.
        let profile = DeviceProfile {
            name: "batchy",
            latency: Duration::from_millis(1),
            bandwidth: u64::MAX,
            iops: 1_000_000, // 1 µs service
            merge_limit: 4096,
            min_transfer: 1,
        };
        let sync_dev = Device::new(profile.clone(), DelayMode::Throttled);
        let t0 = Instant::now();
        for _ in 0..8 {
            sync_dev.read_request(512);
        }
        let sync_elapsed = t0.elapsed();

        let batch_dev = Device::new(profile, DelayMode::Throttled);
        let t0 = Instant::now();
        batch_dev.read_batch(&[512; 8]);
        let batch_elapsed = t0.elapsed();

        assert!(sync_elapsed >= Duration::from_millis(8));
        assert!(
            batch_elapsed < Duration::from_millis(4),
            "batch {batch_elapsed:?}"
        );
        // Stats still see 8 requests either way.
        assert_eq!(batch_dev.snapshot().requests, 8);
        assert_eq!(sync_dev.snapshot().requests, 8);
    }

    #[test]
    fn empty_batch_is_noop() {
        let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        dev.read_batch(&[]);
        assert_eq!(dev.snapshot().requests, 0);
    }

    #[test]
    fn batch_occupies_device_timeline() {
        // Batch service still serializes on the device: a batch of 100
        // 1-page reads on the SSD occupies ≥ 100 × service_ns.
        let dev = Device::new(DeviceProfile::intel_ssd_320(), DelayMode::Accounting);
        let before = dev.snapshot();
        dev.read_batch(&[4096; 100]);
        let d = dev.snapshot().delta(&before);
        assert_eq!(d.requests, 100);
        let per = DeviceProfile::intel_ssd_320().service_ns(4096);
        assert!(d.service_ns >= 100 * per);
    }

    #[test]
    fn nvm_store_batch_reads_correct_data() {
        use crate::backend::BatchRead;
        let data: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        let store = NvmStore::new(DramBackend::new(data.clone()), dev.clone());
        let mut b1 = [0u8; 8];
        let mut b2 = [0u8; 16];
        let mut reqs = [
            BatchRead {
                offset: 0,
                buf: &mut b1,
            },
            BatchRead {
                offset: 100,
                buf: &mut b2,
            },
        ];
        store.read_batch_at(&mut reqs).unwrap();
        assert_eq!(&b1[..], &data[0..8]);
        assert_eq!(&b2[..], &data[100..116]);
        assert_eq!(dev.snapshot().requests, 2);
    }

    #[test]
    fn physical_bytes_rounding() {
        let p = DeviceProfile::iodrive2();
        assert_eq!(p.physical_bytes(0), 0);
        assert_eq!(p.physical_bytes(1), 4096);
        assert_eq!(p.physical_bytes(4096), 4096);
        assert_eq!(p.physical_bytes(4097), 8192);
        assert_eq!(DeviceProfile::dram().physical_bytes(17), 17);
    }

    #[test]
    fn fault_free_plan_reads_exactly_like_no_plan() {
        let data: Vec<u8> = (0..255u8).cycle().take(8192).collect();
        let dev = Device::with_fault_plan(
            DeviceProfile::iodrive2(),
            DelayMode::Accounting,
            FaultPlan::default(),
        );
        assert!(dev.faults().is_some());
        assert!(!dev.is_degraded());
        let store = NvmStore::new(DramBackend::new(data.clone()), dev.clone());
        let mut buf = vec![0u8; 1000];
        store.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[100..1100]);
        // Zero rates take the fast path: one request, no fault counters.
        assert_eq!(dev.snapshot().requests, 1);
        assert_eq!(dev.faults().unwrap().snapshot(), FaultSnapshot::default());
    }

    #[test]
    fn transient_eio_heals_under_retry() {
        let data: Vec<u8> = (0..255u8).cycle().take(64 * 4096).collect();
        let plan = FaultPlan::parse("seed=3,eio=0.3").unwrap();
        let dev = Device::with_fault_plan(DeviceProfile::dram(), DelayMode::Accounting, plan);
        let store = NvmStore::new(DramBackend::new(data.clone()), dev.clone());
        let mut buf = vec![0u8; 256];
        // At 30% EIO with 6 retries every read converges; data stays right.
        for i in 0..200u64 {
            let off = (i * 997) % (data.len() as u64 - 256);
            store.read_at(off, &mut buf).unwrap();
            assert_eq!(&buf[..], &data[off as usize..off as usize + 256]);
        }
        let snap = dev.faults().unwrap().snapshot();
        assert!(
            snap.eio > 20,
            "expected many injected EIOs, got {}",
            snap.eio
        );
        assert!(snap.retries >= snap.eio);
        // Failed attempts were charged to the device.
        assert_eq!(dev.snapshot().requests, 200 + snap.eio);
    }

    #[test]
    fn certain_eio_exhausts_with_typed_error() {
        let plan = FaultPlan::parse("seed=1,eio=1,retries=3").unwrap();
        let dev = Device::with_fault_plan(DeviceProfile::dram(), DelayMode::Accounting, plan);
        let store = NvmStore::new(DramBackend::new(vec![0u8; 4096]), dev.clone());
        let mut buf = [0u8; 64];
        match store.read_at(0, &mut buf) {
            Err(crate::Error::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 4); // initial try + 3 retries
                assert_eq!(last, std::io::ErrorKind::Interrupted);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn plain_reads_verify_integrity_without_a_fault_plan() {
        let mut data: Vec<u8> = (0..255u8).cycle().take(3 * 4096).collect();
        let integrity = Arc::new(PageIntegrity::seal_bytes(&data));
        data[4096 + 904] ^= 0x20; // torn after sealing, page 1
        let dev = Device::unmetered();
        let store = NvmStore::new(DramBackend::new(data.clone()), dev).with_integrity(integrity);
        let mut buf = [0u8; 64];
        // A read whose enclosing span touches the torn page is rejected…
        match store.read_at(4096 - 10, &mut buf) {
            Err(crate::Error::ChecksumMismatch { page: 1, .. }) => {}
            other => panic!("expected ChecksumMismatch on page 1, got {other:?}"),
        }
        // …and untouched pages are still served, byte-exact.
        store.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[100..164]);
    }

    #[test]
    fn corruption_with_integrity_heals_without_is_silent() {
        let data: Vec<u8> = (0..255u8).cycle().take(16 * 4096).collect();
        let plan = FaultPlan::parse("seed=5,corrupt=0.4").unwrap();

        // With sealed checksums: every read verified, corruption healed.
        let dev = Device::with_fault_plan(DeviceProfile::dram(), DelayMode::Accounting, plan);
        let integrity = Arc::new(PageIntegrity::seal_bytes(&data));
        let store =
            NvmStore::new(DramBackend::new(data.clone()), dev.clone()).with_integrity(integrity);
        let mut buf = vec![0u8; 100];
        for i in 0..100u64 {
            let off = (i * 601) % (data.len() as u64 - 100);
            store.read_at(off, &mut buf).unwrap();
            assert_eq!(&buf[..], &data[off as usize..off as usize + 100]);
        }
        let snap = dev.faults().unwrap().snapshot();
        assert!(snap.corrupt > 10);
        assert_eq!(snap.checksum_failures, snap.corrupt);

        // Without checksums the same plan silently corrupts some reads.
        let plan = FaultPlan::parse("seed=5,corrupt=0.4").unwrap();
        let dev = Device::with_fault_plan(DeviceProfile::dram(), DelayMode::Accounting, plan);
        let store = NvmStore::new(DramBackend::new(data.clone()), dev.clone());
        let mut wrong = 0;
        for i in 0..100u64 {
            let off = (i * 601) % (data.len() as u64 - 100);
            store.read_at(off, &mut buf).unwrap();
            if buf != data[off as usize..off as usize + 100] {
                wrong += 1;
            }
        }
        assert!(wrong > 0, "silent corruption should have hit some reads");
    }

    #[test]
    fn batch_reads_survive_faults() {
        use crate::backend::BatchRead;
        let data: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        let plan = FaultPlan::parse("seed=2,eio=0.3").unwrap();
        let dev = Device::with_fault_plan(DeviceProfile::dram(), DelayMode::Accounting, plan);
        let store = NvmStore::new(DramBackend::new(data.clone()), dev.clone());
        let mut b1 = [0u8; 8];
        let mut b2 = [0u8; 16];
        let mut reqs = [
            BatchRead {
                offset: 0,
                buf: &mut b1,
            },
            BatchRead {
                offset: 100,
                buf: &mut b2,
            },
        ];
        store.read_batch_at(&mut reqs).unwrap();
        assert_eq!(&b1[..], &data[0..8]);
        assert_eq!(&b2[..], &data[100..116]);
    }

    #[test]
    fn identical_plans_inject_identical_fault_sequences() {
        let run = || {
            let data: Vec<u8> = vec![7u8; 256 * 4096];
            let plan = FaultPlan::parse("seed=9,eio=0.1,corrupt=0.05,stall=0.05").unwrap();
            let dev = Device::with_fault_plan(DeviceProfile::dram(), DelayMode::Accounting, plan);
            let integrity = Arc::new(PageIntegrity::seal_bytes(&data));
            let store =
                NvmStore::new(DramBackend::new(data), dev.clone()).with_integrity(integrity);
            let mut buf = [0u8; 512];
            for i in 0..500u64 {
                let off = (i * 37) % (256 * 4096 - 512);
                store.read_at(off, &mut buf).unwrap();
            }
            dev.faults().unwrap().snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.total() > 20);
    }

    #[test]
    fn stall_occupies_the_device_timeline() {
        let plan = FaultPlan::parse("seed=1,stall=1,stall_us=500").unwrap();
        let dev = Device::with_fault_plan(DeviceProfile::dram(), DelayMode::Accounting, plan);
        let store = NvmStore::new(DramBackend::new(vec![0u8; 4096]), dev.clone());
        let before = dev.busy_until_ns.load(Ordering::Relaxed);
        let mut buf = [0u8; 64];
        store.read_at(0, &mut buf).unwrap();
        let after = dev.busy_until_ns.load(Ordering::Relaxed);
        assert!(
            after - before >= 500_000,
            "stall must reserve its duration on the busy horizon"
        );
        assert_eq!(dev.faults().unwrap().snapshot().stall, 1);
    }

    #[test]
    fn wear_out_degrades_service_up_to_the_cap() {
        // 1 MiB horizon so a few reads wear the device measurably.
        let plan = FaultPlan {
            wear_gb: 1.0 / 1024.0,
            ..Default::default()
        };
        let dev =
            Device::with_fault_plan(DeviceProfile::intel_ssd_320(), DelayMode::Accounting, plan);
        assert_eq!(dev.wear_factor(), 1.0);
        let fresh = DeviceProfile::intel_ssd_320().service_ns(4096);
        let before = dev.snapshot();
        dev.read_request(4096);
        let d0 = dev.snapshot().delta(&before);
        assert_eq!(d0.service_ns, fresh, "fresh device serves at profile speed");
        // Serve 4 MiB: wear factor hits the 4× cap.
        for _ in 0..1024 {
            dev.read_request(4096);
        }
        assert_eq!(dev.wear_factor(), MAX_WEAR_FACTOR);
        let before = dev.snapshot();
        dev.read_request(4096);
        let d1 = dev.snapshot().delta(&before);
        assert_eq!(d1.service_ns, (fresh as f64 * MAX_WEAR_FACTOR) as u64);
    }

    #[test]
    fn health_degrades_device_under_sustained_faults() {
        let plan = FaultPlan::parse("seed=4,eio=0.5,degrade=0.2").unwrap();
        let dev = Device::with_fault_plan(DeviceProfile::dram(), DelayMode::Accounting, plan);
        let store = NvmStore::new(DramBackend::new(vec![0u8; 1 << 20]), dev.clone());
        assert!(!dev.is_degraded());
        let mut buf = [0u8; 64];
        for i in 0..200u64 {
            let _ = store.read_at(i * 4096, &mut buf);
        }
        assert!(dev.is_degraded());
    }

    #[test]
    fn reset_stats_clears_but_device_still_works() {
        let dev = Device::new(DeviceProfile::dram(), DelayMode::Accounting);
        dev.read_request(512);
        dev.reset_stats();
        assert_eq!(dev.snapshot().requests, 0);
        dev.read_request(512);
        assert_eq!(dev.snapshot().requests, 1);
    }
}
