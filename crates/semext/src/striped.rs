//! Multi-device striping (DESIGN.md §7.5).
//!
//! The paper's testbed isolates the edge list and the CSR files on
//! different devices (§VI-D) and names "performance studies on various
//! NVM devices" as future work. [`StripedStore`] takes that one step
//! further: a single logical byte region striped across several stores in
//! fixed-size stripes (RAID-0 style), so one graph file can be served by
//! multiple simulated devices in parallel — each stripe's request lands
//! on, and is accounted to, its owning device.

use crate::backend::ReadAt;
use crate::error::{Error, Result};

/// A RAID-0-style concatenation of equal roles: byte `b` lives on store
/// `(b / stripe) % stores` at offset `(b / (stripe * k)) * stripe + b % stripe`.
#[derive(Debug)]
pub struct StripedStore<R> {
    stores: Vec<R>,
    stripe: u64,
    len: u64,
}

impl<R: ReadAt> StripedStore<R> {
    /// Stripe `stores` with the given stripe size in bytes.
    ///
    /// The logical length is the sum of the store lengths; the layout
    /// requires every store except the last to be "full" relative to the
    /// stripe pattern, which is guaranteed for [`split_striped`]-produced
    /// images.
    ///
    /// # Panics
    /// Panics when `stores` is empty or `stripe` is zero.
    pub fn new(stores: Vec<R>, stripe: u64) -> Self {
        assert!(!stores.is_empty(), "need at least one store");
        assert!(stripe > 0, "stripe size must be positive");
        let len = stores.iter().map(|s| s.len()).sum();
        Self {
            stores,
            stripe,
            len,
        }
    }

    /// Number of member stores.
    pub fn num_stores(&self) -> usize {
        self.stores.len()
    }

    /// The stripe size in bytes.
    pub fn stripe(&self) -> u64 {
        self.stripe
    }

    /// Member store `i`.
    pub fn store(&self, i: usize) -> &R {
        &self.stores[i]
    }

    /// Locate logical byte `b`: `(store_index, store_offset)`.
    #[inline]
    fn locate(&self, b: u64) -> (usize, u64) {
        let k = self.stores.len() as u64;
        let stripe_no = b / self.stripe;
        let within = b % self.stripe;
        let store = (stripe_no % k) as usize;
        let local_stripe = stripe_no / k;
        (store, local_stripe * self.stripe + within)
    }
}

impl<R: ReadAt> ReadAt for StripedStore<R> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let end = offset
            .checked_add(buf.len() as u64)
            .ok_or(Error::OutOfBounds {
                offset,
                len: buf.len() as u64,
                size: self.len,
            })?;
        if end > self.len {
            return Err(Error::OutOfBounds {
                offset,
                len: buf.len() as u64,
                size: self.len,
            });
        }
        let mut pos = 0usize;
        while pos < buf.len() {
            let logical = offset + pos as u64;
            let (store, local) = self.locate(logical);
            let stripe_remaining = self.stripe - (logical % self.stripe);
            let take = (stripe_remaining as usize).min(buf.len() - pos);
            self.stores[store].read_at(local, &mut buf[pos..pos + take])?;
            pos += take;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// Split `data` into `k` per-device images with the given stripe size
/// (the write-side counterpart of [`StripedStore`]).
pub fn split_striped(data: &[u8], k: usize, stripe: usize) -> Vec<Vec<u8>> {
    assert!(k > 0 && stripe > 0);
    let mut out = vec![Vec::new(); k];
    for (i, chunk) in data.chunks(stripe).enumerate() {
        out[i % k].extend_from_slice(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DramBackend;
    use crate::device::{DelayMode, Device, DeviceProfile, NvmStore};

    fn build(k: usize, stripe: usize, total: usize) -> (Vec<u8>, StripedStore<DramBackend>) {
        let data: Vec<u8> = (0..total).map(|i| (i * 131 % 251) as u8).collect();
        let images = split_striped(&data, k, stripe);
        let stores = images.into_iter().map(DramBackend::new).collect();
        (data, StripedStore::new(stores, stripe as u64))
    }

    #[test]
    fn reads_match_unstriped_source() {
        let (data, striped) = build(3, 128, 10_000);
        assert_eq!(striped.len(), 10_000);
        for (off, len) in [
            (0usize, 1usize),
            (127, 2),
            (128, 128),
            (5_000, 3_000),
            (9_999, 1),
        ] {
            let mut buf = vec![0u8; len];
            striped.read_at(off as u64, &mut buf).unwrap();
            assert_eq!(&buf[..], &data[off..off + len], "off {off} len {len}");
        }
    }

    #[test]
    fn single_store_is_passthrough() {
        let (data, striped) = build(1, 64, 1_000);
        let mut buf = vec![0u8; 1_000];
        striped.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (_, striped) = build(2, 64, 500);
        let mut buf = vec![0u8; 10];
        assert!(striped.read_at(495, &mut buf).is_err());
    }

    #[test]
    fn requests_spread_across_devices() {
        // Bind each stripe image to its own simulated device and verify a
        // long scan touches them all.
        let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 256) as u8).collect();
        let images = split_striped(&data, 4, 4096);
        let devices: Vec<_> = (0..4)
            .map(|_| Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting))
            .collect();
        let stores: Vec<_> = images
            .into_iter()
            .zip(&devices)
            .map(|(img, dev)| NvmStore::new(DramBackend::new(img), dev.clone()))
            .collect();
        let striped = StripedStore::new(stores, 4096);
        let mut buf = vec![0u8; 64 * 1024];
        striped.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[..]);
        for (i, d) in devices.iter().enumerate() {
            let snap = d.snapshot();
            assert_eq!(snap.requests, 4, "device {i}");
            assert_eq!(snap.bytes, 16 * 1024, "device {i}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary windows of a striped store equal the flat source.
            #[test]
            fn striped_window_roundtrip(
                total in 1usize..5000,
                k in 1usize..6,
                stripe in 1usize..512,
                off in 0usize..5000,
                len in 0usize..1024,
            ) {
                prop_assume!(off < total);
                let len = len.min(total - off);
                let (data, striped) = build(k, stripe, total);
                let mut buf = vec![0u8; len];
                striped.read_at(off as u64, &mut buf).unwrap();
                prop_assert_eq!(&buf[..], &data[off..off + len]);
            }
        }
    }
}
