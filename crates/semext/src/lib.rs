//! Semi-external memory layer for `sembfs`.
//!
//! The paper offloads the forward CSR graph (and optionally the tail of the
//! backward graph) from DRAM to NVM devices — a FusionIO ioDrive2 PCIe
//! flash card and an Intel SSD 320 — and reads it back on demand in ≤4 KiB
//! chunks through the POSIX `read(2)` API (§V). This crate provides that
//! storage layer, plus the **device substitution** required for the
//! reproduction: we do not have 2013-era NVM hardware, so reads can be
//! routed through a [`Device`] model that imposes calibrated service times
//! (seek overhead, bandwidth, IOPS ceiling) on a shared device timeline and
//! records the same `iostat` quantities the paper reports (`avgqu-sz` in
//! Fig. 12, `avgrq-sz` in Fig. 13).
//!
//! Layers, bottom-up:
//!
//! * [`ReadAt`] — positional-read trait; [`DramBackend`], [`FileBackend`]
//!   (pread-style), [`MmapBackend`] implement it.
//! * [`Device`] / [`DeviceProfile`] — the simulated NVM: every request
//!   reserves `max(bytes/bandwidth, 1/IOPS, overhead)` on an atomic device
//!   timeline; in [`DelayMode::Throttled`] the caller really waits until
//!   its modeled completion time (so wall-clock TEPS shapes are honest),
//!   in [`DelayMode::Accounting`] only the statistics are kept.
//! * [`NvmStore`] — a backend bound to a device; all reads are metered.
//! * [`ChunkedReader`] — the paper's access path: application-level ≤4 KiB
//!   chunk reads with kernel-style merging of contiguous chunks into
//!   larger device requests.
//! * [`ExtArray`] / [`ExtCsr`] — typed little-endian arrays and CSR
//!   index/value file pairs stored on external memory.
//! * [`TempDir`] — scratch-directory utility for tests, examples, benches.

pub mod backend;
pub mod cache;
pub mod chunked;
pub mod device;
pub mod error;
pub mod ext_array;
pub mod ext_csr;
pub mod fault;
pub mod iostat;
pub mod shard_cache;
pub mod striped;
pub mod tempdir;

pub use backend::{BatchRead, DramBackend, FileBackend, MmapBackend, ReadAt};
pub use cache::{CachedStore, PageCache};
pub use chunked::ChunkedReader;
pub use device::{DelayMode, Device, DeviceProfile, NvmStore};
pub use error::{Error, Result};
pub use ext_array::ExtArray;
pub use ext_csr::{ExtCsr, NeighborBatch};
pub use fault::{
    retry_blocking, Backoff, DeviceHealth, FaultKind, FaultPlan, FaultSnapshot, FaultState,
    PageIntegrity, RetryPolicy,
};
pub use iostat::{CacheSnapshot, IoSnapshot, IoStats};
pub use shard_cache::{PagePin, ShardedCachedStore, ShardedPageCache};
pub use striped::StripedStore;
pub use tempdir::TempDir;

/// The application-level chunk size the paper uses for NVM reads (§V-B1):
/// "our current implementation reads a continuous region for a vertex at
/// 4KB chunks by using POSIX read(2) API".
pub const APP_CHUNK_BYTES: usize = 4096;

/// Disk sector size used for `avgrq-sz` accounting (iostat reports request
/// sizes in 512-byte sectors).
pub const SECTOR_BYTES: u64 = 512;
