//! `iostat`-style request statistics for simulated NVM devices.
//!
//! The paper analyzes device behaviour during BFS with `iostat` (§VI-D):
//! `avgqu-sz` — the average queue length of outstanding requests — and
//! `avgrq-sz` — the average request size in 512-byte sectors. We compute
//! both exactly from per-request records instead of periodic sampling:
//!
//! * `avgrq-sz = total_sectors / requests` (identical to iostat's
//!   definition).
//! * `avgqu-sz = Σ response_time / observed_wall_time`, which is iostat's
//!   `aqu-sz` (derived from Little's law: average number in system equals
//!   arrival rate times mean response time).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::SECTOR_BYTES;

/// Monotonic, thread-safe accumulation of request statistics.
///
/// All counters use relaxed atomics: per-request accuracy matters, cross-
/// counter ordering does not (snapshots are approximate at nanosecond
/// granularity, exactly like iostat's sampling).
#[derive(Debug, Default)]
pub struct IoStats {
    requests: AtomicU64,
    bytes: AtomicU64,
    sectors: AtomicU64,
    /// Σ (completion − arrival) per request, nanoseconds.
    response_ns: AtomicU64,
    /// Σ modeled device service time per request, nanoseconds.
    service_ns: AtomicU64,
    /// Earliest arrival seen (ns since device epoch); `u64::MAX` when none.
    first_arrival_ns: AtomicU64,
    /// Latest completion seen (ns since device epoch).
    last_completion_ns: AtomicU64,
    /// Σ queue length observed at arrival (requests ahead of this one).
    queued_at_arrival: AtomicU64,
}

impl IoStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        let s = Self::default();
        s.first_arrival_ns.store(u64::MAX, Ordering::Relaxed);
        s
    }

    /// Record one completed request.
    ///
    /// `arrival_ns`/`completion_ns` are on the owning device's clock,
    /// `service_ns` is the modeled device busy time, and `queue_ahead` is
    /// the number of whole requests that were already reserved on the
    /// device timeline when this one arrived.
    pub fn record(
        &self,
        bytes: u64,
        arrival_ns: u64,
        completion_ns: u64,
        service_ns: u64,
        queue_ahead: u64,
    ) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.sectors
            .fetch_add(bytes.div_ceil(SECTOR_BYTES), Ordering::Relaxed);
        self.response_ns
            .fetch_add(completion_ns.saturating_sub(arrival_ns), Ordering::Relaxed);
        self.service_ns.fetch_add(service_ns, Ordering::Relaxed);
        self.first_arrival_ns
            .fetch_min(arrival_ns, Ordering::Relaxed);
        self.last_completion_ns
            .fetch_max(completion_ns, Ordering::Relaxed);
        self.queued_at_arrival
            .fetch_add(queue_ahead, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            sectors: self.sectors.load(Ordering::Relaxed),
            response_ns: self.response_ns.load(Ordering::Relaxed),
            service_ns: self.service_ns.load(Ordering::Relaxed),
            first_arrival_ns: self.first_arrival_ns.load(Ordering::Relaxed),
            last_completion_ns: self.last_completion_ns.load(Ordering::Relaxed),
            queued_at_arrival: self.queued_at_arrival.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to the freshly-created state.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.sectors.store(0, Ordering::Relaxed);
        self.response_ns.store(0, Ordering::Relaxed);
        self.service_ns.store(0, Ordering::Relaxed);
        self.first_arrival_ns.store(u64::MAX, Ordering::Relaxed);
        self.last_completion_ns.store(0, Ordering::Relaxed);
        self.queued_at_arrival.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`] with the derived iostat metrics.
///
/// Subtract two snapshots (`later.delta(&earlier)`) to get the statistics
/// of an interval — e.g. a single BFS level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Completed requests.
    pub requests: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total 512-byte sectors transferred (per-request ceiling).
    pub sectors: u64,
    /// Σ per-request response time (queue wait + service), ns.
    pub response_ns: u64,
    /// Σ per-request modeled service time, ns.
    pub service_ns: u64,
    /// Earliest arrival in the window (device clock, ns).
    pub first_arrival_ns: u64,
    /// Latest completion in the window (device clock, ns).
    pub last_completion_ns: u64,
    /// Σ requests already queued at each arrival.
    pub queued_at_arrival: u64,
}

impl IoSnapshot {
    /// Average request size in 512-byte sectors (`avgrq-sz`); 0 when idle.
    pub fn avgrq_sz(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.sectors as f64 / self.requests as f64
        }
    }

    /// Average queue length (`avgqu-sz` / `aqu-sz`): total response time
    /// divided by the observed wall time of the window; 0 when idle.
    pub fn avgqu_sz(&self) -> f64 {
        let wall = self.wall_ns();
        if wall == 0 {
            0.0
        } else {
            self.response_ns as f64 / wall as f64
        }
    }

    /// Mean queue length seen by an arriving request (an alternative
    /// arrival-sampled estimate of queue pressure).
    pub fn mean_queue_at_arrival(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queued_at_arrival as f64 / self.requests as f64
        }
    }

    /// Mean per-request response time (`await`) in milliseconds.
    pub fn await_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.response_ns as f64 / self.requests as f64 / 1e6
        }
    }

    /// Observed wall time of the window in nanoseconds (0 when idle).
    pub fn wall_ns(&self) -> u64 {
        if self.requests == 0 || self.first_arrival_ns == u64::MAX {
            0
        } else {
            self.last_completion_ns
                .saturating_sub(self.first_arrival_ns)
        }
    }

    /// Device utilization estimate in `[0, 1]` (`%util / 100`).
    pub fn utilization(&self) -> f64 {
        let wall = self.wall_ns();
        if wall == 0 {
            0.0
        } else {
            (self.service_ns as f64 / wall as f64).min(1.0)
        }
    }

    /// Throughput in MiB/s over the window; 0 when idle.
    pub fn throughput_mib_s(&self) -> f64 {
        let wall = self.wall_ns();
        if wall == 0 {
            0.0
        } else {
            (self.bytes as f64 / (1 << 20) as f64) / (wall as f64 / 1e9)
        }
    }

    /// Counter-wise difference `self − earlier` (window statistics).
    ///
    /// The window's `first_arrival_ns` is taken as the earlier snapshot's
    /// last completion (the start of the interval). Differences saturate:
    /// when the two snapshots race concurrent recorders the window can
    /// observe an "earlier" snapshot taken mid-update, and a clamped zero
    /// beats a debug-mode underflow panic.
    pub fn delta(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            requests: self.requests.saturating_sub(earlier.requests),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            sectors: self.sectors.saturating_sub(earlier.sectors),
            response_ns: self.response_ns.saturating_sub(earlier.response_ns),
            service_ns: self.service_ns.saturating_sub(earlier.service_ns),
            first_arrival_ns: if earlier.requests == 0 {
                self.first_arrival_ns
            } else {
                earlier.last_completion_ns
            },
            last_completion_ns: self.last_completion_ns,
            queued_at_arrival: self
                .queued_at_arrival
                .saturating_sub(earlier.queued_at_arrival),
        }
    }
}

/// Point-in-time counters of a page cache
/// ([`ShardedPageCache`](crate::ShardedPageCache)).
///
/// Like [`IoSnapshot`], snapshots are monotonic and meant to be windowed:
/// `after.delta(&before)` yields the activity of one BFS level or one
/// benchmark phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Demand lookups served from a cached page.
    pub hits: u64,
    /// Demand lookups that had to go to the backing store.
    pub misses: u64,
    /// Filled pages displaced by CLOCK replacement.
    pub evictions: u64,
    /// Pages loaded ahead of demand (sequential readahead + explicit
    /// prefetch), not counted in `hits`/`misses`.
    pub readahead_pages: u64,
}

impl CacheSnapshot {
    /// Demand lookups observed (`hits + misses`).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Demand hit rate in `[0, 1]` (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference `self − earlier` (windowed view). Saturating for
    /// the same reason as [`IoSnapshot::delta`]: sharded cache snapshots
    /// are not a single atomic read, so a window bound taken while other
    /// threads charge counters can transiently run "ahead" per-field.
    pub fn delta(&self, earlier: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            readahead_pages: self.readahead_pages.saturating_sub(earlier.readahead_pages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_accounting_rounds_up() {
        let s = IoStats::new();
        s.record(1, 0, 10, 10, 0); // 1 byte → 1 sector
        s.record(512, 10, 20, 10, 0); // exactly 1 sector
        s.record(513, 20, 30, 10, 0); // 2 sectors
        let snap = s.snapshot();
        assert_eq!(snap.sectors, 4);
        assert_eq!(snap.requests, 3);
        assert!((snap.avgrq_sz() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn avgqu_sz_is_littles_law() {
        let s = IoStats::new();
        // Two overlapping requests over a 100ns window, each 80ns response:
        // aqu-sz = 160/100 = 1.6.
        s.record(4096, 0, 80, 40, 0);
        s.record(4096, 20, 100, 40, 1);
        let snap = s.snapshot();
        assert_eq!(snap.wall_ns(), 100);
        assert!((snap.avgqu_sz() - 1.6).abs() < 1e-12);
        assert!((snap.mean_queue_at_arrival() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_snapshot_is_all_zero() {
        let snap = IoStats::new().snapshot();
        assert_eq!(snap.avgrq_sz(), 0.0);
        assert_eq!(snap.avgqu_sz(), 0.0);
        assert_eq!(snap.wall_ns(), 0);
        assert_eq!(snap.utilization(), 0.0);
        assert_eq!(snap.throughput_mib_s(), 0.0);
    }

    #[test]
    fn delta_isolates_window() {
        let s = IoStats::new();
        s.record(4096, 0, 50, 50, 0);
        let before = s.snapshot();
        s.record(8192, 100, 200, 80, 0);
        s.record(4096, 150, 260, 60, 1);
        let d = s.snapshot().delta(&before);
        assert_eq!(d.requests, 2);
        assert_eq!(d.bytes, 12288);
        assert_eq!(d.first_arrival_ns, 50); // window starts at prior completion
        assert_eq!(d.last_completion_ns, 260);
        assert_eq!(d.queued_at_arrival, 1);
    }

    #[test]
    fn racy_window_bounds_saturate_instead_of_underflowing() {
        // An "earlier" snapshot observed mid-update can be per-field ahead
        // of a later one; the delta must clamp to zero, not panic.
        let ahead = IoSnapshot {
            requests: 5,
            bytes: 5 * 4096,
            sectors: 40,
            response_ns: 500,
            service_ns: 250,
            first_arrival_ns: 0,
            last_completion_ns: 90,
            queued_at_arrival: 3,
        };
        let behind = IoSnapshot {
            requests: 4,
            ..ahead
        };
        let d = behind.delta(&ahead);
        assert_eq!(d.requests, 0);
        assert_eq!(d.bytes, 0);
        let c_ahead = CacheSnapshot {
            hits: 10,
            misses: 4,
            evictions: 2,
            readahead_pages: 1,
        };
        let c_behind = CacheSnapshot { hits: 9, ..c_ahead };
        let cd = c_behind.delta(&c_ahead);
        assert_eq!(cd.hits, 0);
        assert_eq!(cd.misses, 0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let s = IoStats::new();
        s.record(100, 5, 10, 5, 2);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.first_arrival_ns, u64::MAX);
        assert_eq!(snap.wall_ns(), 0);
    }

    #[test]
    fn utilization_capped_at_one() {
        let s = IoStats::new();
        // service exceeds wall (parallel overlapping service): cap at 1.
        s.record(4096, 0, 10, 100, 0);
        assert_eq!(s.snapshot().utilization(), 1.0);
    }

    #[test]
    fn await_ms_mean() {
        let s = IoStats::new();
        s.record(1, 0, 2_000_000, 1, 0); // 2 ms response
        s.record(1, 0, 4_000_000, 1, 0); // 4 ms response
        assert!((s.snapshot().await_ms() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let s = std::sync::Arc::new(IoStats::new());
        let mut hs = Vec::new();
        for t in 0..4 {
            let s = s.clone();
            hs.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let at = t * 1000 + i;
                    s.record(512, at, at + 10, 10, 0);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.requests, 4000);
        assert_eq!(snap.sectors, 4000);
        assert_eq!(snap.response_ns, 40_000);
    }
}
