//! Typed little-endian arrays on external storage.
//!
//! The offloaded graph structures are flat arrays of fixed-width integers
//! (CSR index entries are `u64`, vertex IDs are `u32`, edge tuples are
//! `u64` pairs). [`ExtArray`] gives typed access to such an array stored in
//! any [`ReadAt`] region, with an explicit little-endian encoding so files
//! are portable and no unsafe transmutes are needed.

use std::marker::PhantomData;
use std::path::Path;

use crate::backend::ReadAt;
use crate::error::{Error, Result};

/// Fixed-width little-endian encodable element types.
pub trait LeBytes: Copy + Send + Sync + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Decode from exactly [`Self::SIZE`] bytes.
    fn read_le(bytes: &[u8]) -> Self;

    /// Encode into exactly [`Self::SIZE`] bytes.
    fn write_le(self, out: &mut [u8]);
}

macro_rules! impl_le_bytes {
    ($($t:ty),*) => {$(
        impl LeBytes for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("exact-width slice"))
            }

            #[inline]
            fn write_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
        }
    )*};
}

impl_le_bytes!(u8, u16, u32, u64, i32, i64);

/// A typed array of `T` stored in a [`ReadAt`] region.
#[derive(Debug)]
pub struct ExtArray<T, R> {
    store: R,
    len: u64,
    _marker: PhantomData<fn() -> T>,
}

impl<T: LeBytes, R: ReadAt> ExtArray<T, R> {
    /// Interpret `store` as an array of `T`.
    ///
    /// Fails with [`Error::Corrupt`] when the store size is not a multiple
    /// of `T::SIZE`.
    pub fn new(store: R) -> Result<Self> {
        let bytes = store.len();
        if !bytes.is_multiple_of(T::SIZE as u64) {
            return Err(Error::Corrupt(format!(
                "store of {bytes} bytes is not a whole number of {}-byte elements",
                T::SIZE
            )));
        }
        Ok(Self {
            store,
            len: bytes / T::SIZE as u64,
            _marker: PhantomData,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte offset of element `i`.
    #[inline]
    pub fn byte_offset(&self, i: u64) -> u64 {
        i * T::SIZE as u64
    }

    /// Read element `i` (one storage request).
    pub fn get(&self, i: u64) -> Result<T> {
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::SIZE];
        self.store.read_at(self.byte_offset(i), buf)?;
        Ok(T::read_le(buf))
    }

    /// Read elements `i` and `i+1` with a single storage request — the
    /// paper's index-array access pattern (`index[v]`, `index[v+1]` fetched
    /// together to bound a neighbor span).
    pub fn get_pair(&self, i: u64) -> Result<(T, T)> {
        let mut buf = [0u8; 32];
        let buf = &mut buf[..2 * T::SIZE];
        self.store.read_at(self.byte_offset(i), buf)?;
        Ok((T::read_le(&buf[..T::SIZE]), T::read_le(&buf[T::SIZE..])))
    }

    /// Read `out.len()` elements starting at `start` using a scratch byte
    /// buffer (one storage request).
    pub fn read_slice(&self, start: u64, out: &mut [T], scratch: &mut Vec<u8>) -> Result<()> {
        let bytes = out.len() * T::SIZE;
        scratch.clear();
        scratch.resize(bytes, 0);
        self.store.read_at(self.byte_offset(start), scratch)?;
        for (i, chunk) in scratch.chunks_exact(T::SIZE).enumerate() {
            out[i] = T::read_le(chunk);
        }
        Ok(())
    }

    /// Read the whole array into a `Vec` (for loading an index into DRAM).
    pub fn read_all(&self) -> Result<Vec<T>> {
        let mut out = vec![T::read_le(&vec![0u8; T::SIZE]); self.len as usize];
        let mut scratch = Vec::new();
        if !out.is_empty() {
            self.read_slice(0, &mut out, &mut scratch)?;
        }
        Ok(out)
    }

    /// Access the underlying store.
    pub fn store(&self) -> &R {
        &self.store
    }

    /// Scrub the whole array against sealed page checksums: every page is
    /// read back through the store and verified. Returns the first
    /// [`Error::ChecksumMismatch`] found. Reads are charged to the
    /// store's device like any other access — a scrub is real I/O.
    pub fn verify_integrity(&self, integrity: &crate::fault::PageIntegrity) -> Result<()> {
        use crate::cache::PAGE_BYTES;
        let bytes = self.len * T::SIZE as u64;
        if bytes != integrity.len() {
            return Err(Error::Corrupt(format!(
                "integrity sealed over {} bytes but array holds {bytes}",
                integrity.len()
            )));
        }
        let mut buf = vec![0u8; PAGE_BYTES as usize];
        let mut off = 0u64;
        while off < bytes {
            let take = (bytes - off).min(PAGE_BYTES) as usize;
            self.store.read_at(off, &mut buf[..take])?;
            integrity.verify(off / PAGE_BYTES, &buf[..take])?;
            off += take as u64;
        }
        Ok(())
    }
}

/// Decode a byte buffer into elements of `T`, appending to `out`.
///
/// `bytes.len()` must be a multiple of `T::SIZE`.
pub fn decode_into<T: LeBytes>(bytes: &[u8], out: &mut Vec<T>) {
    debug_assert_eq!(bytes.len() % T::SIZE, 0);
    out.reserve(bytes.len() / T::SIZE);
    for chunk in bytes.chunks_exact(T::SIZE) {
        out.push(T::read_le(chunk));
    }
}

/// Write `items` to `path` as a little-endian array file. Returns the
/// number of bytes written. This is the "offload to NVM" write path.
pub fn write_array_file<T: LeBytes>(path: impl AsRef<Path>, items: &[T]) -> Result<u64> {
    use std::io::Write;
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
    let mut buf = [0u8; 16];
    for item in items {
        item.write_le(&mut buf[..T::SIZE]);
        w.write_all(&buf[..T::SIZE])?;
    }
    w.flush()?;
    Ok(items.len() as u64 * T::SIZE as u64)
}

/// Stream-write elements produced by `iter` to `path`. Returns the element
/// count. Used when the data is too large to materialize (external edge
/// lists).
pub fn write_array_stream<T: LeBytes>(
    path: impl AsRef<Path>,
    iter: impl Iterator<Item = T>,
) -> Result<u64> {
    use std::io::Write;
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
    let mut buf = [0u8; 16];
    let mut n = 0u64;
    for item in iter {
        item.write_le(&mut buf[..T::SIZE]);
        w.write_all(&buf[..T::SIZE])?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DramBackend, FileBackend};
    use crate::tempdir::TempDir;

    fn dram_of<T: LeBytes>(items: &[T]) -> ExtArray<T, DramBackend> {
        let mut bytes = vec![0u8; items.len() * T::SIZE];
        for (i, item) in items.iter().enumerate() {
            item.write_le(&mut bytes[i * T::SIZE..(i + 1) * T::SIZE]);
        }
        ExtArray::new(DramBackend::new(bytes)).unwrap()
    }

    #[test]
    fn get_roundtrip_u64() {
        let items: Vec<u64> = (0..100).map(|i| i * 1_000_000_007).collect();
        let arr = dram_of(&items);
        assert_eq!(arr.len(), 100);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(arr.get(i as u64).unwrap(), v);
        }
    }

    #[test]
    fn get_pair_matches_two_gets() {
        let items: Vec<u32> = (0..50).map(|i| i * 7 + 3).collect();
        let arr = dram_of(&items);
        for i in 0..49u64 {
            let (a, b) = arr.get_pair(i).unwrap();
            assert_eq!(a, arr.get(i).unwrap());
            assert_eq!(b, arr.get(i + 1).unwrap());
        }
    }

    #[test]
    fn read_slice_matches_items() {
        let items: Vec<u32> = (0..1000).map(|i| i ^ 0xABCD).collect();
        let arr = dram_of(&items);
        let mut out = vec![0u32; 100];
        let mut scratch = Vec::new();
        arr.read_slice(500, &mut out, &mut scratch).unwrap();
        assert_eq!(&out[..], &items[500..600]);
    }

    #[test]
    fn read_all_roundtrip() {
        let items: Vec<i64> = (-500..500).collect();
        let arr = dram_of(&items);
        assert_eq!(arr.read_all().unwrap(), items);
    }

    #[test]
    fn verify_integrity_scrubs_and_reports_torn_pages() {
        use crate::fault::PageIntegrity;
        let items: Vec<u64> = (0..2000).map(|i| i * 31 + 7).collect();
        let mut bytes = vec![0u8; items.len() * 8];
        for (i, item) in items.iter().enumerate() {
            item.write_le(&mut bytes[i * 8..(i + 1) * 8]);
        }
        let integrity = PageIntegrity::seal_bytes(&bytes);
        let arr = ExtArray::<u64, _>::new(DramBackend::new(bytes.clone())).unwrap();
        arr.verify_integrity(&integrity).unwrap();

        // Tear a byte on page 2: the scrub reports that page.
        bytes[2 * 4096 + 5] ^= 0x80;
        let torn = ExtArray::<u64, _>::new(DramBackend::new(bytes)).unwrap();
        match torn.verify_integrity(&integrity) {
            Err(Error::ChecksumMismatch { page, .. }) => assert_eq!(page, 2),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }

        // Length mismatch is a structural error, not a checksum one.
        let short = ExtArray::<u64, _>::new(DramBackend::new(vec![0u8; 8])).unwrap();
        assert!(matches!(
            short.verify_integrity(&integrity),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn misaligned_store_rejected() {
        let store = DramBackend::new(vec![0u8; 7]);
        assert!(matches!(
            ExtArray::<u32, _>::new(store),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn empty_array_ok() {
        let arr: ExtArray<u64, _> = ExtArray::new(DramBackend::new(vec![])).unwrap();
        assert!(arr.is_empty());
        assert_eq!(arr.read_all().unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn out_of_bounds_get_fails() {
        let arr = dram_of(&[1u32, 2, 3]);
        assert!(arr.get(3).is_err());
        assert!(arr.get_pair(2).is_err());
    }

    #[test]
    fn file_write_read_roundtrip() {
        let dir = TempDir::new("ext-array").unwrap();
        let path = dir.path().join("arr.bin");
        let items: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let bytes = write_array_file(&path, &items).unwrap();
        assert_eq!(bytes, 80_000);
        let arr: ExtArray<u64, _> = ExtArray::new(FileBackend::open(&path).unwrap()).unwrap();
        assert_eq!(arr.read_all().unwrap(), items);
    }

    #[test]
    fn stream_write_matches_slice_write() {
        let dir = TempDir::new("ext-stream").unwrap();
        let a = dir.path().join("a.bin");
        let b = dir.path().join("b.bin");
        let items: Vec<u32> = (0..5000).map(|i| i * 3).collect();
        write_array_file(&a, &items).unwrap();
        let n = write_array_stream(&b, items.iter().copied()).unwrap();
        assert_eq!(n, 5000);
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    }

    #[test]
    fn decode_into_appends() {
        let mut bytes = vec![0u8; 8];
        42u32.write_le(&mut bytes[0..4]);
        7u32.write_le(&mut bytes[4..8]);
        let mut out = vec![1u32];
        decode_into::<u32>(&bytes, &mut out);
        assert_eq!(out, vec![1, 42, 7]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary u64 arrays survive an encode → ExtArray → decode trip.
            #[test]
            fn u64_roundtrip(items in proptest::collection::vec(any::<u64>(), 0..200)) {
                let arr = dram_of(&items);
                prop_assert_eq!(arr.read_all().unwrap(), items);
            }

            /// Any in-bounds slice read matches the source.
            #[test]
            fn slice_read_window(
                items in proptest::collection::vec(any::<u32>(), 1..500),
                start in 0usize..500,
                len in 0usize..500,
            ) {
                prop_assume!(start < items.len());
                let len = len.min(items.len() - start);
                let arr = dram_of(&items);
                let mut out = vec![0u32; len];
                let mut scratch = Vec::new();
                arr.read_slice(start as u64, &mut out, &mut scratch).unwrap();
                prop_assert_eq!(&out[..], &items[start..start + len]);
            }
        }
    }
}
