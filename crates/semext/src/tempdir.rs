//! Minimal scratch-directory utility (avoids a `tempfile` dependency).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::Result;

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named directory under the system temp dir, removed on drop.
///
/// Used by tests, examples, and benches to stage the "NVM" files that hold
/// offloaded graph data.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    keep: bool,
}

impl TempDir {
    /// Create a fresh directory whose name contains `label`, the process
    /// id, and a per-process counter (so parallel tests never collide).
    pub fn new(label: &str) -> Result<Self> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("sembfs-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(Self { path, keep: false })
    }

    /// Create a temp dir rooted at `base` instead of the system temp dir.
    /// Useful for pointing the "NVM" files at a specific mount.
    pub fn new_in(base: impl AsRef<Path>, label: &str) -> Result<Self> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base
            .as_ref()
            .join(format!("sembfs-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(Self { path, keep: false })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disable removal on drop (for post-mortem inspection).
    pub fn keep(&mut self) {
        self.keep = true;
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let p;
        {
            let d = TempDir::new("unit").unwrap();
            p = d.path().to_path_buf();
            assert!(p.is_dir());
            std::fs::write(p.join("x"), b"hello").unwrap();
        }
        assert!(!p.exists());
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = TempDir::new("dup").unwrap();
        let b = TempDir::new("dup").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn keep_preserves_directory() {
        let p;
        {
            let mut d = TempDir::new("kept").unwrap();
            d.keep();
            p = d.path().to_path_buf();
        }
        assert!(p.exists());
        std::fs::remove_dir_all(&p).unwrap();
    }

    #[test]
    fn new_in_respects_base() {
        let base = TempDir::new("base").unwrap();
        let inner = TempDir::new_in(base.path(), "inner").unwrap();
        assert!(inner.path().starts_with(base.path()));
    }
}
