//! A sharded, data-holding page cache for the semi-external forward graph.
//!
//! The single-mutex [`PageCache`](crate::PageCache) model serializes every
//! page probe, which caps the top-down step the moment several workers
//! expand the frontier concurrently — precisely the configuration the
//! paper's semi-external scenarios run in. [`ShardedPageCache`] removes
//! that ceiling with lock striping: pages hash onto a power-of-two number
//! of shards, each an independent CLOCK (second-chance) ring behind its
//! own mutex, so unrelated probes never contend. Unlike the seed cache it
//! also *holds the page bytes*: a hit is served straight from DRAM without
//! touching the backing store, matching what the kernel page cache
//! actually does for the paper's 64 GB machine.
//!
//! [`ShardedCachedStore`] fronts any [`ReadAt`] backend with a shared
//! [`ShardedPageCache`]: demand misses are read from the backend in
//! consecutive-page runs (charged to the device through the store's
//! [`ChunkedReader`] merge limit, like the kernel's plugged request
//! queue), and sequential access patterns trigger readahead of the
//! following pages. In-flight pages are *pinned*: a concurrent reader that
//! races a fill simply falls through to the backend instead of blocking,
//! and CLOCK never evicts a page that is still being filled.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::ReadAt;
use crate::cache::PAGE_BYTES;
use crate::chunked::ChunkedReader;
use crate::device::Device;
use crate::error::Result;
use crate::fault::{self, PageIntegrity};
use crate::iostat::CacheSnapshot;

/// Default shard count: enough stripes that a handful of BFS workers
/// rarely collide, few enough that each shard's CLOCK ring still sees a
/// meaningful share of the working set.
pub const DEFAULT_SHARDS: usize = 8;

/// One cached page.
#[derive(Debug)]
struct Slot {
    key: (u32, u64),
    /// CLOCK reference bit (second chance).
    referenced: bool,
    /// Reserved by an in-flight fill; never evicted, not yet readable.
    pinned: bool,
    /// Holds valid data (lookups only hit filled slots).
    filled: bool,
    data: Box<[u8]>,
}

/// One lock stripe: an independent CLOCK ring over its own slots.
#[derive(Debug)]
struct ClockShard {
    /// `(file, page)` → slot index.
    map: HashMap<(u32, u64), usize>,
    slots: Vec<Slot>,
    hand: usize,
    /// Slots this shard may hold (its share of the cache budget).
    capacity: usize,
}

impl ClockShard {
    /// Claim a slot for `key`, evicting via CLOCK when full. Returns the
    /// slot index and whether a filled page was displaced; `None` when
    /// every slot is pinned.
    fn claim(&mut self, key: (u32, u64)) -> Option<(usize, bool)> {
        if self.slots.len() < self.capacity {
            let slot = self.slots.len();
            self.slots.push(Slot {
                key,
                referenced: false,
                pinned: true,
                filled: false,
                data: vec![0u8; PAGE_BYTES as usize].into_boxed_slice(),
            });
            self.map.insert(key, slot);
            return Some((slot, false));
        }
        // CLOCK sweep: two full passes clear every reference bit, so a
        // victim is found unless all slots are pinned.
        let len = self.slots.len();
        if len == 0 {
            return None; // zero-budget shard (capacity smaller than shard count)
        }
        for _ in 0..2 * len + 1 {
            let hand = self.hand;
            self.hand = (hand + 1) % len;
            let slot = &mut self.slots[hand];
            if slot.pinned {
                continue;
            }
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            let evicted_filled = slot.filled;
            self.map.remove(&slot.key);
            slot.key = key;
            slot.referenced = false;
            slot.pinned = true;
            slot.filled = false;
            self.map.insert(key, hand);
            return Some((hand, evicted_filled));
        }
        None
    }
}

/// Per-shard counters, kept outside the mutex so statistics never extend
/// the critical section.
#[derive(Debug, Default)]
struct ShardStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    readahead: AtomicU64,
}

impl ShardStats {
    fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            readahead_pages: self.readahead.load(Ordering::Relaxed),
        }
    }
}

/// A shared page cache striped over independently locked CLOCK shards.
///
/// ```
/// use sembfs_semext::cache::PAGE_BYTES;
/// use sembfs_semext::ShardedPageCache;
///
/// let cache = ShardedPageCache::with_shards(8 * PAGE_BYTES, 4);
/// let file = cache.register_file();
/// let mut buf = [0u8; 4];
/// assert!(!cache.copy_page(file, 3, 0, &mut buf)); // cold miss
/// if let Some(pin) = cache.reserve(file, 3) {
///     pin.fill(&[7u8; 16]); // short fills are zero-padded
/// }
/// assert!(cache.copy_page(file, 3, 0, &mut buf)); // warm hit, data served
/// assert_eq!(buf, [7u8; 4]);
/// assert_eq!(cache.stats(), (1, 1));
/// ```
#[derive(Debug)]
pub struct ShardedPageCache {
    shards: Vec<Mutex<ClockShard>>,
    stats: Vec<ShardStats>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    capacity_pages: AtomicUsize,
    readahead_pages: AtomicUsize,
    next_file: AtomicU64,
}

impl ShardedPageCache {
    /// A cache of `capacity_bytes` striped over [`DEFAULT_SHARDS`] shards.
    pub fn new(capacity_bytes: u64) -> Arc<Self> {
        Self::with_shards(capacity_bytes, DEFAULT_SHARDS)
    }

    /// A cache of `capacity_bytes` (rounded down to whole pages, at least
    /// one page) striped over `shards` lock stripes (rounded up to a power
    /// of two, at least one).
    pub fn with_shards(capacity_bytes: u64, shards: usize) -> Arc<Self> {
        let shards = shards.max(1).next_power_of_two();
        let capacity_pages = ((capacity_bytes / PAGE_BYTES) as usize).max(1);
        let cache = Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ClockShard {
                        map: HashMap::new(),
                        slots: Vec::new(),
                        hand: 0,
                        capacity: 0,
                    })
                })
                .collect(),
            stats: (0..shards).map(|_| ShardStats::default()).collect(),
            mask: shards as u64 - 1,
            capacity_pages: AtomicUsize::new(capacity_pages),
            readahead_pages: AtomicUsize::new(0),
            next_file: AtomicU64::new(0),
        };
        cache.distribute_capacity(capacity_pages);
        Arc::new(cache)
    }

    /// Spread `total` page slots over the shards (earlier shards absorb
    /// the remainder).
    fn distribute_capacity(&self, total: usize) {
        let n = self.shards.len();
        let base = total / n;
        let rem = total % n;
        for (i, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock();
            shard.capacity = (base + usize::from(i < rem)).max(usize::from(total < n && i == 0));
            // Best-effort shrink: drop unpinned tail slots beyond the new
            // budget (pinned slots are released by their in-flight fills
            // and reused by the CLOCK sweep afterwards).
            while shard.slots.len() > shard.capacity {
                match shard.slots.last() {
                    Some(s) if !s.pinned => {
                        let s = shard.slots.pop().expect("nonempty");
                        shard.map.remove(&s.key);
                        if s.filled {
                            self.stats[i].evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    _ => break,
                }
            }
            if shard.hand >= shard.slots.len() {
                shard.hand = 0;
            }
        }
    }

    fn shard_of(&self, file: u32, page: u64) -> usize {
        // Fibonacci-style mix so consecutive pages spread across shards
        // (a sequential scan touches every stripe, not one).
        let mut x = ((file as u64) << 32 | (file as u64)) ^ page;
        x ^= x >> 33;
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 29;
        (x & self.mask) as usize
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages.load(Ordering::Relaxed)
    }

    /// Re-budget the cache to `capacity_bytes` (rounded down to whole
    /// pages, at least one). Excess resident pages are evicted best-effort
    /// (pinned in-flight pages are released by their fills and reclaimed
    /// by later CLOCK sweeps).
    pub fn set_capacity_bytes(&self, capacity_bytes: u64) {
        let pages = ((capacity_bytes / PAGE_BYTES) as usize).max(1);
        self.capacity_pages.store(pages, Ordering::Relaxed);
        self.distribute_capacity(pages);
    }

    /// Pages to load ahead of a sequential reader (0 disables readahead).
    pub fn readahead_pages(&self) -> usize {
        self.readahead_pages.load(Ordering::Relaxed)
    }

    /// Set the sequential readahead window, in pages.
    pub fn set_readahead_pages(&self, pages: usize) {
        self.readahead_pages.store(pages, Ordering::Relaxed);
    }

    /// Register a file; returns its cache namespace id.
    pub fn register_file(&self) -> u32 {
        self.next_file.fetch_add(1, Ordering::Relaxed) as u32
    }

    /// Demand lookup of `(file, page)`: on a hit, copy
    /// `page[page_offset .. page_offset + dst.len()]` into `dst`, mark the
    /// page referenced, and return `true`. On a miss (absent or still
    /// being filled) return `false` — the caller reads the backend.
    pub fn copy_page(&self, file: u32, page: u64, page_offset: usize, dst: &mut [u8]) -> bool {
        debug_assert!(page_offset + dst.len() <= PAGE_BYTES as usize);
        let si = self.shard_of(file, page);
        {
            let mut shard = self.shards[si].lock();
            if let Some(&slot) = shard.map.get(&(file, page)) {
                let s = &mut shard.slots[slot];
                if s.filled {
                    dst.copy_from_slice(&s.data[page_offset..page_offset + dst.len()]);
                    s.referenced = true;
                    drop(shard);
                    self.stats[si].hits.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
        self.stats[si].misses.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Reserve a pinned slot for `(file, page)` ahead of a fill.
    ///
    /// Returns `None` when the page is already cached or being filled by
    /// another thread, or when every slot of its shard is pinned — in all
    /// three cases the caller just proceeds without caching. Dropping the
    /// returned [`PagePin`] without filling releases the reservation.
    pub fn reserve(&self, file: u32, page: u64) -> Option<PagePin<'_>> {
        let si = self.shard_of(file, page);
        let mut shard = self.shards[si].lock();
        if shard.map.contains_key(&(file, page)) {
            return None;
        }
        let (slot, evicted) = shard.claim((file, page))?;
        drop(shard);
        if evicted {
            self.stats[si].evictions.fetch_add(1, Ordering::Relaxed);
            sembfs_obs::global().instant(sembfs_obs::TraceEvent::CacheEvict { pages: 1 });
        }
        Some(PagePin {
            cache: self,
            shard: si,
            slot,
            key: (file, page),
            filled: false,
        })
    }

    /// Count `pages` pages loaded by readahead/prefetch against the shard
    /// of `(file, page)`.
    fn note_readahead(&self, file: u32, page: u64, pages: u64) {
        let si = self.shard_of(file, page);
        self.stats[si].readahead.fetch_add(pages, Ordering::Relaxed);
    }

    /// `(hits, misses)` so far, summed over shards (the seed
    /// [`PageCache`](crate::PageCache) compatibility view).
    pub fn stats(&self) -> (u64, u64) {
        let s = self.snapshot();
        (s.hits, s.misses)
    }

    /// Demand hit rate in `[0, 1]` (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        self.snapshot().hit_rate()
    }

    /// All counters, summed over shards.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut total = CacheSnapshot::default();
        for s in &self.stats {
            let s = s.snapshot();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.readahead_pages += s.readahead_pages;
        }
        total
    }

    /// Register the cache's aggregate counters as pull-style metrics on a
    /// registry (Prometheus exposition).
    pub fn register_metrics(self: &Arc<Self>, registry: &sembfs_obs::MetricsRegistry) {
        use sembfs_obs::Metric;
        let cache = Arc::clone(self);
        registry.register_source(Box::new(move || {
            let snap = cache.snapshot();
            let labels: &[(&str, &str)] = &[];
            vec![
                Metric::counter("sembfs_cache_hits_total", labels, snap.hits as f64),
                Metric::counter("sembfs_cache_misses_total", labels, snap.misses as f64),
                Metric::counter(
                    "sembfs_cache_evictions_total",
                    labels,
                    snap.evictions as f64,
                ),
                Metric::counter(
                    "sembfs_cache_readahead_pages_total",
                    labels,
                    snap.readahead_pages as f64,
                ),
                Metric::gauge("sembfs_cache_hit_rate", labels, snap.hit_rate()),
                Metric::gauge(
                    "sembfs_cache_resident_pages",
                    labels,
                    cache.resident_pages() as f64,
                ),
            ]
        }));
    }

    /// Per-shard counter snapshots (load-balance diagnostics for the
    /// shard-count ablation).
    pub fn per_shard(&self) -> Vec<CacheSnapshot> {
        self.stats.iter().map(ShardStats::snapshot).collect()
    }

    /// Resident (filled) pages across all shards.
    pub fn resident_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().slots.iter().filter(|s| s.filled).count())
            .sum()
    }
}

/// A reserved, pinned cache slot awaiting its page data.
///
/// Obtained from [`ShardedPageCache::reserve`]; consumed by
/// [`fill`](PagePin::fill). Dropping an unfilled pin releases the slot.
#[must_use = "an unfilled reservation blocks the slot until dropped"]
#[derive(Debug)]
pub struct PagePin<'a> {
    cache: &'a ShardedPageCache,
    shard: usize,
    slot: usize,
    key: (u32, u64),
    filled: bool,
}

impl PagePin<'_> {
    /// Publish `data` as the page's contents (short fills — the file's
    /// last page — are zero-padded) and unpin the slot.
    pub fn fill(mut self, data: &[u8]) {
        debug_assert!(data.len() <= PAGE_BYTES as usize);
        let mut shard = self.cache.shards[self.shard].lock();
        let s = &mut shard.slots[self.slot];
        debug_assert_eq!(s.key, self.key, "pinned slot cannot be reassigned");
        s.data[..data.len()].copy_from_slice(data);
        s.data[data.len()..].fill(0);
        s.filled = true;
        s.pinned = false;
        s.referenced = true;
        self.filled = true;
        drop(shard);
        sembfs_obs::global().instant(sembfs_obs::TraceEvent::CacheFill { pages: 1 });
    }
}

impl Drop for PagePin<'_> {
    fn drop(&mut self) {
        if self.filled {
            return;
        }
        // Abandoned fill: release the slot as an empty eviction candidate.
        let mut shard = self.cache.shards[self.shard].lock();
        let s = &mut shard.slots[self.slot];
        debug_assert_eq!(s.key, self.key, "pinned slot cannot be reassigned");
        s.pinned = false;
        s.filled = false;
        shard.map.remove(&self.key);
    }
}

/// A device-metered store fronted by a shared [`ShardedPageCache`].
///
/// Hits are served from cached page data without touching the backend or
/// the device. Misses are read from the backend in consecutive-page runs
/// and charged to the device through the store's [`ChunkedReader`] merge
/// limit (one request per merged span, like the kernel's plugged queue).
/// When the cache's readahead window is nonzero, a read that continues the
/// previous one sequentially also loads the following pages ahead of
/// demand.
#[derive(Debug)]
pub struct ShardedCachedStore<B> {
    backend: B,
    device: Arc<Device>,
    cache: Arc<ShardedPageCache>,
    reader: ChunkedReader,
    file_id: u32,
    /// First page past the previous demand read (sequential detector).
    last_end_page: AtomicU64,
    /// Sealed per-page checksums; every fill is verified against them, so
    /// a torn or corrupted page can never enter the cache as valid data.
    integrity: Option<Arc<PageIntegrity>>,
}

impl<B: ReadAt> ShardedCachedStore<B> {
    /// Front `backend` with `cache`, metering misses on `device` with the
    /// device's own merge limit.
    pub fn new(backend: B, device: Arc<Device>, cache: Arc<ShardedPageCache>) -> Self {
        let reader = ChunkedReader::for_device(&device);
        Self::with_reader(backend, device, cache, reader)
    }

    /// Same, with an explicit chunk reader for the miss-run splitting.
    pub fn with_reader(
        backend: B,
        device: Arc<Device>,
        cache: Arc<ShardedPageCache>,
        reader: ChunkedReader,
    ) -> Self {
        let file_id = cache.register_file();
        Self {
            backend,
            device,
            cache,
            reader,
            file_id,
            last_end_page: AtomicU64::new(u64::MAX),
            integrity: None,
        }
    }

    /// Attach per-page checksums sealed at build time. Every cache fill
    /// (demand miss, readahead, warm) is verified before the pages become
    /// servable; a mismatch surfaces as
    /// [`crate::Error::ChecksumMismatch`] and the pages are not admitted.
    pub fn with_integrity(mut self, integrity: Arc<PageIntegrity>) -> Self {
        self.integrity = Some(integrity);
        self
    }

    /// The sealed page checksums, when attached.
    pub fn integrity(&self) -> Option<&Arc<PageIntegrity>> {
        self.integrity.as_ref()
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<ShardedPageCache> {
        &self.cache
    }

    /// This store's cache file namespace.
    pub fn file_id(&self) -> u32 {
        self.file_id
    }

    /// Load every page of this store into the cache (subject to capacity)
    /// without device charges: writing a file through the kernel leaves
    /// its pages in the page cache, so a freshly offloaded graph starts
    /// warm.
    pub fn warm(&self) -> Result<()> {
        let pages = self.backend.len().div_ceil(PAGE_BYTES);
        self.load_pages(0, pages, false, false)
    }

    /// Charge the device for a `bytes`-long backend read, split at the
    /// reader's merge limit (§V-B1's chunking: the device sees one request
    /// per merged span, never an unbounded transfer).
    fn charge(&self, mut bytes: u64) {
        let merge = self.reader.merge_limit() as u64;
        if self.reader.merge_limit() == usize::MAX {
            self.device.read_request(bytes);
            return;
        }
        while bytes > 0 {
            let take = bytes.min(merge);
            self.device.read_request(take);
            bytes -= take;
        }
    }

    /// Read the page-aligned span starting at `span_start` from the
    /// backend into `scratch`, charging the device when `charge` is set
    /// and verifying sealed checksums when integrity is attached.
    ///
    /// Charged reads on a device with active fault rates go through the
    /// resilient path ([`fault::faulted_read`]): faults are drawn,
    /// verified-bad attempts retry under backoff, and exhaustion surfaces
    /// typed errors. Charge-free reads ([`Self::warm`]) model pages left
    /// behind in DRAM by the offload writer — no device access, no
    /// faults — but are still verified.
    fn read_span(&self, span_start: u64, scratch: &mut [u8], charge: bool) -> Result<()> {
        if charge {
            if let Some(state) = self.device.faults().filter(|f| f.plan().has_read_faults()) {
                // The fault path charges the device once per attempt; the
                // merge-limit split does not apply to retried reads.
                return fault::faulted_read(
                    &self.backend,
                    &self.device,
                    self.integrity.as_deref(),
                    state,
                    span_start,
                    scratch,
                );
            }
        }
        self.backend.read_at(span_start, scratch)?;
        if charge {
            self.charge(scratch.len() as u64);
        }
        if let Some(integrity) = &self.integrity {
            integrity.verify_span(span_start / PAGE_BYTES, scratch)?;
        }
        Ok(())
    }

    /// Load pages `[first, last_excl)` that are not yet cached, reading
    /// the backend in contiguous reserved runs. `charge` meters the device;
    /// `readahead` counts the loads in the readahead statistic.
    fn load_pages(&self, first: u64, last_excl: u64, charge: bool, readahead: bool) -> Result<()> {
        let size = self.backend.len();
        let last_excl = last_excl.min(size.div_ceil(PAGE_BYTES));
        let mut page = first;
        while page < last_excl {
            let run_start = page;
            let mut pins = Vec::new();
            while page < last_excl {
                match self.cache.reserve(self.file_id, page) {
                    Some(pin) => {
                        pins.push(pin);
                        page += 1;
                    }
                    None => break,
                }
            }
            if pins.is_empty() {
                page += 1; // already cached / in flight: skip it
                continue;
            }
            let span_start = run_start * PAGE_BYTES;
            let span_end = (run_start + pins.len() as u64) * PAGE_BYTES;
            let span_end = span_end.min(size);
            let mut scratch = vec![0u8; (span_end - span_start) as usize];
            self.read_span(span_start, &mut scratch, charge)?;
            if readahead {
                self.cache
                    .note_readahead(self.file_id, run_start, pins.len() as u64);
            }
            for (i, pin) in pins.into_iter().enumerate() {
                let off = i * PAGE_BYTES as usize;
                let end = scratch.len().min(off + PAGE_BYTES as usize);
                pin.fill(&scratch[off..end]);
            }
        }
        Ok(())
    }

    /// Read the miss run `[run_start, run_end_excl)` from the backend,
    /// charge the device, copy the requested window into `buf`, and
    /// publish the pages.
    fn service_miss_run(
        &self,
        run_start: u64,
        run_end_excl: u64,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<()> {
        let size = self.backend.len();
        let span_start = run_start * PAGE_BYTES;
        let span_end = (run_end_excl * PAGE_BYTES).min(size);
        let mut scratch = vec![0u8; (span_end - span_start) as usize];
        self.read_span(span_start, &mut scratch, true)?;

        let copy_start = offset.max(span_start);
        let copy_end = (offset + buf.len() as u64).min(span_end);
        buf[(copy_start - offset) as usize..(copy_end - offset) as usize].copy_from_slice(
            &scratch[(copy_start - span_start) as usize..(copy_end - span_start) as usize],
        );

        for p in run_start..run_end_excl {
            if let Some(pin) = self.cache.reserve(self.file_id, p) {
                let off = ((p - run_start) * PAGE_BYTES) as usize;
                let end = scratch.len().min(off + PAGE_BYTES as usize);
                pin.fill(&scratch[off..end]);
            }
        }
        Ok(())
    }
}

impl<B: ReadAt> ReadAt for ShardedCachedStore<B> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let size = self.backend.len();
        if offset
            .checked_add(buf.len() as u64)
            .is_none_or(|end| end > size)
        {
            // Out of bounds: delegate for the canonical error.
            return self.backend.read_at(offset, buf);
        }

        let first = offset / PAGE_BYTES;
        let last = (offset + buf.len() as u64 - 1) / PAGE_BYTES;
        let mut run_start: Option<u64> = None;
        for page in first..=last {
            let page_start = page * PAGE_BYTES;
            let s = offset.max(page_start);
            let e = (offset + buf.len() as u64).min(page_start + PAGE_BYTES);
            let dst = &mut buf[(s - offset) as usize..(e - offset) as usize];
            if self
                .cache
                .copy_page(self.file_id, page, (s - page_start) as usize, dst)
            {
                if let Some(rs) = run_start.take() {
                    self.service_miss_run(rs, page, offset, buf)?;
                }
            } else if run_start.is_none() {
                run_start = Some(page);
            }
        }
        if let Some(rs) = run_start.take() {
            self.service_miss_run(rs, last + 1, offset, buf)?;
        }

        // Sequential readahead: a read continuing exactly where the
        // previous one ended pulls the next window in ahead of demand.
        let prev_end = self.last_end_page.swap(last + 1, Ordering::Relaxed);
        let ra = self.cache.readahead_pages() as u64;
        if ra > 0 && prev_end == first {
            self.load_pages(last + 1, last + 1 + ra, true, true)?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.backend.len()
    }

    fn prefetch(&self, offset: u64, len: u64) -> Result<()> {
        let size = self.backend.len();
        if len == 0 || offset >= size {
            return Ok(());
        }
        let first = offset / PAGE_BYTES;
        let end = offset.saturating_add(len).min(size);
        let last_excl = end.div_ceil(PAGE_BYTES);
        self.load_pages(first, last_excl, true, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DramBackend;
    use crate::device::{DelayMode, DeviceProfile};

    fn dev() -> Arc<Device> {
        Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting)
    }

    fn patterned(pages: usize) -> Vec<u8> {
        (0..pages * PAGE_BYTES as usize)
            .map(|i| (i % 251) as u8)
            .collect()
    }

    #[test]
    fn hit_serves_cached_bytes() {
        let cache = ShardedPageCache::with_shards(8 * PAGE_BYTES, 4);
        let f = cache.register_file();
        let mut buf = [0u8; 8];
        assert!(!cache.copy_page(f, 5, 16, &mut buf));
        cache.reserve(f, 5).unwrap().fill(&patterned(1));
        assert!(cache.copy_page(f, 5, 16, &mut buf));
        assert_eq!(&buf[..], &patterned(1)[16..24]);
        assert_eq!(cache.stats(), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_snapshot_is_monotone_and_sums_shards() {
        // The aggregate CacheSnapshot is the query engine's global
        // hit-rate source: every counter must be non-decreasing over an
        // arbitrary access mix, and always equal the per-shard sum.
        let device = dev();
        let cache = ShardedPageCache::with_shards(4 * PAGE_BYTES, 4); // undersized: evicts
        let data = patterned(32);
        let store = ShardedCachedStore::new(DramBackend::new(data.clone()), device, cache.clone());
        let mut prev = cache.snapshot();
        let mut buf = vec![0u8; PAGE_BYTES as usize];
        for i in 0..100u64 {
            // Mix of repeats (hits), strides (misses + evictions), and a
            // readahead-eligible sequential run.
            let off = match i % 4 {
                0 => 0,
                1 => (i % 32) * PAGE_BYTES,
                2 => ((i * 7) % 31) * PAGE_BYTES,
                _ => (i % 8) * PAGE_BYTES + 128,
            };
            store.read_at(off, &mut buf[..256]).unwrap();
            let now = cache.snapshot();
            assert!(now.hits >= prev.hits, "hits regressed at step {i}");
            assert!(now.misses >= prev.misses, "misses regressed at step {i}");
            assert!(
                now.evictions >= prev.evictions,
                "evictions regressed at step {i}"
            );
            assert!(
                now.readahead_pages >= prev.readahead_pages,
                "readahead regressed at step {i}"
            );
            assert!(now.accesses() > prev.accesses(), "step {i} not counted");
            prev = now;
        }
        let sum = cache
            .per_shard()
            .iter()
            .fold(CacheSnapshot::default(), |a, s| CacheSnapshot {
                hits: a.hits + s.hits,
                misses: a.misses + s.misses,
                evictions: a.evictions + s.evictions,
                readahead_pages: a.readahead_pages + s.readahead_pages,
            });
        assert_eq!(prev, sum, "aggregate must equal per-shard sum");
        assert!(prev.hits > 0 && prev.misses > 0 && prev.evictions > 0);
        assert!(prev.hit_rate() > 0.0 && prev.hit_rate() < 1.0);
    }

    #[test]
    fn files_are_namespaced() {
        let cache = ShardedPageCache::with_shards(8 * PAGE_BYTES, 2);
        let a = cache.register_file();
        let b = cache.register_file();
        cache.reserve(a, 0).unwrap().fill(&[1u8; 8]);
        let mut buf = [0u8; 1];
        assert!(cache.copy_page(a, 0, 0, &mut buf));
        assert!(!cache.copy_page(b, 0, 0, &mut buf), "different namespace");
    }

    #[test]
    fn reserve_is_exclusive_until_dropped() {
        let cache = ShardedPageCache::with_shards(4 * PAGE_BYTES, 1);
        let f = cache.register_file();
        let pin = cache.reserve(f, 7).unwrap();
        assert!(cache.reserve(f, 7).is_none(), "in-flight page is exclusive");
        let mut buf = [0u8; 1];
        assert!(
            !cache.copy_page(f, 7, 0, &mut buf),
            "unfilled page never hits"
        );
        drop(pin); // abandoned: slot released
        assert!(cache.reserve(f, 7).is_some(), "slot reusable after abort");
    }

    #[test]
    fn clock_evicts_cold_pages_and_counts() {
        let cache = ShardedPageCache::with_shards(2 * PAGE_BYTES, 1);
        let f = cache.register_file();
        cache.reserve(f, 1).unwrap().fill(&[1]);
        cache.reserve(f, 2).unwrap().fill(&[2]);
        // Keep 1 hot.
        let mut buf = [0u8; 1];
        assert!(cache.copy_page(f, 1, 0, &mut buf));
        cache.reserve(f, 3).unwrap().fill(&[3]);
        cache.reserve(f, 4).unwrap().fill(&[4]);
        let snap = cache.snapshot();
        assert_eq!(snap.evictions, 2, "two filled pages displaced");
        assert_eq!(cache.resident_pages(), 2);
    }

    #[test]
    fn pinned_pages_survive_clock() {
        let cache = ShardedPageCache::with_shards(2 * PAGE_BYTES, 1);
        let f = cache.register_file();
        let pin = cache.reserve(f, 0).unwrap();
        cache.reserve(f, 1).unwrap().fill(&[1]);
        // Shard full; page 0 pinned, page 1 evictable.
        let pin2 = cache.reserve(f, 2).unwrap();
        // Both slots now pinned: a third reservation must fail, not spin.
        assert!(cache.reserve(f, 3).is_none());
        pin.fill(&[0]);
        pin2.fill(&[2]);
        let mut buf = [0u8; 1];
        assert!(cache.copy_page(f, 0, 0, &mut buf));
        assert_eq!(buf, [0]);
    }

    #[test]
    fn capacity_shrink_evicts_and_grow_readmits() {
        let cache = ShardedPageCache::with_shards(8 * PAGE_BYTES, 2);
        let f = cache.register_file();
        for p in 0..8 {
            cache.reserve(f, p).unwrap().fill(&[p as u8]);
        }
        // Hash imbalance may push one shard past its share (evicting), but
        // most of the working set is resident.
        assert!(cache.resident_pages() > 4);
        cache.set_capacity_bytes(2 * PAGE_BYTES);
        assert_eq!(cache.capacity_pages(), 2);
        assert!(cache.resident_pages() <= 2);
        cache.set_capacity_bytes(8 * PAGE_BYTES);
        for p in 0..8 {
            let _ = cache.reserve(f, p).map(|pin| pin.fill(&[p as u8]));
        }
        // Pages hash unevenly over the 2 shards, so an overloaded shard may
        // hold fewer than its arithmetic share — but the budget is back.
        assert!(cache.resident_pages() > 2);
    }

    #[test]
    fn tiny_capacity_still_one_page_per_populated_shard() {
        // A 1-page cache over many shards must still admit a page.
        let cache = ShardedPageCache::with_shards(PAGE_BYTES, 8);
        let f = cache.register_file();
        let mut admitted = 0;
        for p in 0..64 {
            if let Some(pin) = cache.reserve(f, p) {
                pin.fill(&[0]);
                admitted += 1;
            }
        }
        assert!(admitted > 0);
    }

    #[test]
    fn store_reads_are_byte_identical() {
        let data = patterned(16);
        let cache = ShardedPageCache::with_shards(16 * PAGE_BYTES, 4);
        let store = ShardedCachedStore::new(DramBackend::new(data.clone()), dev(), cache);
        for (off, n) in [
            (0u64, 1usize),
            (4095, 2),
            (100, 10_000),
            (5 * PAGE_BYTES, PAGE_BYTES as usize),
            (16 * PAGE_BYTES - 7, 7),
        ] {
            let mut cold = vec![0u8; n];
            store.read_at(off, &mut cold).unwrap();
            assert_eq!(&cold[..], &data[off as usize..off as usize + n], "cold");
            let mut warm = vec![0u8; n];
            store.read_at(off, &mut warm).unwrap();
            assert_eq!(cold, warm, "warm");
        }
        let mut oob = vec![0u8; 8];
        assert!(store.read_at(16 * PAGE_BYTES - 4, &mut oob).is_err());
    }

    #[test]
    fn store_charges_only_misses_with_merge_splitting() {
        let device = dev();
        let cache = ShardedPageCache::with_shards(16 * PAGE_BYTES, 4);
        let store = ShardedCachedStore::new(
            DramBackend::new(patterned(16)),
            device.clone(),
            cache.clone(),
        );

        // 3 consecutive cold pages fit one iodrive2 16 KiB merged request.
        let mut buf = vec![0u8; 3 * PAGE_BYTES as usize];
        store.read_at(0, &mut buf).unwrap();
        let cold = device.snapshot();
        assert_eq!(cold.requests, 1);
        assert_eq!(cold.bytes, 3 * PAGE_BYTES);

        store.read_at(0, &mut buf).unwrap();
        let warm = device.snapshot();
        assert_eq!(warm.requests, cold.requests, "warm read is free");
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);

        // 8 cold pages (32 KiB) split at the 16 KiB merge limit.
        device.reset_stats();
        let mut big = vec![0u8; 8 * PAGE_BYTES as usize];
        store.read_at(8 * PAGE_BYTES, &mut big).unwrap();
        assert_eq!(device.snapshot().requests, 2);
    }

    #[test]
    fn partial_hit_splits_miss_runs() {
        let device = dev();
        let cache = ShardedPageCache::with_shards(8 * PAGE_BYTES, 4);
        let data = patterned(8);
        let store = ShardedCachedStore::new(DramBackend::new(data.clone()), device.clone(), cache);

        // Warm page 2 only.
        let mut one = vec![0u8; PAGE_BYTES as usize];
        store.read_at(2 * PAGE_BYTES, &mut one).unwrap();
        device.reset_stats();
        // Read pages 0..=4: miss runs [0,1] and [3,4], page 2 hits.
        let mut buf = vec![0u8; 5 * PAGE_BYTES as usize];
        store.read_at(0, &mut buf).unwrap();
        let snap = device.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.bytes, 4 * PAGE_BYTES);
        assert_eq!(&buf[..], &data[..5 * PAGE_BYTES as usize]);
    }

    #[test]
    fn warm_store_never_touches_device() {
        let device = dev();
        let cache = ShardedPageCache::with_shards(32 * PAGE_BYTES, 4);
        let data = patterned(16);
        let store = ShardedCachedStore::new(DramBackend::new(data.clone()), device.clone(), cache);
        store.warm().unwrap();
        assert_eq!(device.snapshot().requests, 0, "warming is charge-free");
        let mut buf = vec![0u8; data.len()];
        store.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(device.snapshot().requests, 0, "fully warm reads are free");
    }

    #[test]
    fn sequential_reads_trigger_readahead() {
        let device = dev();
        let cache = ShardedPageCache::with_shards(64 * PAGE_BYTES, 4);
        cache.set_readahead_pages(4);
        let store = ShardedCachedStore::new(
            DramBackend::new(patterned(32)),
            device.clone(),
            cache.clone(),
        );

        let mut page = vec![0u8; PAGE_BYTES as usize];
        store.read_at(0, &mut page).unwrap(); // not sequential yet
        assert_eq!(cache.snapshot().readahead_pages, 0);
        store.read_at(PAGE_BYTES, &mut page).unwrap(); // sequential
        let snap = cache.snapshot();
        assert_eq!(snap.readahead_pages, 4, "window loaded ahead");
        device.reset_stats();
        // Pages 2..=5 are now resident: with readahead paused, the
        // continued scan is served entirely from cache.
        cache.set_readahead_pages(0);
        for p in 2..=5u64 {
            store.read_at(p * PAGE_BYTES, &mut page).unwrap();
        }
        let snap = device.snapshot();
        assert_eq!(snap.requests, 0, "readahead absorbed the scan");
    }

    #[test]
    fn readahead_clips_at_eof() {
        let device = dev();
        let cache = ShardedPageCache::with_shards(64 * PAGE_BYTES, 2);
        cache.set_readahead_pages(8);
        let data = patterned(3); // only 3 pages
        let store = ShardedCachedStore::new(DramBackend::new(data), device, cache.clone());
        let mut page = vec![0u8; PAGE_BYTES as usize];
        store.read_at(0, &mut page).unwrap();
        store.read_at(PAGE_BYTES, &mut page).unwrap();
        assert_eq!(
            cache.snapshot().readahead_pages,
            1,
            "only page 2 exists past the window"
        );
    }

    #[test]
    fn prefetch_loads_span_and_demand_hits() {
        let device = dev();
        let cache = ShardedPageCache::with_shards(32 * PAGE_BYTES, 4);
        let data = patterned(16);
        let store = ShardedCachedStore::new(
            DramBackend::new(data.clone()),
            device.clone(),
            cache.clone(),
        );
        store.prefetch(2 * PAGE_BYTES, 4 * PAGE_BYTES).unwrap();
        assert_eq!(cache.snapshot().readahead_pages, 4);
        assert!(device.snapshot().requests > 0, "prefetch pays the device");
        let before = device.snapshot().requests;
        let mut buf = vec![0u8; 4 * PAGE_BYTES as usize];
        store.read_at(2 * PAGE_BYTES, &mut buf).unwrap();
        assert_eq!(
            &buf[..],
            &data[2 * PAGE_BYTES as usize..6 * PAGE_BYTES as usize]
        );
        assert_eq!(device.snapshot().requests, before, "demand read is free");
        // Past-EOF prefetches are clipped, not errors.
        store.prefetch(15 * PAGE_BYTES, 64 * PAGE_BYTES).unwrap();
        store.prefetch(1 << 40, 8).unwrap();
    }

    #[test]
    fn torn_page_is_rejected_at_fill_never_served() {
        // Seal checksums over good data, then tear one page behind the
        // store's back: every read touching it must report the mismatch,
        // and the cache must never serve the torn bytes as valid.
        let good = patterned(8);
        let integrity = Arc::new(PageIntegrity::seal_bytes(&good));
        let mut torn = good.clone();
        torn[3 * PAGE_BYTES as usize + 99] ^= 0x01;
        let cache = ShardedPageCache::with_shards(16 * PAGE_BYTES, 4);
        let store = ShardedCachedStore::new(DramBackend::new(torn), dev(), cache.clone())
            .with_integrity(integrity);

        // Intact pages read fine.
        let mut buf = vec![0u8; 64];
        store.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..], &good[..64]);

        // The torn page errors with its index, on cold and repeat reads.
        for _ in 0..2 {
            match store.read_at(3 * PAGE_BYTES + 50, &mut buf) {
                Err(crate::Error::ChecksumMismatch { page, .. }) => assert_eq!(page, 3),
                other => panic!("expected ChecksumMismatch, got {other:?}"),
            }
        }
        // warm() trips over it too.
        assert!(matches!(
            store.warm(),
            Err(crate::Error::ChecksumMismatch { page: 3, .. })
        ));
    }

    #[test]
    fn faulted_cached_store_heals_and_stays_byte_identical() {
        use crate::fault::FaultPlan;
        use crate::DeviceProfile;

        let data = patterned(32);
        // 30% combined fault rate: with 10 retries a chain of all-faulted
        // draws (0.3^11 ≈ 2e-6 per read) never exhausts in this test.
        let plan = FaultPlan::parse("seed=6,eio=0.2,corrupt=0.1,retries=10").unwrap();
        let device =
            Device::with_fault_plan(DeviceProfile::iodrive2(), DelayMode::Accounting, plan);
        let integrity = Arc::new(PageIntegrity::seal_bytes(&data));
        let cache = ShardedPageCache::with_shards(8 * PAGE_BYTES, 4); // undersized: refills
        let store = ShardedCachedStore::new(DramBackend::new(data.clone()), device.clone(), cache)
            .with_integrity(integrity);

        let mut buf = vec![0u8; 600];
        for i in 0..300u64 {
            let off = (i * 4099) % (data.len() as u64 - 600);
            store.read_at(off, &mut buf).unwrap();
            assert_eq!(
                &buf[..],
                &data[off as usize..off as usize + 600],
                "off {off}"
            );
        }
        let snap = device.faults().unwrap().snapshot();
        assert!(snap.total() > 10, "faults fired: {snap:?}");
        assert_eq!(snap.checksum_failures, snap.corrupt);
    }

    #[test]
    fn concurrent_readers_agree_with_backend() {
        let data = Arc::new(patterned(64));
        let cache = ShardedPageCache::with_shards(16 * PAGE_BYTES, 8); // undersized: evicts
        let store = Arc::new(ShardedCachedStore::new(
            DramBackend::new(data.as_ref().clone()),
            dev(),
            cache,
        ));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = Arc::clone(&store);
                let data = Arc::clone(&data);
                scope.spawn(move || {
                    let mut buf = vec![0u8; 3 * PAGE_BYTES as usize];
                    for i in 0..200u64 {
                        // Deterministic per-thread pseudo-random offsets.
                        let x = (t * 1_000_003 + i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        let off = x % (64 * PAGE_BYTES - buf.len() as u64);
                        store.read_at(off, &mut buf).unwrap();
                        assert_eq!(
                            &buf[..],
                            &data[off as usize..off as usize + buf.len()],
                            "offset {off}"
                        );
                    }
                });
            }
        });
    }
}
