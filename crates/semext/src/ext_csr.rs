//! CSR graphs on external storage — the offloaded forward graph.
//!
//! §V-B1: the CSR index and value arrays are stored on NVM as two files
//! (the paper's *array file* and *value file*); a neighbor lookup reads
//! `index[v]` and `index[v+1]` from the index file, then reads the value
//! span in ≤4 KiB chunks. [`ExtCsr`] implements exactly that, over any
//! [`ReadAt`] store (a metered [`NvmStore`](crate::NvmStore) in the
//! scenarios, plain backends in tests).
//!
//! The index can optionally be pinned in DRAM
//! ([`ExtCsr::with_dram_index`]) — an optimization knob the ablation
//! benches explore; the paper's baseline reads the index from NVM too.

use std::path::Path;

use crate::backend::ReadAt;
use crate::chunked::ChunkedReader;
use crate::error::{Error, Result};
use crate::ext_array::{decode_into, write_array_file, ExtArray};

/// A CSR adjacency structure stored externally: a `u64` index array of
/// `n + 1` entries and a `u32` value (neighbor) array of `m` entries.
#[derive(Debug)]
pub struct ExtCsr<R> {
    index: ExtArray<u64, R>,
    values: ExtArray<u32, R>,
    /// Index array pinned in DRAM, when enabled.
    dram_index: Option<Vec<u64>>,
    num_vertices: u64,
}

impl<R: ReadAt> ExtCsr<R> {
    /// Bind an index store and a value store as one CSR graph.
    ///
    /// Validates that the index has at least one entry and that its final
    /// entry equals the number of values.
    pub fn new(index_store: R, value_store: R) -> Result<Self> {
        let index = ExtArray::<u64, R>::new(index_store)?;
        let values = ExtArray::<u32, R>::new(value_store)?;
        if index.is_empty() {
            return Err(Error::Corrupt("CSR index file has no entries".into()));
        }
        let num_vertices = index.len() - 1;
        let last = index.get(num_vertices)?;
        if last != values.len() {
            return Err(Error::Corrupt(format!(
                "CSR index final entry {last} does not match value count {}",
                values.len()
            )));
        }
        Ok(Self {
            index,
            values,
            dram_index: None,
            num_vertices,
        })
    }

    /// Load the index array into DRAM; subsequent degree/offset lookups
    /// cost no storage requests.
    pub fn with_dram_index(mut self) -> Result<Self> {
        self.dram_index = Some(self.index.read_all()?);
        Ok(self)
    }

    /// True when the index array is pinned in DRAM.
    pub fn has_dram_index(&self) -> bool {
        self.dram_index.is_some()
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of stored neighbor entries `m`.
    pub fn num_values(&self) -> u64 {
        self.values.len()
    }

    /// Size of the structure in bytes (index + values).
    pub fn byte_size(&self) -> u64 {
        (self.index.len()) * 8 + self.values.len() * 4
    }

    /// The `[start, end)` range of vertex `v`'s neighbors in the value
    /// array. One storage request (or zero with a DRAM index).
    pub fn neighbor_range(&self, v: u64) -> Result<(u64, u64)> {
        if v >= self.num_vertices {
            return Err(Error::OutOfBounds {
                offset: v,
                len: 1,
                size: self.num_vertices,
            });
        }
        if let Some(idx) = &self.dram_index {
            Ok((idx[v as usize], idx[v as usize + 1]))
        } else {
            self.index.get_pair(v)
        }
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: u64) -> Result<u64> {
        let (s, e) = self.neighbor_range(v)?;
        Ok(e - s)
    }

    /// Read vertex `v`'s neighbors into `out` (cleared first), fetching the
    /// value span through `reader` and decoding via `scratch`.
    pub fn read_neighbors(
        &self,
        v: u64,
        reader: &ChunkedReader,
        out: &mut Vec<u32>,
        scratch: &mut Vec<u8>,
    ) -> Result<()> {
        let (start, end) = self.neighbor_range(v)?;
        out.clear();
        let bytes = (end - start) as usize * 4;
        if bytes == 0 {
            return Ok(());
        }
        scratch.clear();
        scratch.resize(bytes, 0);
        reader.read_span(self.values.store(), start * 4, scratch)?;
        decode_into::<u32>(scratch, out);
        Ok(())
    }

    /// Read an arbitrary `[start, end)` window of the value array into
    /// `out` (cleared first). Used by the backward-graph partial-offload
    /// path, which streams only the cold tail of a vertex's neighbors.
    pub fn read_value_window(
        &self,
        start: u64,
        end: u64,
        reader: &ChunkedReader,
        out: &mut Vec<u32>,
        scratch: &mut Vec<u8>,
    ) -> Result<()> {
        out.clear();
        if end <= start {
            return Ok(());
        }
        let bytes = (end - start) as usize * 4;
        scratch.clear();
        scratch.resize(bytes, 0);
        reader.read_span(self.values.store(), start * 4, scratch)?;
        decode_into::<u32>(scratch, out);
        Ok(())
    }

    /// Read several vertices' neighbor lists with at most **two batched
    /// device submissions** — one for the index pairs, one for all value
    /// spans — the `libaio`-style aggregation §VI-D proposes. Results land
    /// in `batch.outs[i]` for `vs[i]`.
    ///
    /// Equivalent to calling [`read_neighbors`](Self::read_neighbors) per
    /// vertex, but the device access latency is paid per *batch* instead
    /// of per request (see [`crate::Device::read_batch`]).
    pub fn read_neighbors_batch(
        &self,
        vs: &[u64],
        reader: &ChunkedReader,
        batch: &mut NeighborBatch,
    ) -> Result<()> {
        self.read_neighbors_batch_opts(vs, reader, batch, false)
    }

    /// [`read_neighbors_batch`](Self::read_neighbors_batch) with an
    /// optional **coalesced prefetch**: when `prefetch` is set and the
    /// batch's value spans are dense (the covering window is at most twice
    /// the requested bytes), the whole window is handed to the value
    /// store's [`ReadAt::prefetch`] before the span reads. A caching store
    /// then loads the window as few large sequential device requests and
    /// serves the spans from DRAM; for plain stores the hint is a no-op.
    pub fn read_neighbors_batch_opts(
        &self,
        vs: &[u64],
        reader: &ChunkedReader,
        batch: &mut NeighborBatch,
        prefetch: bool,
    ) -> Result<()> {
        use crate::backend::BatchRead;

        batch.outs.resize_with(vs.len(), Vec::new);
        for out in batch.outs.iter_mut() {
            out.clear();
        }
        if vs.is_empty() {
            return Ok(());
        }

        // Pass 1: neighbor ranges — batched index-pair reads when the
        // index lives on the device.
        batch.ranges.clear();
        if let Some(idx) = &self.dram_index {
            for &v in vs {
                if v >= self.num_vertices {
                    return Err(Error::OutOfBounds {
                        offset: v,
                        len: 1,
                        size: self.num_vertices,
                    });
                }
                batch.ranges.push((idx[v as usize], idx[v as usize + 1]));
            }
        } else {
            batch.bytes.clear();
            batch.bytes.resize(vs.len() * 16, 0);
            {
                let mut reqs = Vec::with_capacity(vs.len());
                let mut rest = batch.bytes.as_mut_slice();
                for &v in vs {
                    if v >= self.num_vertices {
                        return Err(Error::OutOfBounds {
                            offset: v,
                            len: 1,
                            size: self.num_vertices,
                        });
                    }
                    let (head, tail) = rest.split_at_mut(16);
                    reqs.push(BatchRead {
                        offset: self.index.byte_offset(v),
                        buf: head,
                    });
                    rest = tail;
                }
                self.index.store().read_batch_at(&mut reqs)?;
            }
            for chunk in batch.bytes.chunks_exact(16) {
                let s = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
                let e = u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
                batch.ranges.push((s, e));
            }
        }

        // Pass 2: all value spans in one submission, each span chunked to
        // the reader's merge limit.
        let total_bytes: usize = batch
            .ranges
            .iter()
            .map(|&(s, e)| (e - s) as usize * 4)
            .sum();
        if prefetch && total_bytes > 0 {
            let lo = batch
                .ranges
                .iter()
                .map(|&(s, _)| s)
                .min()
                .expect("nonempty");
            let hi = batch
                .ranges
                .iter()
                .map(|&(_, e)| e)
                .max()
                .expect("nonempty");
            let window = (hi - lo) as usize * 4;
            if window <= total_bytes.saturating_mul(2) {
                self.values.store().prefetch(lo * 4, window as u64)?;
            }
        }
        batch.bytes.clear();
        batch.bytes.resize(total_bytes, 0);
        {
            let merge = reader.merge_limit();
            let mut reqs = Vec::new();
            let mut rest = batch.bytes.as_mut_slice();
            for &(s, e) in &batch.ranges {
                let mut offset = s * 4;
                let mut remaining = (e - s) as usize * 4;
                while remaining > 0 {
                    let take = remaining.min(merge);
                    let (head, tail) = rest.split_at_mut(take);
                    reqs.push(BatchRead { offset, buf: head });
                    rest = tail;
                    offset += take as u64;
                    remaining -= take;
                }
            }
            if !reqs.is_empty() {
                self.values.store().read_batch_at(&mut reqs)?;
            }
        }
        let mut pos = 0usize;
        for (i, &(s, e)) in batch.ranges.iter().enumerate() {
            let len = (e - s) as usize * 4;
            decode_into::<u32>(&batch.bytes[pos..pos + len], &mut batch.outs[i]);
            pos += len;
        }
        Ok(())
    }

    /// The underlying index array.
    pub fn index(&self) -> &ExtArray<u64, R> {
        &self.index
    }

    /// The underlying value array.
    pub fn values(&self) -> &ExtArray<u32, R> {
        &self.values
    }
}

/// Reusable scratch state for [`ExtCsr::read_neighbors_batch`].
#[derive(Debug, Default)]
pub struct NeighborBatch {
    /// Decoded neighbor lists, one per requested vertex.
    pub outs: Vec<Vec<u32>>,
    /// Resolved `[start, end)` value ranges.
    ranges: Vec<(u64, u64)>,
    /// Raw byte staging area.
    bytes: Vec<u8>,
}

impl NeighborBatch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Write a CSR (index, values) pair to `index_path`/`value_path` as
/// little-endian array files — the "offload the forward graph to NVM"
/// step (§V-A Step 2). Returns total bytes written.
pub fn write_csr_files(
    index_path: impl AsRef<Path>,
    value_path: impl AsRef<Path>,
    index: &[u64],
    values: &[u32],
) -> Result<u64> {
    assert!(!index.is_empty(), "CSR index must have at least one entry");
    assert_eq!(
        *index.last().unwrap(),
        values.len() as u64,
        "CSR index final entry must equal value count"
    );
    let a = write_array_file(index_path, index)?;
    let b = write_array_file(value_path, values)?;
    Ok(a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DramBackend, FileBackend};
    use crate::tempdir::TempDir;

    /// A small fixed graph: 0→{1,2}, 1→{0,2,3}, 2→{}, 3→{1}.
    fn sample_csr() -> (Vec<u64>, Vec<u32>) {
        (vec![0, 2, 5, 5, 6], vec![1, 2, 0, 2, 3, 1])
    }

    fn dram_csr() -> ExtCsr<DramBackend> {
        let (index, values) = sample_csr();
        let mut ib = vec![0u8; index.len() * 8];
        for (i, v) in index.iter().enumerate() {
            ib[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
        let mut vb = vec![0u8; values.len() * 4];
        for (i, v) in values.iter().enumerate() {
            vb[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
        }
        ExtCsr::new(DramBackend::new(ib), DramBackend::new(vb)).unwrap()
    }

    #[test]
    fn shape_is_read_back() {
        let csr = dram_csr();
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_values(), 6);
        assert_eq!(csr.byte_size(), 5 * 8 + 6 * 4);
    }

    #[test]
    fn degrees_and_ranges() {
        let csr = dram_csr();
        assert_eq!(csr.degree(0).unwrap(), 2);
        assert_eq!(csr.degree(1).unwrap(), 3);
        assert_eq!(csr.degree(2).unwrap(), 0);
        assert_eq!(csr.degree(3).unwrap(), 1);
        assert_eq!(csr.neighbor_range(1).unwrap(), (2, 5));
    }

    #[test]
    fn neighbors_read_back() {
        let csr = dram_csr();
        let reader = ChunkedReader::unmerged();
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        csr.read_neighbors(1, &reader, &mut out, &mut scratch)
            .unwrap();
        assert_eq!(out, vec![0, 2, 3]);
        csr.read_neighbors(2, &reader, &mut out, &mut scratch)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn dram_index_gives_same_answers() {
        let csr = dram_csr().with_dram_index().unwrap();
        assert!(csr.has_dram_index());
        assert_eq!(csr.neighbor_range(3).unwrap(), (5, 6));
        assert_eq!(csr.degree(1).unwrap(), 3);
    }

    #[test]
    fn value_window_reads_tail() {
        let csr = dram_csr();
        let reader = ChunkedReader::unmerged();
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        // Vertex 1's neighbors occupy [2, 5); read just the tail [3, 5).
        csr.read_value_window(3, 5, &reader, &mut out, &mut scratch)
            .unwrap();
        assert_eq!(out, vec![2, 3]);
        csr.read_value_window(5, 5, &reader, &mut out, &mut scratch)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn vertex_out_of_range_rejected() {
        let csr = dram_csr();
        assert!(csr.neighbor_range(4).is_err());
    }

    #[test]
    fn mismatched_index_value_rejected() {
        let ib: Vec<u8> = [0u64, 3].iter().flat_map(|v| v.to_le_bytes()).collect();
        let vb = vec![0u8; 4]; // 1 value, index claims 3
        assert!(matches!(
            ExtCsr::new(DramBackend::new(ib), DramBackend::new(vb)),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn empty_index_rejected() {
        assert!(matches!(
            ExtCsr::new(DramBackend::new(vec![]), DramBackend::new(vec![])),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = TempDir::new("ext-csr").unwrap();
        let (index, values) = sample_csr();
        let ip = dir.path().join("fg.index");
        let vp = dir.path().join("fg.values");
        let bytes = write_csr_files(&ip, &vp, &index, &values).unwrap();
        assert_eq!(bytes, 5 * 8 + 6 * 4);

        let csr = ExtCsr::new(
            FileBackend::open(&ip).unwrap(),
            FileBackend::open(&vp).unwrap(),
        )
        .unwrap();
        let reader = ChunkedReader::unmerged();
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        csr.read_neighbors(0, &reader, &mut out, &mut scratch)
            .unwrap();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "final entry must equal")]
    fn write_validates_consistency() {
        let dir = TempDir::new("ext-csr-bad").unwrap();
        let _ = write_csr_files(
            dir.path().join("i"),
            dir.path().join("v"),
            &[0u64, 5],
            &[1u32, 2],
        );
    }

    #[test]
    fn batch_matches_individual_reads() {
        let csr = dram_csr();
        let reader = ChunkedReader::unmerged();
        let mut batch = NeighborBatch::new();
        csr.read_neighbors_batch(&[0, 1, 2, 3], &reader, &mut batch)
            .unwrap();
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        for v in 0..4u64 {
            csr.read_neighbors(v, &reader, &mut out, &mut scratch)
                .unwrap();
            assert_eq!(batch.outs[v as usize], out, "vertex {v}");
        }
    }

    #[test]
    fn batch_with_dram_index_matches() {
        let csr = dram_csr().with_dram_index().unwrap();
        let reader = ChunkedReader::unmerged();
        let mut batch = NeighborBatch::new();
        csr.read_neighbors_batch(&[3, 0], &reader, &mut batch)
            .unwrap();
        assert_eq!(batch.outs[0], vec![1]);
        assert_eq!(batch.outs[1], vec![1, 2]);
    }

    #[test]
    fn batch_empty_and_out_of_range() {
        let csr = dram_csr();
        let reader = ChunkedReader::unmerged();
        let mut batch = NeighborBatch::new();
        csr.read_neighbors_batch(&[], &reader, &mut batch).unwrap();
        assert!(batch.outs.is_empty());
        assert!(csr.read_neighbors_batch(&[9], &reader, &mut batch).is_err());
    }

    #[test]
    fn batch_device_requests_counted_once_per_submission() {
        use crate::device::{DelayMode, Device, DeviceProfile, NvmStore};
        let (index, values) = sample_csr();
        let dir = TempDir::new("batch-csr").unwrap();
        let ip = dir.path().join("i");
        let vp = dir.path().join("v");
        write_csr_files(&ip, &vp, &index, &values).unwrap();
        let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        let csr = ExtCsr::new(
            NvmStore::new(FileBackend::open(&ip).unwrap(), dev.clone()),
            NvmStore::new(FileBackend::open(&vp).unwrap(), dev.clone()),
        )
        .unwrap();
        let reader = ChunkedReader::unmerged();
        let mut batch = NeighborBatch::new();
        dev.reset_stats(); // drop the construction-time validation read
        csr.read_neighbors_batch(&[0, 1, 3], &reader, &mut batch)
            .unwrap();
        // 3 index pair reads + 3 nonempty value spans = 6 requests total.
        assert_eq!(dev.snapshot().requests, 6);
        assert_eq!(batch.outs[1], vec![0, 2, 3]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Build a random CSR from per-vertex adjacency lists, write it to
            /// DRAM stores, and verify every neighbor list reads back exactly.
            #[test]
            fn random_csr_roundtrip(
                adj in proptest::collection::vec(
                    proptest::collection::vec(any::<u32>(), 0..50), 1..40)
            ) {
                let mut index = vec![0u64];
                let mut values = Vec::new();
                for list in &adj {
                    values.extend_from_slice(list);
                    index.push(values.len() as u64);
                }
                let ib: Vec<u8> = index.iter().flat_map(|v| v.to_le_bytes()).collect();
                let vb: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
                let csr = ExtCsr::new(DramBackend::new(ib), DramBackend::new(vb)).unwrap();
                prop_assert_eq!(csr.num_vertices(), adj.len() as u64);

                let reader = ChunkedReader::unmerged();
                let (mut out, mut scratch) = (Vec::new(), Vec::new());
                for (v, list) in adj.iter().enumerate() {
                    csr.read_neighbors(v as u64, &reader, &mut out, &mut scratch).unwrap();
                    prop_assert_eq!(&out, list);
                }
            }
        }
    }
}
