//! Error type for the semi-external memory layer.

use std::fmt;

/// Result alias used throughout `sembfs-semext`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A read past the end of a backend or array.
    OutOfBounds {
        /// Requested byte offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
        /// Backend size in bytes.
        size: u64,
    },
    /// A file's size is inconsistent with its expected layout.
    Corrupt(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::OutOfBounds { offset, len, size } => write!(
                f,
                "read out of bounds: offset {offset} + len {len} > size {size}"
            ),
            Error::Corrupt(msg) => write!(f, "corrupt external data: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds() {
        let e = Error::OutOfBounds {
            offset: 10,
            len: 20,
            size: 15,
        };
        let s = e.to_string();
        assert!(s.contains("offset 10"));
        assert!(s.contains("size 15"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn corrupt_displays_message() {
        let e = Error::Corrupt("index truncated".into());
        assert!(e.to_string().contains("index truncated"));
    }
}
