//! Error type for the semi-external memory layer.

use std::fmt;

/// Result alias used throughout `sembfs-semext`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the storage layer.
///
/// Marked `#[non_exhaustive]`: the resilient read path grows failure
/// modes (checksums, retry exhaustion) without breaking downstream
/// matches.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A read past the end of a backend or array.
    OutOfBounds {
        /// Requested byte offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
        /// Backend size in bytes.
        size: u64,
    },
    /// A file's size is inconsistent with its expected layout.
    Corrupt(String),
    /// A page read back from storage does not match its sealed checksum
    /// (a torn or silently corrupted page the retry path could not heal).
    ChecksumMismatch {
        /// 4 KiB page index within the store.
        page: u64,
        /// Checksum sealed at build time.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// A transiently failing read did not recover within the retry budget.
    RetriesExhausted {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// Kind of the last underlying I/O failure.
        last: std::io::ErrorKind,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::OutOfBounds { offset, len, size } => write!(
                f,
                "read out of bounds: offset {offset} + len {len} > size {size}"
            ),
            Error::Corrupt(msg) => write!(f, "corrupt external data: {msg}"),
            Error::ChecksumMismatch {
                page,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch on page {page}: expected {expected:#018x}, got {actual:#018x}"
            ),
            Error::RetriesExhausted { attempts, last } => write!(
                f,
                "read failed after {attempts} attempts (last error: {last:?})"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds() {
        let e = Error::OutOfBounds {
            offset: 10,
            len: 20,
            size: 15,
        };
        let s = e.to_string();
        assert!(s.contains("offset 10"));
        assert!(s.contains("size 15"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn corrupt_displays_message() {
        let e = Error::Corrupt("index truncated".into());
        assert!(e.to_string().contains("index truncated"));
    }

    #[test]
    fn checksum_mismatch_displays_page_and_sums() {
        let e = Error::ChecksumMismatch {
            page: 42,
            expected: 0xdead_beef,
            actual: 0xfeed_face,
        };
        let s = e.to_string();
        assert!(s.contains("page 42"), "{s}");
        assert!(s.contains("0x00000000deadbeef"), "{s}");
        assert!(s.contains("0x00000000feedface"), "{s}");
        // Not a wrapped error: no source.
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn retries_exhausted_displays_attempts_and_kind() {
        let e = Error::RetriesExhausted {
            attempts: 7,
            last: std::io::ErrorKind::Interrupted,
        };
        let s = e.to_string();
        assert!(s.contains("7 attempts"), "{s}");
        assert!(s.contains("Interrupted"), "{s}");
        assert!(std::error::Error::source(&e).is_none());
    }
}
