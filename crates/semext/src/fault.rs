//! Deterministic, seeded fault injection for the simulated NVM device,
//! and the machinery the read path uses to survive it.
//!
//! The device model (`device.rs`) answers every read correctly and on
//! time; real flash arrays do not. This module adds the failure modes a
//! semi-external engine must tolerate — transient `EIO` reads, silent
//! page corruption (bit flips), latency stalls, and progressive wear-out
//! — plus the defenses: per-page checksums ([`PageIntegrity`]), capped
//! jittered exponential backoff ([`Backoff`]), and a [`DeviceHealth`]
//! monitor that feeds graceful degradation upstream (the hybrid policy
//! biases to the DRAM-resident bottom-up direction, the query engine
//! sheds load).
//!
//! **Determinism.** Every fault decision is a pure function of
//! `(plan.seed, byte offset, k)`, where `k` counts the draws made at that
//! offset. Because the per-offset draw sequence does not depend on how
//! concurrent readers interleave, two runs that issue the same multiset
//! of reads per offset inject the *same* multiset of faults — the
//! property the fixed-seed CI smoke job asserts. A retry at the same
//! offset is a fresh draw (`k+1`), which is why transient faults heal
//! under retry whenever the configured rates are below one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::cache::PAGE_BYTES;
use crate::error::{Error, Result};

pub use sembfs_obs::FaultKind;

/// SplitMix64 — the same finalizer the generator crate uses; good enough
/// to decorrelate (seed, offset, draw) triples.
#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform float in `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A serializable fault-injection plan: which failure modes fire, how
/// often, and how the read path may retry.
///
/// The wire grammar is a comma-separated `key=value` list, e.g.
/// `seed=7,eio=0.01,corrupt=0.001,stall=0.005,stall_us=2000,wear_gb=1`
/// (this is what `sembfs bfs --faults <spec>` parses). [`Display`]
/// renders the canonical form; `parse(display(p)) == p`.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Per-read probability of a transient `EIO` failure.
    pub eio: f64,
    /// Per-read probability of a silent bit flip in the returned data.
    pub corrupt: f64,
    /// Per-read probability of a latency stall.
    pub stall: f64,
    /// Stall duration, microseconds of extra device occupancy.
    pub stall_us: u64,
    /// Wear-out horizon: the device's service time doubles for every
    /// `wear_gb` GiB served (capped at [`MAX_WEAR_FACTOR`]×). 0 disables.
    pub wear_gb: f64,
    /// Maximum retries after the initial attempt before a transient
    /// failure surfaces as [`Error::RetriesExhausted`].
    pub retries: u32,
    /// Fault rate (errors + stalls over requests) past which the
    /// [`DeviceHealth`] monitor reports the device degraded.
    pub degrade: f64,
}

/// Wear-out never slows the device past this service-time multiplier.
pub const MAX_WEAR_FACTOR: f64 = 4.0;

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 1,
            eio: 0.0,
            corrupt: 0.0,
            stall: 0.0,
            stall_us: 2000,
            wear_gb: 0.0,
            retries: 6,
            degrade: 0.05,
        }
    }
}

impl FaultPlan {
    /// Parse the `key=value,...` spec grammar. Unknown keys and malformed
    /// values are errors; omitted keys take their defaults.
    pub fn parse(spec: &str) -> std::result::Result<Self, String> {
        let mut plan = Self::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item '{part}' is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("fault spec '{key}': {e}");
            match key.trim() {
                "seed" => plan.seed = value.trim().parse().map_err(|e| bad(&e))?,
                "eio" => plan.eio = value.trim().parse().map_err(|e| bad(&e))?,
                "corrupt" => plan.corrupt = value.trim().parse().map_err(|e| bad(&e))?,
                "stall" => plan.stall = value.trim().parse().map_err(|e| bad(&e))?,
                "stall_us" => plan.stall_us = value.trim().parse().map_err(|e| bad(&e))?,
                "wear_gb" => plan.wear_gb = value.trim().parse().map_err(|e| bad(&e))?,
                "retries" => plan.retries = value.trim().parse().map_err(|e| bad(&e))?,
                "degrade" => plan.degrade = value.trim().parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown fault spec key '{other}'")),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    fn validate(&self) -> std::result::Result<(), String> {
        for (name, rate) in [
            ("eio", self.eio),
            ("corrupt", self.corrupt),
            ("stall", self.stall),
            ("degrade", self.degrade),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!("fault rate '{name}' must be within [0, 1]"));
            }
        }
        if self.eio + self.corrupt + self.stall > 1.0 {
            return Err("fault rates eio+corrupt+stall must not exceed 1".into());
        }
        if self.wear_gb < 0.0 || !self.wear_gb.is_finite() {
            return Err("wear_gb must be non-negative".into());
        }
        Ok(())
    }

    /// True when no failure mode can ever fire (rates and wear all zero).
    pub fn is_noop(&self) -> bool {
        !self.has_read_faults() && self.wear_gb == 0.0
    }

    /// True when any per-read fault (EIO, corruption, stall) can fire.
    /// Wear-out is excluded: it acts on service times inside the device,
    /// not on individual read outcomes.
    pub fn has_read_faults(&self) -> bool {
        self.eio > 0.0 || self.corrupt > 0.0 || self.stall > 0.0
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed={},eio={},corrupt={},stall={},stall_us={},wear_gb={},retries={},degrade={}",
            self.seed,
            self.eio,
            self.corrupt,
            self.stall,
            self.stall_us,
            self.wear_gb,
            self.retries,
            self.degrade
        )
    }
}

/// Running fault-injection counters, snapshotted for reports and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSnapshot {
    /// Transient `EIO` faults injected.
    pub eio: u64,
    /// Bit-flip corruptions injected.
    pub corrupt: u64,
    /// Latency stalls injected.
    pub stall: u64,
    /// Backoff retries the read path performed.
    pub retries: u64,
    /// Checksum verifications that failed (injected or torn pages).
    pub checksum_failures: u64,
}

impl FaultSnapshot {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.eio + self.corrupt + self.stall
    }
}

/// The device-health monitor: windowless error/stall rates over served
/// requests, with a minimum sample count so a single early fault cannot
/// flip a whole run into degraded mode.
#[derive(Debug)]
pub struct DeviceHealth {
    requests: AtomicU64,
    errors: AtomicU64,
    stalls: AtomicU64,
    degrade_ratio: f64,
}

/// Requests observed before [`DeviceHealth::is_degraded`] may fire.
pub const HEALTH_MIN_SAMPLES: u64 = 64;

impl DeviceHealth {
    /// A monitor that reports degraded past `degrade_ratio` faults/request.
    pub fn new(degrade_ratio: f64) -> Self {
        Self {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            degrade_ratio,
        }
    }

    /// Record one served read attempt.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one faulted read (transient error or checksum failure).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one stalled read.
    pub fn record_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// `(faulted, total)` requests observed so far.
    pub fn counts(&self) -> (u64, u64) {
        let faulted = self.errors.load(Ordering::Relaxed) + self.stalls.load(Ordering::Relaxed);
        (faulted, self.requests.load(Ordering::Relaxed))
    }

    /// Whether the observed fault rate has crossed the degradation
    /// threshold (after [`HEALTH_MIN_SAMPLES`] requests).
    pub fn is_degraded(&self) -> bool {
        let (faulted, requests) = self.counts();
        requests >= HEALTH_MIN_SAMPLES && faulted as f64 >= self.degrade_ratio * requests as f64
    }
}

/// Stripes for the per-offset draw counters (power of two).
const DRAW_STRIPES: usize = 16;

/// The live fault-injection state attached to a [`Device`]: the plan, the
/// per-offset draw counters that make decisions deterministic, the
/// injection counters, and the health monitor.
///
/// [`Device`]: crate::Device
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    draws: Vec<Mutex<HashMap<u64, u32>>>,
    eio: AtomicU64,
    corrupt: AtomicU64,
    stall: AtomicU64,
    retries: AtomicU64,
    checksum_failures: AtomicU64,
    health: DeviceHealth,
}

impl FaultState {
    /// Fresh state for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let health = DeviceHealth::new(plan.degrade);
        Self {
            plan,
            draws: (0..DRAW_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            eio: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            stall: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            checksum_failures: AtomicU64::new(0),
            health,
        }
    }

    /// The plan this state executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The health monitor.
    pub fn health(&self) -> &DeviceHealth {
        &self.health
    }

    /// Snapshot the injection counters.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            eio: self.eio.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stall: self.stall.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
        }
    }

    /// Stall duration from the plan.
    pub fn stall_duration(&self) -> Duration {
        Duration::from_micros(self.plan.stall_us)
    }

    /// Count a backoff retry.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a checksum verification failure.
    pub fn record_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Draw the next fault decision for a read at `offset`. The decision
    /// is a pure function of `(seed, offset, k)` with `k` this offset's
    /// draw ordinal, so identical runs inject identical fault multisets
    /// regardless of thread interleaving.
    pub fn draw(&self, offset: u64) -> Draw {
        let k = {
            let stripe = (splitmix(offset) as usize) & (DRAW_STRIPES - 1);
            let mut map = self.draws[stripe].lock();
            let counter = map.entry(offset).or_insert(0);
            let k = *counter;
            *counter += 1;
            k
        };
        let h = splitmix(self.plan.seed ^ splitmix(offset) ^ splitmix(k as u64 + 1));
        let u = unit(h);
        let kind = if u < self.plan.eio {
            Some(FaultKind::TransientEio)
        } else if u < self.plan.eio + self.plan.corrupt {
            Some(FaultKind::Corruption)
        } else if u < self.plan.eio + self.plan.corrupt + self.plan.stall {
            Some(FaultKind::Stall)
        } else {
            None
        };
        if let Some(kind) = kind {
            let counter = match kind {
                FaultKind::TransientEio => &self.eio,
                FaultKind::Corruption => &self.corrupt,
                FaultKind::Stall => &self.stall,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            let tracer = sembfs_obs::global();
            if tracer.is_enabled() {
                tracer.instant(sembfs_obs::TraceEvent::FaultInjected { kind });
            }
        }
        Draw {
            k,
            kind,
            hash: splitmix(h),
        }
    }

    /// A retry policy derived from the plan (seeded jitter).
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_retries: self.plan.retries,
            ..RetryPolicy::default()
        }
    }
}

/// One fault decision: the draw ordinal, the chosen failure mode (if
/// any), and a derived hash for picking e.g. which bit to flip.
#[derive(Debug, Clone, Copy)]
pub struct Draw {
    /// Draw ordinal at this offset (0 = first read).
    pub k: u32,
    /// The failure mode this draw injects, or `None`.
    pub kind: Option<FaultKind>,
    /// Decorrelated hash for secondary choices (bit index, jitter).
    pub hash: u64,
}

impl Draw {
    /// Flip one deterministic bit of `buf` (the silent-corruption model).
    pub fn corrupt_buffer(&self, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        let bit = (self.hash as usize) % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
    }
}

/// Capped exponential backoff with deterministic jitter and a deadline.
///
/// Delays follow `base · 2^attempt`, capped at `cap`, each scaled by a
/// jitter in `[0.5, 1.0]` derived from `(seed, attempt)` — deterministic
/// for a given seed, decorrelated across concurrent retriers. The
/// cumulative delay never exceeds `deadline`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt.
    pub max_retries: u32,
    /// First backoff delay.
    pub base: Duration,
    /// Per-delay cap.
    pub cap: Duration,
    /// Cumulative backoff budget.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 6,
            base: Duration::from_micros(50),
            cap: Duration::from_millis(5),
            deadline: Duration::from_millis(100),
        }
    }
}

/// The backoff iterator: hand out the next delay until retries or the
/// deadline run out.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    seed: u64,
    attempt: u32,
    spent: Duration,
}

impl Backoff {
    /// Start a backoff sequence under `policy`, jitter-seeded by `seed`.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Self {
            policy,
            seed,
            attempt: 0,
            spent: Duration::ZERO,
        }
    }

    /// Attempts made so far (initial try included once exhausted).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next backoff delay, or `None` when the retry budget (count or
    /// deadline) is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.max_retries || self.spent >= self.policy.deadline {
            return None;
        }
        let exp = self
            .policy
            .base
            .saturating_mul(1u32 << self.attempt.min(20))
            .min(self.policy.cap);
        // Jitter in [0.5, 1.0]: never collapses to zero, keeps concurrent
        // retriers decorrelated.
        let jitter = 0.5 + 0.5 * unit(splitmix(self.seed ^ (self.attempt as u64 + 1)));
        let delay = exp.mul_f64(jitter);
        let delay = delay.min(self.policy.deadline.saturating_sub(self.spent));
        self.attempt += 1;
        self.spent += delay;
        Some(delay)
    }
}

/// Retry `op` under `policy`, sleeping the backoff delays on the OS
/// clock. `retryable` decides which errors are worth retrying; the last
/// error is returned when the budget runs out.
///
/// This is the wall-clock flavor for callers without a simulated device
/// (e.g. retrying `QueryError::Overloaded` submissions); the device read
/// path waits on the device clock instead.
pub fn retry_blocking<T, E>(
    policy: RetryPolicy,
    seed: u64,
    mut retryable: impl FnMut(&E) -> bool,
    mut op: impl FnMut() -> std::result::Result<T, E>,
) -> std::result::Result<T, E> {
    let mut backoff = Backoff::new(policy, seed);
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if retryable(&e) => match backoff.next_delay() {
                Some(delay) => {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
}

/// One read through the fault layer: draw a fault per attempt, charge the
/// device for every attempt (failed reads occupy the device too), verify
/// page checksums when `integrity` is sealed, and retry transient
/// failures under the plan's backoff budget.
///
/// Outcomes:
/// * success — `buf` holds verified (or, without integrity, possibly
///   silently corrupted) data;
/// * [`Error::ChecksumMismatch`] — the retry budget ran out and the last
///   attempt still failed verification (a torn page is never returned as
///   valid data);
/// * [`Error::RetriesExhausted`] — the retry budget ran out on transient
///   `EIO` failures.
///
/// Non-injected backend errors (out-of-bounds, real I/O) pass through
/// untouched — retrying cannot heal them.
pub fn faulted_read<B: crate::backend::ReadAt>(
    backend: &B,
    device: &crate::device::Device,
    integrity: Option<&PageIntegrity>,
    state: &FaultState,
    offset: u64,
    buf: &mut [u8],
) -> Result<()> {
    let len = buf.len() as u64;
    let mut backoff = Backoff::new(
        state.retry_policy(),
        state.plan().seed ^ splitmix(offset ^ 0xB0FF_B0FF),
    );
    // Assigned by every fallible arm below before the exhaustion check
    // reads it (the compiler proves this — no dummy initializer needed).
    let mut last_checksum: Option<(u64, u64, u64)>;
    loop {
        let draw = state.draw(offset);
        state.health().record_request();
        // Every attempt occupies the device, failed ones included.
        device.read_request(len);
        match draw.kind {
            Some(FaultKind::TransientEio) => {
                state.health().record_error();
                last_checksum = None;
            }
            other => {
                if other == Some(FaultKind::Stall) {
                    state.health().record_stall();
                    device.apply_stall(state.stall_duration());
                }
                let corrupt = other == Some(FaultKind::Corruption);
                match read_and_verify(backend, integrity, &draw, corrupt, offset, buf) {
                    Ok(()) => return Ok(()),
                    Err(Error::ChecksumMismatch {
                        page,
                        expected,
                        actual,
                    }) => {
                        state.record_checksum_failure();
                        state.health().record_error();
                        last_checksum = Some((page, expected, actual));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        match backoff.next_delay() {
            Some(delay) => {
                state.record_retry();
                let tracer = sembfs_obs::global();
                if tracer.is_enabled() {
                    tracer.instant(sembfs_obs::TraceEvent::Retry {
                        attempt: backoff.attempts(),
                        delay_ns: delay.as_nanos() as u64,
                    });
                }
                device.wait_backoff(delay);
            }
            None => {
                return Err(match last_checksum {
                    Some((page, expected, actual)) => Error::ChecksumMismatch {
                        page,
                        expected,
                        actual,
                    },
                    None => Error::RetriesExhausted {
                        attempts: backoff.attempts() + 1,
                        last: std::io::ErrorKind::Interrupted,
                    },
                });
            }
        }
    }
}

/// One attempt's actual data movement. With sealed integrity the
/// enclosing page-aligned span is read into scratch, the injected bit
/// flip (if any) lands there, and every page is verified before the
/// requested window is copied out — so a corrupted read can never leak
/// into `buf`. Without integrity the read is direct and an injected flip
/// is silent (that is the failure mode checksums exist to catch).
/// A plain (non-faulted) read verified against sealed page checksums: the
/// enclosing page-aligned span is read into scratch and verified, and only
/// then is the requested window copied into `buf` — a torn page is
/// detected at fill and never served, even with no fault plan installed.
pub fn verified_read<B: crate::backend::ReadAt>(
    backend: &B,
    integrity: &PageIntegrity,
    offset: u64,
    buf: &mut [u8],
) -> Result<()> {
    let draw = Draw {
        k: 0,
        kind: None,
        hash: 0,
    };
    read_and_verify(backend, Some(integrity), &draw, false, offset, buf)
}

fn read_and_verify<B: crate::backend::ReadAt>(
    backend: &B,
    integrity: Option<&PageIntegrity>,
    draw: &Draw,
    corrupt: bool,
    offset: u64,
    buf: &mut [u8],
) -> Result<()> {
    let Some(integrity) = integrity else {
        backend.read_at(offset, buf)?;
        if corrupt {
            draw.corrupt_buffer(buf);
        }
        return Ok(());
    };
    let size = backend.len();
    let end = offset
        .checked_add(buf.len() as u64)
        .filter(|&e| e <= size)
        .ok_or(Error::OutOfBounds {
            offset,
            len: buf.len() as u64,
            size,
        })?;
    let first_page = offset / PAGE_BYTES;
    let span_start = first_page * PAGE_BYTES;
    let span_end = end
        .div_ceil(PAGE_BYTES)
        .saturating_mul(PAGE_BYTES)
        .min(size);
    if offset == span_start && end == span_end {
        // `buf` IS the page span: verify in place, no bounce buffer.
        // (Corrupted bytes may land in `buf`, but a detected mismatch
        // propagates as an error, so they are never *served*.)
        backend.read_at(offset, buf)?;
        if corrupt {
            draw.corrupt_buffer(buf);
        }
        return integrity.verify_span(first_page, buf);
    }
    thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.resize((span_end - span_start) as usize, 0);
        backend.read_at(span_start, &mut scratch)?;
        if corrupt {
            draw.corrupt_buffer(&mut scratch);
        }
        integrity.verify_span(first_page, &scratch)?;
        let lo = (offset - span_start) as usize;
        buf.copy_from_slice(&scratch[lo..lo + buf.len()]);
        Ok(())
    })
}

/// Per-page FNV-1a-64 checksums over a store, sealed at build time from
/// known-good data and verified on every cache fill / faulted read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageIntegrity {
    sums: Vec<u64>,
    len: u64,
}

impl PageIntegrity {
    /// Checksum one page's bytes: FNV-1a 64 widened to a word at a time.
    /// Eight bytes per multiply keeps verification off the read path's
    /// critical path (the byte-serial variant costs ~1 ns/byte — more
    /// than a fast device's per-page service time).
    pub fn checksum(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut words = bytes.chunks_exact(8);
        for w in &mut words {
            h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for &b in words.remainder() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Seal checksums over an in-memory image.
    pub fn seal_bytes(data: &[u8]) -> Self {
        let sums = data
            .chunks(PAGE_BYTES as usize)
            .map(Self::checksum)
            .collect();
        Self {
            sums,
            len: data.len() as u64,
        }
    }

    /// Seal checksums by reading `store` page by page (use an unmetered
    /// backend: sealing happens at build time, not on the device).
    pub fn seal_store<R: crate::backend::ReadAt>(store: &R) -> Result<Self> {
        let len = store.len();
        let mut sums = Vec::with_capacity(len.div_ceil(PAGE_BYTES).max(1) as usize);
        let mut buf = vec![0u8; PAGE_BYTES as usize];
        let mut off = 0u64;
        while off < len {
            let take = (len - off).min(PAGE_BYTES) as usize;
            store.read_at(off, &mut buf[..take])?;
            sums.push(Self::checksum(&buf[..take]));
            off += take as u64;
        }
        Ok(Self { sums, len })
    }

    /// Number of sealed pages.
    pub fn pages(&self) -> u64 {
        self.sums.len() as u64
    }

    /// Byte length of the sealed store.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the sealed store was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Verify one page's bytes against the sealed checksum. `bytes` must
    /// be the page's full (possibly short, for the last page) content.
    pub fn verify(&self, page: u64, bytes: &[u8]) -> Result<()> {
        let expected = *self.sums.get(page as usize).ok_or(Error::OutOfBounds {
            offset: page * PAGE_BYTES,
            len: bytes.len() as u64,
            size: self.len,
        })?;
        let actual = Self::checksum(bytes);
        if actual != expected {
            return Err(Error::ChecksumMismatch {
                page,
                expected,
                actual,
            });
        }
        Ok(())
    }

    /// Verify a page-aligned span (`buf` starting at byte offset
    /// `first_page * PAGE_BYTES`), page by page.
    pub fn verify_span(&self, first_page: u64, buf: &[u8]) -> Result<()> {
        for (i, chunk) in buf.chunks(PAGE_BYTES as usize).enumerate() {
            self.verify(first_page + i as u64, chunk)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_display_parse_round_trip() {
        let plan = FaultPlan {
            seed: 7,
            eio: 0.01,
            corrupt: 0.001,
            stall: 0.005,
            stall_us: 1500,
            wear_gb: 2.5,
            retries: 4,
            degrade: 0.1,
        };
        let text = plan.to_string();
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn plan_parse_partial_and_errors() {
        let p = FaultPlan::parse("seed=3,eio=0.2").unwrap();
        assert_eq!(p.seed, 3);
        assert_eq!(p.eio, 0.2);
        assert_eq!(p.retries, FaultPlan::default().retries);
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("eio").is_err());
        assert!(FaultPlan::parse("eio=1.5").is_err());
        assert!(FaultPlan::parse("eio=0.6,corrupt=0.6").is_err());
        assert!(FaultPlan::parse("").unwrap().is_noop());
    }

    #[test]
    fn draws_are_deterministic_and_offset_independent() {
        let plan = FaultPlan::parse("seed=11,eio=0.3,corrupt=0.1,stall=0.1").unwrap();
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        // Interleave offsets differently in the two states; per-offset
        // sequences must still agree.
        let offsets = [0u64, 4096, 8192, 4096, 0, 4096, 8192, 0];
        let mut seq_a: Vec<(u64, Option<FaultKind>)> = Vec::new();
        for &o in &offsets {
            seq_a.push((o, a.draw(o).kind));
        }
        let mut reordered = offsets;
        reordered.reverse();
        let mut seq_b: Vec<(u64, Option<FaultKind>)> = Vec::new();
        for &o in &reordered {
            seq_b.push((o, b.draw(o).kind));
        }
        // Compare per-offset sequences.
        for target in [0u64, 4096, 8192] {
            let sa: Vec<_> = seq_a.iter().filter(|(o, _)| *o == target).collect();
            let sb: Vec<_> = seq_b.iter().filter(|(o, _)| *o == target).collect();
            let kinds_a: Vec<_> = sa.iter().map(|(_, k)| k).collect();
            let mut kinds_b: Vec<_> = sb.iter().map(|(_, k)| k).collect();
            kinds_b.truncate(kinds_a.len());
            assert_eq!(kinds_a, kinds_b, "offset {target}");
        }
        assert!(a.snapshot().total() > 0);
    }

    #[test]
    fn zero_rates_never_inject() {
        let s = FaultState::new(FaultPlan::default());
        for o in 0..1000u64 {
            assert!(s.draw(o * 512).kind.is_none());
        }
        assert_eq!(s.snapshot(), FaultSnapshot::default());
    }

    #[test]
    fn rates_approximate_over_many_draws() {
        let plan = FaultPlan::parse("seed=5,eio=0.25").unwrap();
        let s = FaultState::new(plan);
        let n = 20_000u64;
        for o in 0..n {
            s.draw(o * 4096);
        }
        let eio = s.snapshot().eio as f64 / n as f64;
        assert!((eio - 0.25).abs() < 0.02, "observed eio rate {eio}");
    }

    #[test]
    fn corrupt_buffer_flips_exactly_one_bit() {
        let plan = FaultPlan::parse("seed=9,corrupt=1").unwrap();
        let s = FaultState::new(plan);
        let draw = s.draw(0);
        assert_eq!(draw.kind, Some(FaultKind::Corruption));
        let mut buf = vec![0u8; 4096];
        draw.corrupt_buffer(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        // Same (seed, offset, k) would flip the same bit.
        let s2 = FaultState::new(FaultPlan::parse("seed=9,corrupt=1").unwrap());
        let mut buf2 = vec![0u8; 4096];
        s2.draw(0).corrupt_buffer(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn backoff_is_capped_jittered_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 5,
            base: Duration::from_micros(100),
            cap: Duration::from_micros(800),
            deadline: Duration::from_millis(10),
        };
        let mut b = Backoff::new(policy, 42);
        let delays: Vec<Duration> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 5);
        for (i, d) in delays.iter().enumerate() {
            let exp = policy.base.saturating_mul(1 << i).min(policy.cap);
            assert!(*d <= exp, "delay {i} over its exponential cap");
            assert!(*d >= exp.mul_f64(0.5), "delay {i} under the jitter floor");
        }
        let total: Duration = delays.iter().sum();
        assert!(total <= policy.deadline);
        // Deterministic for the same seed, different for another.
        let again: Vec<Duration> = std::iter::from_fn({
            let mut b = Backoff::new(policy, 42);
            move || b.next_delay()
        })
        .collect();
        assert_eq!(delays, again);
        let other: Vec<Duration> = std::iter::from_fn({
            let mut b = Backoff::new(policy, 43);
            move || b.next_delay()
        })
        .collect();
        assert_ne!(delays, other);
    }

    #[test]
    fn backoff_deadline_exhausts_early() {
        let policy = RetryPolicy {
            max_retries: 100,
            base: Duration::from_millis(4),
            cap: Duration::from_millis(4),
            deadline: Duration::from_millis(10),
        };
        let mut b = Backoff::new(policy, 1);
        let mut total = Duration::ZERO;
        let mut n = 0;
        while let Some(d) = b.next_delay() {
            total += d;
            n += 1;
        }
        assert!(total <= policy.deadline);
        assert!(n < 100, "deadline should cut the sequence short, got {n}");
    }

    #[test]
    fn retry_blocking_retries_then_succeeds() {
        let mut left = 3;
        let policy = RetryPolicy {
            base: Duration::from_micros(1),
            cap: Duration::from_micros(2),
            ..RetryPolicy::default()
        };
        let out: std::result::Result<u32, &str> = retry_blocking(
            policy,
            7,
            |_| true,
            || {
                if left > 0 {
                    left -= 1;
                    Err("busy")
                } else {
                    Ok(99)
                }
            },
        );
        assert_eq!(out, Ok(99));
    }

    #[test]
    fn retry_blocking_gives_up_and_skips_non_retryable() {
        let policy = RetryPolicy {
            max_retries: 2,
            base: Duration::from_micros(1),
            cap: Duration::from_micros(1),
            deadline: Duration::from_millis(1),
        };
        let out: std::result::Result<(), &str> = retry_blocking(policy, 7, |_| true, || Err("x"));
        assert_eq!(out, Err("x"));
        let mut calls = 0;
        let out: std::result::Result<(), &str> = retry_blocking(
            policy,
            7,
            |_| false,
            || {
                calls += 1;
                Err("fatal")
            },
        );
        assert_eq!(out, Err("fatal"));
        assert_eq!(calls, 1, "non-retryable errors must not be retried");
    }

    #[test]
    fn integrity_seals_and_verifies() {
        let mut data = vec![0u8; 3 * PAGE_BYTES as usize + 100];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 7 % 251) as u8;
        }
        let integrity = PageIntegrity::seal_bytes(&data);
        assert_eq!(integrity.pages(), 4);
        assert_eq!(integrity.len(), data.len() as u64);
        integrity.verify_span(0, &data).unwrap();
        // Last (short) page verifies on its own.
        integrity
            .verify(3, &data[3 * PAGE_BYTES as usize..])
            .unwrap();
        // One flipped bit anywhere is caught with the right page index.
        let mut torn = data.clone();
        torn[PAGE_BYTES as usize + 17] ^= 0x40;
        match integrity.verify_span(0, &torn) {
            Err(Error::ChecksumMismatch { page, .. }) => assert_eq!(page, 1),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn integrity_seal_store_matches_seal_bytes() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 256) as u8).collect();
        let from_bytes = PageIntegrity::seal_bytes(&data);
        let from_store =
            PageIntegrity::seal_store(&crate::backend::DramBackend::new(data)).unwrap();
        assert_eq!(from_bytes, from_store);
    }

    #[test]
    fn health_degrades_past_threshold_with_min_samples() {
        let h = DeviceHealth::new(0.1);
        for _ in 0..10 {
            h.record_request();
            h.record_error();
        }
        // 100% fault rate but under the sample floor: not degraded.
        assert!(!h.is_degraded());
        for _ in 0..HEALTH_MIN_SAMPLES {
            h.record_request();
        }
        // 10 faults / 74 requests ≈ 13.5% ≥ 10%: degraded.
        assert!(h.is_degraded());
        let healthy = DeviceHealth::new(0.5);
        for _ in 0..200 {
            healthy.record_request();
        }
        healthy.record_stall();
        assert!(!healthy.is_degraded());
    }
}
