//! Chunked span reads — the paper's NVM access path.
//!
//! §V-B1: "our current implementation reads a continuous region for a
//! vertex at 4KB chunks by using POSIX read(2) API". The application
//! therefore issues ≤4 KiB reads; the kernel block layer then merges
//! adjacent requests before they reach the device, which is why the paper
//! observes `avgrq-sz ≈ 22.6` sectors (≈11.3 KiB) rather than ≤8 sectors
//! (Fig. 13). [`ChunkedReader`] models both layers: the caller reads an
//! arbitrary contiguous span, and the reader issues *device* requests of
//! at most `merge_limit` bytes (the merged size), never smaller than the
//! natural remainder.

use crate::backend::ReadAt;
use crate::device::Device;
use crate::error::Result;
use crate::APP_CHUNK_BYTES;

/// Reads contiguous byte spans as a sequence of bounded device requests.
///
/// ```
/// use sembfs_semext::{ChunkedReader, DramBackend};
///
/// let store = DramBackend::new((0u8..=255).cycle().take(100_000).collect());
/// let reader = ChunkedReader::new(16 * 1024); // merged ≤16 KiB requests
/// assert_eq!(reader.requests_for(40_000), 3);
///
/// let mut buf = vec![0u8; 40_000];
/// reader.read_span(&store, 1234, &mut buf).unwrap();
/// assert_eq!(buf[0], (1234 % 256) as u8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkedReader {
    /// Application-level chunk size (the paper's 4 KiB).
    app_chunk: usize,
    /// Maximum merged device-request size in bytes.
    merge_limit: usize,
}

impl ChunkedReader {
    /// A reader with the paper's 4 KiB application chunks and a given
    /// kernel-merge limit.
    ///
    /// # Panics
    /// Panics if `merge_limit` is zero.
    pub fn new(merge_limit: usize) -> Self {
        assert!(merge_limit > 0, "merge limit must be positive");
        Self {
            app_chunk: APP_CHUNK_BYTES,
            merge_limit: merge_limit.max(APP_CHUNK_BYTES),
        }
    }

    /// No merging: device requests equal application chunks (≤4 KiB).
    pub fn unmerged() -> Self {
        Self {
            app_chunk: APP_CHUNK_BYTES,
            merge_limit: APP_CHUNK_BYTES,
        }
    }

    /// Use the merge limit configured in `device`'s profile.
    pub fn for_device(device: &Device) -> Self {
        let limit = device.profile().merge_limit;
        if limit == usize::MAX {
            // Free device (DRAM): one request per span.
            Self {
                app_chunk: APP_CHUNK_BYTES,
                merge_limit: usize::MAX,
            }
        } else {
            Self::new(limit)
        }
    }

    /// Override the application chunk size (for experimentation).
    ///
    /// # Panics
    /// Panics if `bytes` is zero.
    pub fn with_app_chunk(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "app chunk must be positive");
        self.app_chunk = bytes;
        if self.merge_limit != usize::MAX {
            self.merge_limit = self.merge_limit.max(bytes);
        }
        self
    }

    /// Application-level chunk size in bytes.
    pub fn app_chunk(&self) -> usize {
        self.app_chunk
    }

    /// Merged device-request size limit in bytes.
    pub fn merge_limit(&self) -> usize {
        self.merge_limit
    }

    /// Number of device requests a span of `len` bytes will generate.
    pub fn requests_for(&self, len: usize) -> usize {
        if len == 0 {
            0
        } else if self.merge_limit == usize::MAX {
            1
        } else {
            len.div_ceil(self.merge_limit)
        }
    }

    /// Fill `buf` from `src` starting at `offset`, issuing device requests
    /// of at most [`merge_limit`](Self::merge_limit) bytes each.
    pub fn read_span<R: ReadAt>(&self, src: &R, offset: u64, buf: &mut [u8]) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        if self.merge_limit == usize::MAX {
            return src.read_at(offset, buf);
        }
        let mut pos = 0usize;
        while pos < buf.len() {
            let take = self.merge_limit.min(buf.len() - pos);
            src.read_at(offset + pos as u64, &mut buf[pos..pos + take])?;
            pos += take;
        }
        Ok(())
    }
}

impl Default for ChunkedReader {
    fn default() -> Self {
        Self::unmerged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DramBackend;
    use crate::device::{DelayMode, DeviceProfile, NvmStore};

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn span_read_matches_direct_read() {
        let bytes = data(100_000);
        let backend = DramBackend::new(bytes.clone());
        let reader = ChunkedReader::unmerged();
        for (off, len) in [(0usize, 1usize), (1, 4096), (4095, 4097), (50_000, 40_000)] {
            let mut buf = vec![0u8; len];
            reader.read_span(&backend, off as u64, &mut buf).unwrap();
            assert_eq!(&buf[..], &bytes[off..off + len]);
        }
    }

    #[test]
    fn request_count_unmerged() {
        let r = ChunkedReader::unmerged();
        assert_eq!(r.requests_for(0), 0);
        assert_eq!(r.requests_for(1), 1);
        assert_eq!(r.requests_for(4096), 1);
        assert_eq!(r.requests_for(4097), 2);
        assert_eq!(r.requests_for(3 * 4096 + 1), 4);
    }

    #[test]
    fn request_count_merged() {
        let r = ChunkedReader::new(16 * 1024);
        assert_eq!(r.requests_for(4096), 1);
        assert_eq!(r.requests_for(16 * 1024), 1);
        assert_eq!(r.requests_for(16 * 1024 + 1), 2);
    }

    #[test]
    fn device_sees_merged_requests() {
        let bytes = data(64 * 1024);
        let dev = Device::new(
            DeviceProfile {
                merge_limit: 16 * 1024,
                ..DeviceProfile::iodrive2()
            },
            DelayMode::Accounting,
        );
        let store = NvmStore::new(DramBackend::new(bytes.clone()), dev.clone());
        let reader = ChunkedReader::for_device(&dev);

        let mut buf = vec![0u8; 40_000];
        reader.read_span(&store, 1000, &mut buf).unwrap();
        assert_eq!(&buf[..], &bytes[1000..41_000]);

        let snap = dev.snapshot();
        // 40 000 bytes at ≤16 KiB per request → 3 requests; the device
        // accounts physical (4 KiB-granular) transfers: 16K + 16K + 8K.
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.bytes, 40_960);
    }

    #[test]
    fn unmerged_device_request_sizes_bounded_by_4k() {
        let bytes = data(32 * 1024);
        let dev = Device::unmetered();
        let store = NvmStore::new(DramBackend::new(bytes), dev.clone());
        let reader = ChunkedReader::unmerged();
        let mut buf = vec![0u8; 10_000];
        reader.read_span(&store, 0, &mut buf).unwrap();
        let snap = dev.snapshot();
        assert_eq!(snap.requests, 3); // 4096 + 4096 + 1808
                                      // avgrq-sz ≤ 8 sectors when unmerged.
        assert!(snap.avgrq_sz() <= 8.0);
    }

    #[test]
    fn empty_span_issues_nothing() {
        let dev = Device::unmetered();
        let store = NvmStore::new(DramBackend::new(vec![1, 2, 3]), dev.clone());
        let mut buf = [0u8; 0];
        ChunkedReader::unmerged()
            .read_span(&store, 0, &mut buf)
            .unwrap();
        assert_eq!(dev.snapshot().requests, 0);
    }

    #[test]
    fn for_device_uses_profile_merge_limit() {
        let dev = Device::new(
            DeviceProfile {
                merge_limit: 32 * 1024,
                ..DeviceProfile::intel_ssd_320()
            },
            DelayMode::Accounting,
        );
        assert_eq!(ChunkedReader::for_device(&dev).merge_limit(), 32 * 1024);
        let free = Device::unmetered();
        assert_eq!(ChunkedReader::for_device(&free).merge_limit(), usize::MAX);
    }

    #[test]
    fn out_of_bounds_span_fails() {
        let store = DramBackend::new(vec![0u8; 100]);
        let mut buf = vec![0u8; 50];
        assert!(ChunkedReader::unmerged()
            .read_span(&store, 60, &mut buf)
            .is_err());
    }

    #[test]
    fn custom_app_chunk() {
        let r = ChunkedReader::unmerged().with_app_chunk(1024);
        assert_eq!(r.app_chunk(), 1024);
        assert_eq!(r.merge_limit(), 4096); // merge limit never below prior value
    }
}
