//! Positional-read storage backends.
//!
//! [`ReadAt`] abstracts "a byte-addressable region that can be read at an
//! offset". Three implementations cover the layouts in the paper:
//! in-DRAM data ([`DramBackend`]), data on a file read through the
//! `pread`-style positional API ([`FileBackend`], the paper's `read(2)`
//! path), and memory-mapped files ([`MmapBackend`]).

use std::fs::File;
use std::path::Path;
use std::sync::Arc;

use crate::error::{Error, Result};

/// One request of a batched read: fill `buf` from `offset`.
#[derive(Debug)]
pub struct BatchRead<'a> {
    /// Byte offset of the read.
    pub offset: u64,
    /// Destination buffer (its length is the request size).
    pub buf: &'a mut [u8],
}

/// A byte region supporting positional reads from many threads at once.
pub trait ReadAt: Send + Sync {
    /// Fill `buf` from bytes `[offset, offset + buf.len())`.
    ///
    /// Fails with [`Error::OutOfBounds`] when the range exceeds [`len`].
    ///
    /// [`len`]: ReadAt::len
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Total size of the region in bytes.
    fn len(&self) -> u64;

    /// True when the region is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serve several reads as one **asynchronous batch** (the `libaio`
    /// aggregation of §VI-D). The default implementation simply loops
    /// [`read_at`](ReadAt::read_at); metered stores override it so the
    /// whole batch pays the device access latency once instead of once
    /// per request.
    fn read_batch_at(&self, reqs: &mut [BatchRead<'_>]) -> Result<()> {
        for r in reqs.iter_mut() {
            self.read_at(r.offset, r.buf)?;
        }
        Ok(())
    }

    /// Hint that `[offset, offset + len)` will be read soon.
    ///
    /// Plain backends ignore it (the default is a no-op); caching stores
    /// ([`ShardedCachedStore`](crate::ShardedCachedStore)) load the span's
    /// missing pages ahead of the demand reads, turning many scattered
    /// small requests into few large sequential ones. Ranges past the end
    /// of the region are clipped, not an error.
    fn prefetch(&self, _offset: u64, _len: u64) -> Result<()> {
        Ok(())
    }
}

fn check_bounds(offset: u64, len: usize, size: u64) -> Result<()> {
    let end = offset.checked_add(len as u64).ok_or(Error::OutOfBounds {
        offset,
        len: len as u64,
        size,
    })?;
    if end > size {
        return Err(Error::OutOfBounds {
            offset,
            len: len as u64,
            size,
        });
    }
    Ok(())
}

/// An in-memory byte region (the "DRAM" side of every scenario).
#[derive(Debug, Clone)]
pub struct DramBackend {
    data: Arc<[u8]>,
}

impl DramBackend {
    /// Wrap an owned byte buffer.
    pub fn new(data: Vec<u8>) -> Self {
        Self { data: data.into() }
    }

    /// Borrow the full contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }
}

impl ReadAt for DramBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        check_bounds(offset, buf.len(), self.len())?;
        let start = offset as usize;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }
}

/// A file read through positional I/O (`pread` on Unix) — the paper's
/// `read(2)` access path for the offloaded forward graph (§V-B1).
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    size: u64,
}

impl FileBackend {
    /// Open `path` read-only.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = File::open(path)?;
        let size = file.metadata()?.len();
        Ok(Self { file, size })
    }

    /// Wrap an already-open file.
    pub fn from_file(file: File) -> Result<Self> {
        let size = file.metadata()?.len();
        Ok(Self { file, size })
    }
}

impl ReadAt for FileBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        check_bounds(offset, buf.len(), self.size)?;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)?;
        }
        #[cfg(not(unix))]
        {
            compile_error!("sembfs-semext requires a Unix platform for positional file reads");
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.size
    }
}

/// A memory-mapped file. The alternative access path for semi-external
/// data; used to compare against the paper's explicit `read(2)` path.
#[derive(Debug)]
pub struct MmapBackend {
    map: memmap2::Mmap,
}

impl MmapBackend {
    /// Map `path` read-only.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = File::open(path)?;
        // SAFETY: the mapping is read-only and we treat the file as
        // immutable for the lifetime of the map (all sembfs external files
        // are written once, then only read).
        let map = unsafe { memmap2::Mmap::map(&file)? };
        Ok(Self { map })
    }

    /// Borrow the mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.map
    }
}

impl ReadAt for MmapBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        check_bounds(offset, buf.len(), self.len())?;
        let start = offset as usize;
        buf.copy_from_slice(&self.map[start..start + buf.len()]);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.map.len() as u64
    }
}

impl<T: ReadAt + ?Sized> ReadAt for Arc<T> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        (**self).read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_batch_at(&self, reqs: &mut [BatchRead<'_>]) -> Result<()> {
        (**self).read_batch_at(reqs)
    }

    fn prefetch(&self, offset: u64, len: u64) -> Result<()> {
        (**self).prefetch(offset, len)
    }
}

impl<T: ReadAt + ?Sized> ReadAt for &T {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        (**self).read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_batch_at(&self, reqs: &mut [BatchRead<'_>]) -> Result<()> {
        (**self).read_batch_at(reqs)
    }

    fn prefetch(&self, offset: u64, len: u64) -> Result<()> {
        (**self).prefetch(offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn sample() -> Vec<u8> {
        (0..=255u8).cycle().take(10_000).collect()
    }

    #[test]
    fn dram_read_roundtrip() {
        let data = sample();
        let b = DramBackend::new(data.clone());
        let mut buf = vec![0u8; 100];
        b.read_at(500, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[500..600]);
    }

    #[test]
    fn dram_out_of_bounds_rejected() {
        let b = DramBackend::new(vec![0u8; 10]);
        let mut buf = vec![0u8; 5];
        assert!(matches!(
            b.read_at(8, &mut buf),
            Err(Error::OutOfBounds { .. })
        ));
        // Exactly at the end is fine.
        b.read_at(5, &mut buf).unwrap();
    }

    #[test]
    fn dram_offset_overflow_rejected() {
        let b = DramBackend::new(vec![0u8; 10]);
        let mut buf = vec![0u8; 5];
        assert!(b.read_at(u64::MAX - 1, &mut buf).is_err());
    }

    #[test]
    fn file_and_mmap_agree_with_dram() {
        let data = sample();
        let dir = TempDir::new("backend-test").unwrap();
        let path = dir.path().join("blob.bin");
        std::fs::write(&path, &data).unwrap();

        let dram = DramBackend::new(data);
        let file = FileBackend::open(&path).unwrap();
        let mmap = MmapBackend::open(&path).unwrap();

        assert_eq!(file.len(), dram.len());
        assert_eq!(mmap.len(), dram.len());

        for (off, n) in [(0u64, 1usize), (4095, 2), (9_990, 10), (1234, 4096)] {
            let mut a = vec![0u8; n];
            let mut b = vec![0u8; n];
            let mut c = vec![0u8; n];
            dram.read_at(off, &mut a).unwrap();
            file.read_at(off, &mut b).unwrap();
            mmap.read_at(off, &mut c).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn file_out_of_bounds_rejected() {
        let dir = TempDir::new("backend-oob").unwrap();
        let path = dir.path().join("small.bin");
        std::fs::write(&path, [1, 2, 3]).unwrap();
        let f = FileBackend::open(&path).unwrap();
        let mut buf = [0u8; 4];
        assert!(f.read_at(0, &mut buf).is_err());
    }

    #[test]
    fn empty_read_always_succeeds() {
        let b = DramBackend::new(vec![]);
        let mut buf = [0u8; 0];
        b.read_at(0, &mut buf).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn arc_and_ref_forward() {
        let b = Arc::new(DramBackend::new(vec![7u8; 16]));
        let mut buf = [0u8; 4];
        b.read_at(2, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 4]);
        let r: &DramBackend = &b;
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(r.len(), 16);
    }
}
