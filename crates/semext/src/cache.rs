//! A page-cache model — the OS page cache the paper's runs sat on.
//!
//! The paper's Fig. 9 result (at SCALE 26 the DRAM+PCIeFlash scenario is
//! *competitive* with DRAM-only) is only possible because the 64 GB
//! machine has spare DRAM beyond the backward graph + status data, and
//! Linux caches the forward graph's file pages there: after first touch,
//! most "NVM reads" are DRAM hits. At SCALE 27 the spare (≈16 GB) covers
//! less than half the 40 GB forward graph, so the device stays on the
//! critical path. [`PageCache`] models exactly that: a fixed byte budget
//! of 4 KiB pages with CLOCK (second-chance) replacement, shared across
//! all of a scenario's offloaded files like the real page cache is.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::backend::ReadAt;
use crate::device::Device;
use crate::error::Result;
use crate::APP_CHUNK_BYTES;
use std::sync::Arc;

/// Page size of the cache (the kernel's 4 KiB).
pub const PAGE_BYTES: u64 = APP_CHUNK_BYTES as u64;

#[derive(Debug)]
struct Slots {
    /// `(file, page)` → slot index.
    map: HashMap<(u32, u64), usize>,
    /// Per slot: the key occupying it and its reference bit.
    slots: Vec<((u32, u64), bool)>,
    /// CLOCK hand.
    hand: usize,
}

/// A shared, fixed-capacity page cache with CLOCK replacement.
///
/// ```
/// use sembfs_semext::cache::{PageCache, PAGE_BYTES};
///
/// let cache = PageCache::new(8 * PAGE_BYTES);
/// let file = cache.register_file();
/// assert!(!cache.access(file, 3)); // cold miss
/// assert!(cache.access(file, 3));  // warm hit
/// assert_eq!(cache.stats(), (1, 1));
/// ```
#[derive(Debug)]
pub struct PageCache {
    capacity_pages: usize,
    inner: Mutex<Slots>,
    next_file: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PageCache {
    /// A cache of `capacity_bytes` (rounded down to whole pages; at least
    /// one page).
    pub fn new(capacity_bytes: u64) -> Arc<Self> {
        let capacity_pages = ((capacity_bytes / PAGE_BYTES) as usize).max(1);
        Arc::new(Self {
            capacity_pages,
            inner: Mutex::new(Slots {
                map: HashMap::new(),
                slots: Vec::new(),
                hand: 0,
            }),
            next_file: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Register a file; returns its cache namespace id.
    pub fn register_file(&self) -> u32 {
        self.next_file.fetch_add(1, Ordering::Relaxed) as u32
    }

    /// Look up page `(file, page)`, marking it referenced. Returns `true`
    /// on a hit; on a miss the page is inserted (evicting via CLOCK).
    pub fn access(&self, file: u32, page: u64) -> bool {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&(file, page)) {
            inner.slots[slot].1 = true;
            drop(inner);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // Miss: insert.
        if inner.slots.len() < self.capacity_pages {
            let slot = inner.slots.len();
            inner.slots.push(((file, page), true));
            inner.map.insert((file, page), slot);
        } else {
            // CLOCK: advance until an unreferenced slot appears.
            loop {
                let hand = inner.hand;
                inner.hand = (hand + 1) % self.capacity_pages;
                if inner.slots[hand].1 {
                    inner.slots[hand].1 = false;
                } else {
                    let old = inner.slots[hand].0;
                    inner.map.remove(&old);
                    inner.slots[hand] = ((file, page), true);
                    inner.map.insert((file, page), hand);
                    break;
                }
            }
        }
        drop(inner);
        self.misses.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Hit rate in `[0, 1]` (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// A device-metered store fronted by a shared [`PageCache`]: reads touch
/// the cache page-by-page, and only missing pages become device requests
/// (one request per run of consecutive missing pages, like the kernel's
/// readahead path).
#[derive(Debug)]
pub struct CachedStore<B> {
    backend: B,
    device: Arc<Device>,
    cache: Arc<PageCache>,
    file_id: u32,
}

impl<B: ReadAt> CachedStore<B> {
    /// Front `backend` with `cache`, metering misses on `device`.
    pub fn new(backend: B, device: Arc<Device>, cache: Arc<PageCache>) -> Self {
        let file_id = cache.register_file();
        Self {
            backend,
            device,
            cache,
            file_id,
        }
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// Mark every page of this store present in the cache (subject to
    /// capacity), free of device charges — writing a file through the
    /// kernel leaves its pages in the page cache, so a freshly offloaded
    /// graph starts warm.
    pub fn warm(&self) {
        let pages = self.backend.len().div_ceil(PAGE_BYTES);
        for page in 0..pages {
            self.cache.access(self.file_id, page);
        }
    }
}

impl<B: ReadAt> ReadAt for CachedStore<B> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        // Data always comes from the backend (it is the ground truth);
        // the cache only decides whether the device is charged.
        self.backend.read_at(offset, buf)?;
        if buf.is_empty() {
            return Ok(());
        }
        let first = offset / PAGE_BYTES;
        let last = (offset + buf.len() as u64 - 1) / PAGE_BYTES;
        let mut miss_run = 0u64;
        for page in first..=last {
            if self.cache.access(self.file_id, page) {
                if miss_run > 0 {
                    self.device.read_request(miss_run * PAGE_BYTES);
                    miss_run = 0;
                }
            } else {
                miss_run += 1;
            }
        }
        if miss_run > 0 {
            self.device.read_request(miss_run * PAGE_BYTES);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.backend.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DramBackend;
    use crate::device::{DelayMode, DeviceProfile};

    #[test]
    fn second_access_hits() {
        let c = PageCache::new(10 * PAGE_BYTES);
        let f = c.register_file();
        assert!(!c.access(f, 3));
        assert!(c.access(f, 3));
        assert_eq!(c.stats(), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn files_are_namespaced() {
        let c = PageCache::new(10 * PAGE_BYTES);
        let a = c.register_file();
        let b = c.register_file();
        assert!(!c.access(a, 0));
        assert!(!c.access(b, 0), "same page number, different file");
        assert!(c.access(a, 0));
    }

    #[test]
    fn clock_evicts_cold_pages() {
        let c = PageCache::new(2 * PAGE_BYTES);
        let f = c.register_file();
        c.access(f, 1);
        c.access(f, 2);
        // Keep 1 hot, stream 3 and 4 through.
        assert!(c.access(f, 1));
        c.access(f, 3);
        c.access(f, 4);
        // 1 should have survived longer than 2 (second chance); at minimum
        // the cache stays at capacity and keeps answering.
        assert_eq!(c.capacity_pages(), 2);
        let (h, m) = c.stats();
        assert_eq!(h + m, 5);
    }

    #[test]
    fn working_set_within_capacity_hits_forever() {
        let c = PageCache::new(4 * PAGE_BYTES);
        let f = c.register_file();
        for _ in 0..10 {
            for p in 0..4 {
                c.access(f, p);
            }
        }
        let (h, m) = c.stats();
        assert_eq!(m, 4, "only the cold misses");
        assert_eq!(h, 36);
    }

    #[test]
    fn cached_store_charges_only_misses() {
        let data = vec![7u8; 16 * PAGE_BYTES as usize];
        let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        let cache = PageCache::new(16 * PAGE_BYTES);
        let store = CachedStore::new(DramBackend::new(data), dev.clone(), cache.clone());

        let mut buf = vec![0u8; 3 * PAGE_BYTES as usize];
        store.read_at(0, &mut buf).unwrap();
        let cold = dev.snapshot();
        assert_eq!(cold.bytes, 3 * PAGE_BYTES); // one merged 3-page miss run
        assert_eq!(cold.requests, 1);

        store.read_at(0, &mut buf).unwrap();
        let warm = dev.snapshot();
        assert_eq!(warm.requests, cold.requests, "warm read is free");
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_hit_splits_miss_runs() {
        let data = vec![1u8; 8 * PAGE_BYTES as usize];
        let dev = Device::new(DeviceProfile::iodrive2(), DelayMode::Accounting);
        let cache = PageCache::new(8 * PAGE_BYTES);
        let store = CachedStore::new(DramBackend::new(data), dev.clone(), cache);

        // Warm page 2 only.
        let mut one = vec![0u8; PAGE_BYTES as usize];
        store.read_at(2 * PAGE_BYTES, &mut one).unwrap();
        dev.reset_stats();
        // Read pages 0..=4: miss runs [0,1] and [3,4], page 2 hits.
        let mut buf = vec![0u8; 5 * PAGE_BYTES as usize];
        store.read_at(0, &mut buf).unwrap();
        let snap = dev.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.bytes, 4 * PAGE_BYTES);
    }

    #[test]
    fn thrashing_working_set_keeps_missing() {
        let c = PageCache::new(2 * PAGE_BYTES);
        let f = c.register_file();
        for _ in 0..5 {
            for p in 0..4 {
                c.access(f, p);
            }
        }
        assert!(
            c.hit_rate() < 0.5,
            "hit rate {} on a thrashing set",
            c.hit_rate()
        );
    }
}
