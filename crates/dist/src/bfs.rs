//! The distributed hybrid BFS (Beamer et al., MTAAP'13, on the simulated
//! cluster).
//!
//! Level-synchronous with two communication patterns:
//!
//! * **top-down**: owners of frontier vertices expand locally and send
//!   `(child, parent)` claims to each child's owner (an all-to-all of
//!   8-byte pairs); owners apply claims first-wins.
//! * **bottom-up**: one allgather replicates the frontier bitmap
//!   (`n/8 · (p−1)` bytes, `⌈log₂ p⌉` rounds), then every node probes its
//!   local unvisited vertices with early termination, no per-edge
//!   communication — the property that made bottom-up attractive for
//!   distributed memory in the first place.
//!
//! Nodes execute one after another on the host; the simulated level time
//! is the **maximum** node time plus the modeled network phase, which is
//! what a synchronous cluster would observe.

use std::time::{Duration, Instant};

use sembfs_core::policy::{DirectionPolicy, PolicyCtx};
use sembfs_core::Direction;
use sembfs_semext::Result;

use crate::cluster::DistGraph;
use crate::network::NetStats;
use crate::{VertexId, INVALID_PARENT};

/// Per-level measurements of the distributed search.
#[derive(Debug, Clone)]
pub struct DistLevelStats {
    /// Level number (1 = first expansion).
    pub level: u32,
    /// Direction of the level.
    pub direction: Direction,
    /// Global frontier size consumed.
    pub frontier_size: u64,
    /// Vertices discovered.
    pub discovered: u64,
    /// Edges examined across all nodes.
    pub scanned_edges: u64,
    /// Simulated level time: `max_k(compute_k) + network`.
    pub sim_time: Duration,
    /// The level's network share of `sim_time`.
    pub net_time: Duration,
    /// Bytes exchanged this level.
    pub net_bytes: u64,
    /// Slowest node's compute time this level.
    pub max_node_compute: Duration,
}

/// Result of a distributed BFS.
#[derive(Debug, Clone)]
pub struct DistBfsRun {
    /// Global parent array.
    pub parent: Vec<VertexId>,
    /// Per-level measurements.
    pub levels: Vec<DistLevelStats>,
    /// Vertices reached (including the root).
    pub visited: u64,
    /// Undirected edges in the traversed component (TEPS numerator).
    pub teps_edges: u64,
    /// Total simulated wall time.
    pub sim_elapsed: Duration,
    /// Aggregate traffic.
    pub net: NetStats,
}

impl DistBfsRun {
    /// Simulated TEPS.
    pub fn sim_teps(&self) -> f64 {
        let s = self.sim_elapsed.as_secs_f64();
        if s > 0.0 {
            self.teps_edges as f64 / s
        } else {
            0.0
        }
    }
}

/// A plain (single-writer-per-level) bitmap over all vertices.
struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    fn new(n: u64) -> Self {
        Self {
            words: vec![0; n.div_ceil(64) as usize],
        }
    }

    #[inline]
    fn get(&self, i: VertexId) -> bool {
        self.words[i as usize / 64] & (1 << (i % 64)) != 0
    }

    #[inline]
    fn set(&mut self, i: VertexId) {
        self.words[i as usize / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }

    fn byte_size(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

/// Run the distributed hybrid BFS from `root` under `policy`.
pub fn dist_hybrid_bfs(
    graph: &DistGraph,
    root: VertexId,
    policy: &dyn DirectionPolicy,
) -> Result<DistBfsRun> {
    let n = graph.num_vertices();
    assert!((root as u64) < n, "root out of range");
    let p = graph.num_nodes();

    let mut parent: Vec<VertexId> = vec![INVALID_PARENT; n as usize];
    parent[root as usize] = root;
    let mut visited = Bitmap::new(n);
    visited.set(root);

    // Frontier: per-node local queues (top-down) or a global bitmap
    // replica (bottom-up) — on a real cluster the queue entries live at
    // their owners and the bitmap is the allgathered replica.
    let mut queues: Vec<Vec<VertexId>> = vec![Vec::new(); p];
    queues[graph.owner(root)].push(root);
    let mut front_bm = Bitmap::new(n);
    let mut next_bm = Bitmap::new(n);
    let mut bitmap_current = false;

    let mut levels = Vec::new();
    let mut net = NetStats::default();
    let mut direction = Direction::TopDown;
    let mut prev_frontier = 0u64;
    let mut frontier_size = 1u64;
    let mut visited_count = 1u64;
    let mut level = 1u32;
    let mut sim_elapsed = Duration::ZERO;

    let (mut buf, mut scratch) = (Vec::new(), Vec::new());
    let mut outboxes: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); p];

    while frontier_size > 0 {
        let decided = policy.decide(&PolicyCtx {
            current: direction,
            level,
            n_all: n,
            frontier: frontier_size,
            prev_frontier,
            frontier_edges: None,
            unvisited: n - visited_count,
            event: None,
        });
        // Representation conversion at switches.
        match decided {
            Direction::TopDown if bitmap_current => {
                for q in &mut queues {
                    q.clear();
                }
                for (wi, &word) in front_bm.words.iter().enumerate() {
                    let mut w = word;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        w &= w - 1;
                        let v = (wi * 64) as u64 + bit as u64;
                        if v < n {
                            queues[graph.owner(v as VertexId)].push(v as VertexId);
                        }
                    }
                }
                bitmap_current = false;
            }
            Direction::BottomUp if !bitmap_current => {
                front_bm.clear();
                for q in &queues {
                    for &v in q {
                        front_bm.set(v);
                    }
                }
                // The conversion itself is local (owners set their bits);
                // the allgather below shares it.
                bitmap_current = true;
            }
            _ => {}
        }
        direction = decided;

        let mut scanned = 0u64;
        let mut discovered = 0u64;
        let mut max_compute = Duration::ZERO;
        let mut net_bytes = 0u64;
        let net_time;

        match direction {
            Direction::TopDown => {
                // Expand phase, one node at a time (simulated parallel).
                for (k, queue) in queues.iter().enumerate() {
                    let t0 = Instant::now();
                    let range = graph.partition().range(k);
                    for &v in queue {
                        let row = v as u64 - range.start;
                        graph
                            .node(k)
                            .with_neighbors(row, &mut buf, &mut scratch, |ns| {
                                scanned += ns.len() as u64;
                                for &w in ns {
                                    // Cheap local pre-filter on the replica of
                                    // the visited set (a real system filters
                                    // with its local stale copy too; owners
                                    // re-check on apply).
                                    if parent[w as usize] == INVALID_PARENT {
                                        outboxes[graph.owner(w)].push((w, v));
                                    }
                                }
                            })?;
                    }
                    max_compute = max_compute.max(t0.elapsed());
                }
                // Exchange phase: all-to-all of claims. (Claims a node
                // addresses to itself never hit the wire; since outboxes
                // are keyed by destination and most claims cross the
                // partition on a scrambled graph, we charge the full
                // volume — the self-share is O(1/p).)
                for outbox in outboxes.iter() {
                    let bytes = outbox.len() as u64 * 8;
                    if bytes > 0 {
                        net.message(bytes);
                        net_bytes += bytes;
                    }
                }
                net_time = graph.spec().network.phase_time(net_bytes, 1);
                // Apply phase at the owners.
                let mut apply_max = Duration::ZERO;
                for (k, q) in queues.iter_mut().enumerate() {
                    q.clear();
                    let t0 = Instant::now();
                    for &(w, src) in &outboxes[k] {
                        if parent[w as usize] == INVALID_PARENT {
                            parent[w as usize] = src;
                            visited.set(w);
                            q.push(w);
                            discovered += 1;
                        }
                    }
                    apply_max = apply_max.max(t0.elapsed());
                }
                max_compute += apply_max;
                for outbox in &mut outboxes {
                    outbox.clear();
                }
            }
            Direction::BottomUp => {
                // Allgather the frontier bitmap replica.
                let gather_bytes = front_bm.byte_size() * (p as u64 - 1);
                if gather_bytes > 0 {
                    net.collective(gather_bytes);
                    net_bytes += gather_bytes;
                }
                net_time = graph.spec().network.phase_time(
                    gather_bytes,
                    (p as u32).next_power_of_two().trailing_zeros().max(1),
                );

                next_bm.clear();
                for k in 0..p {
                    let t0 = Instant::now();
                    let range = graph.partition().range(k);
                    for v in range.clone() {
                        let v = v as VertexId;
                        if visited.get(v) {
                            continue;
                        }
                        let row = v as u64 - range.start;
                        // Bottom-up always probes the DRAM-resident copy
                        // (the paper's layout, applied per node).
                        let ns = graph.node(k).bu_neighbors(row);
                        let mut found = None;
                        for (i, &u) in ns.iter().enumerate() {
                            if front_bm.get(u) {
                                scanned += i as u64 + 1;
                                found = Some(u);
                                break;
                            }
                        }
                        if found.is_none() {
                            scanned += ns.len() as u64;
                        }
                        if let Some(u) = found {
                            parent[v as usize] = u;
                            visited.set(v);
                            next_bm.set(v);
                            discovered += 1;
                        }
                    }
                    max_compute = max_compute.max(t0.elapsed());
                }
                std::mem::swap(&mut front_bm, &mut next_bm);
            }
        }

        let sim_time = max_compute + net_time;
        sim_elapsed += sim_time;
        visited_count += discovered;
        levels.push(DistLevelStats {
            level,
            direction,
            frontier_size,
            discovered,
            scanned_edges: scanned,
            sim_time,
            net_time,
            net_bytes,
            max_node_compute: max_compute,
        });
        prev_frontier = frontier_size;
        frontier_size = discovered;
        level += 1;
    }

    // TEPS edge accounting from global degrees.
    let teps_edges = (0..n as usize)
        .filter(|&v| parent[v] != INVALID_PARENT)
        .map(|v| graph.degree(v as VertexId))
        .sum::<u64>()
        / 2;

    Ok(DistBfsRun {
        parent,
        levels,
        visited: visited_count,
        teps_edges,
        sim_elapsed,
        net,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use sembfs_core::{AlphaBetaPolicy, FixedPolicy};
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_graph500::{select_roots, validate_bfs_tree, KroneckerParams};

    fn kron(scale: u32, seed: u64) -> MemEdgeList {
        KroneckerParams::graph500(scale, seed).generate()
    }

    #[test]
    fn path_graph_all_nodes() {
        let el = MemEdgeList::new(8, (0..7).map(|i| (i, i + 1)).collect());
        let g = DistGraph::build(&el, ClusterSpec::dram(4)).unwrap();
        let run = dist_hybrid_bfs(&g, 0, &AlphaBetaPolicy::new(1e3, 1e3)).unwrap();
        assert_eq!(run.visited, 8);
        assert_eq!(run.parent[7], 6);
        validate_bfs_tree(&run.parent, 0, &el).unwrap();
    }

    #[test]
    fn matches_single_node_levels_on_kronecker() {
        let el = kron(10, 33);
        let single = DistGraph::build(&el, ClusterSpec::dram(1)).unwrap();
        let multi = DistGraph::build(&el, ClusterSpec::dram(4)).unwrap();
        let roots = select_roots(single.num_vertices(), 2, 7, |v| single.degree(v));
        for &root in &roots {
            let a = dist_hybrid_bfs(&single, root, &AlphaBetaPolicy::new(1e4, 1e5)).unwrap();
            let b = dist_hybrid_bfs(&multi, root, &AlphaBetaPolicy::new(1e4, 1e5)).unwrap();
            let la = sembfs_graph500::validate::compute_levels(&a.parent, root).unwrap();
            let lb = sembfs_graph500::validate::compute_levels(&b.parent, root).unwrap();
            assert_eq!(la, lb, "root {root}");
            assert_eq!(a.visited, b.visited);
            validate_bfs_tree(&b.parent, root, &el).unwrap();
        }
    }

    #[test]
    fn fixed_directions_validate() {
        let el = kron(9, 4);
        let g = DistGraph::build(&el, ClusterSpec::dram(3)).unwrap();
        let root = select_roots(g.num_vertices(), 1, 2, |v| g.degree(v))[0];
        for policy in [
            FixedPolicy(Direction::TopDown),
            FixedPolicy(Direction::BottomUp),
        ] {
            let run = dist_hybrid_bfs(&g, root, &policy).unwrap();
            validate_bfs_tree(&run.parent, root, &el).unwrap();
            assert!(run.visited > 1);
        }
    }

    #[test]
    fn network_traffic_accounted() {
        let el = kron(9, 8);
        let mut spec = ClusterSpec::dram(4);
        spec.network = crate::NetworkProfile::ten_gbe();
        let g = DistGraph::build(&el, spec).unwrap();
        let root = select_roots(g.num_vertices(), 1, 5, |v| g.degree(v))[0];
        let run = dist_hybrid_bfs(&g, root, &AlphaBetaPolicy::new(1e4, 1e5)).unwrap();
        assert!(run.net.bytes > 0, "multi-node run must communicate");
        assert!(run.levels.iter().any(|l| l.net_time > Duration::ZERO));
        // Bottom-up levels do collectives; top-down levels do messages.
        if run
            .levels
            .iter()
            .any(|l| l.direction == Direction::BottomUp)
        {
            assert!(run.net.collectives > 0);
        }
        assert!(run.sim_teps() > 0.0);
    }

    #[test]
    fn single_node_has_no_traffic() {
        let el = kron(9, 8);
        let g = DistGraph::build(&el, ClusterSpec::dram(1)).unwrap();
        let root = select_roots(g.num_vertices(), 1, 5, |v| g.degree(v))[0];
        let run = dist_hybrid_bfs(&g, root, &AlphaBetaPolicy::new(1e4, 1e5)).unwrap();
        assert_eq!(run.net.bytes, 0);
        assert_eq!(run.net.messages, 0);
    }

    #[test]
    fn nvm_cluster_validates_and_meters_devices() {
        let el = kron(9, 12);
        let mut spec = ClusterSpec::flash_cluster(2);
        spec.delay_mode = sembfs_semext::DelayMode::Accounting;
        let g = DistGraph::build(&el, spec).unwrap();
        let root = select_roots(g.num_vertices(), 1, 3, |v| g.degree(v))[0];
        let run = dist_hybrid_bfs(&g, root, &AlphaBetaPolicy::new(1e4, 1e5)).unwrap();
        validate_bfs_tree(&run.parent, root, &el).unwrap();
        let reqs: u64 = (0..2)
            .map(|k| g.node(k).device().unwrap().snapshot().requests)
            .sum();
        assert!(reqs > 0, "node devices must have served reads");
    }
}

#[cfg(test)]
mod level_semantics_tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use sembfs_core::AlphaBetaPolicy;
    use sembfs_graph500::edge_list::MemEdgeList;

    /// Star-with-tail: 0-{1,2,3}, 3-4, 4-5 over 3 nodes of 2 vertices.
    fn graph() -> DistGraph {
        let el = MemEdgeList::new(6, vec![(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)]);
        DistGraph::build(&el, ClusterSpec::dram(3)).unwrap()
    }

    #[test]
    fn level_stats_chain_consistently() {
        let g = graph();
        let run = dist_hybrid_bfs(&g, 0, &AlphaBetaPolicy::new(1e3, 1e3)).unwrap();
        // Frontier sizes chain: each level's input is the prior's output.
        let mut expect = 1;
        for l in &run.levels {
            assert_eq!(l.frontier_size, expect, "level {}", l.level);
            expect = l.discovered;
        }
        assert_eq!(run.visited, 6);
        // Simulated time covers every level.
        let total: std::time::Duration = run.levels.iter().map(|l| l.sim_time).sum();
        assert_eq!(total, run.sim_elapsed);
    }

    #[test]
    fn top_down_traffic_is_claim_sized() {
        let g = graph();
        let run = dist_hybrid_bfs(&g, 0, &sembfs_core::FixedPolicy(Direction::TopDown)).unwrap();
        // Every message byte is an 8-byte (child, parent) claim.
        assert_eq!(run.net.bytes % 8, 0);
        assert_eq!(run.net.collectives, 0, "pure top-down never allgathers");
    }

    #[test]
    fn bottom_up_traffic_is_bitmap_sized() {
        let g = graph();
        let run = dist_hybrid_bfs(&g, 0, &sembfs_core::FixedPolicy(Direction::BottomUp)).unwrap();
        assert_eq!(run.net.messages, 0, "pure bottom-up sends no claims");
        assert!(run.net.collectives as usize >= run.levels.len());
    }

    #[test]
    fn teps_edges_counts_component() {
        let g = graph();
        let run = dist_hybrid_bfs(&g, 0, &AlphaBetaPolicy::new(1e2, 1e2)).unwrap();
        // 5 undirected edges, all inside the component.
        assert_eq!(run.teps_edges, 5);
    }
}
