//! The simulated cluster and its per-node graph partitions.

use std::sync::Arc;

use sembfs_csr::{build_csr, BuildOptions, CsrGraph};
use sembfs_graph500::edge_list::EdgeList;
use sembfs_numa::RangePartition;
use sembfs_semext::ext_csr::{write_csr_files, ExtCsr};
use sembfs_semext::{
    ChunkedReader, DelayMode, Device, DeviceProfile, FileBackend, NvmStore, Result, TempDir,
};

use crate::network::NetworkProfile;
use crate::VertexId;

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of nodes `p` (1-D vertex partition).
    pub nodes: usize,
    /// Interconnect model.
    pub network: NetworkProfile,
    /// When set, each node offloads its adjacency to its *own* simulated
    /// device of this profile — the paper's technique applied per node.
    pub node_nvm: Option<DeviceProfile>,
    /// Whether node devices really delay (affects measured compute).
    pub delay_mode: DelayMode,
}

impl ClusterSpec {
    /// An all-DRAM cluster over an ideal network (pure algorithm study).
    pub fn dram(nodes: usize) -> Self {
        Self {
            nodes,
            network: NetworkProfile::ideal(),
            node_nvm: None,
            delay_mode: DelayMode::Accounting,
        }
    }

    /// Every node carries a PCIe-flash model for its adjacency, talking
    /// over InfiniBand — the scaled-out version of DRAM+PCIeFlash.
    pub fn flash_cluster(nodes: usize) -> Self {
        Self {
            nodes,
            network: NetworkProfile::infiniband_qdr(),
            node_nvm: Some(DeviceProfile::iodrive2()),
            delay_mode: DelayMode::Throttled,
        }
    }
}

/// Where a node keeps the adjacency of its local vertices
/// (rows are indexed locally: row `i` is vertex `range.start + i`).
///
/// The NVM variant mirrors the paper's single-node layout per node: the
/// **forward** copy (read by the top-down phase) lives on the node's
/// device, while the **backward** copy (read by the latency-critical
/// bottom-up probes) stays in the node's DRAM — §V-A applied at every
/// node.
#[derive(Debug)]
pub enum NodeStorage {
    /// Local adjacency in the node's DRAM (used by both phases).
    Dram(CsrGraph),
    /// Forward copy on the node's device; backward copy in DRAM.
    Nvm {
        /// The external forward CSR (index + values on the device).
        forward: ExtCsr<NvmStore<FileBackend>>,
        /// The DRAM-resident backward copy.
        backward: CsrGraph,
        /// The node's device.
        device: Arc<Device>,
        /// Matching chunk reader.
        reader: ChunkedReader,
    },
}

impl NodeStorage {
    /// Visit the neighbors of local row `i` (global vertex IDs) on the
    /// **top-down** path: reads the device when the forward copy is
    /// offloaded.
    pub fn with_neighbors<T>(
        &self,
        i: u64,
        buf: &mut Vec<VertexId>,
        scratch: &mut Vec<u8>,
        f: impl FnOnce(&[VertexId]) -> T,
    ) -> Result<T> {
        match self {
            NodeStorage::Dram(csr) => Ok(f(csr.neighbors(i as VertexId))),
            NodeStorage::Nvm {
                forward, reader, ..
            } => {
                forward.read_neighbors(i, reader, buf, scratch)?;
                Ok(f(buf))
            }
        }
    }

    /// Neighbors of local row `i` on the **bottom-up** path: always DRAM
    /// (the paper keeps the backward graph resident, §V-A).
    pub fn bu_neighbors(&self, i: u64) -> &[VertexId] {
        match self {
            NodeStorage::Dram(csr) => csr.neighbors(i as VertexId),
            NodeStorage::Nvm { backward, .. } => backward.neighbors(i as VertexId),
        }
    }

    /// The node's device, when storage is external.
    pub fn device(&self) -> Option<&Arc<Device>> {
        match self {
            NodeStorage::Dram(_) => None,
            NodeStorage::Nvm { device, .. } => Some(device),
        }
    }

    /// Local adjacency bytes held in DRAM.
    pub fn dram_bytes(&self) -> u64 {
        match self {
            NodeStorage::Dram(csr) => csr.byte_size(),
            NodeStorage::Nvm { backward, .. } => backward.byte_size(),
        }
    }

    /// Local adjacency bytes held on the node's device.
    pub fn nvm_bytes(&self) -> u64 {
        match self {
            NodeStorage::Dram(_) => 0,
            NodeStorage::Nvm { forward, .. } => forward.byte_size(),
        }
    }
}

/// The partitioned graph: one storage per node plus global metadata.
///
/// ```
/// use sembfs_dist::{dist_hybrid_bfs, ClusterSpec, DistGraph};
/// use sembfs_core::AlphaBetaPolicy;
/// use sembfs_graph500::edge_list::MemEdgeList;
///
/// let edges = MemEdgeList::new(8, (0..7).map(|i| (i, i + 1)).collect());
/// let graph = DistGraph::build(&edges, ClusterSpec::dram(4)).unwrap();
/// let run = dist_hybrid_bfs(&graph, 0, &AlphaBetaPolicy::new(1e3, 1e3)).unwrap();
/// assert_eq!(run.visited, 8);
/// assert!(run.net.bytes > 0); // frontier claims crossed node boundaries
/// ```
#[derive(Debug)]
pub struct DistGraph {
    spec: ClusterSpec,
    partition: RangePartition,
    nodes: Vec<NodeStorage>,
    /// Global per-vertex degrees (measurement scaffolding for TEPS edge
    /// accounting and root selection; a real cluster would keep its local
    /// slice only).
    degrees: Vec<u32>,
    _tempdir: Option<TempDir>,
}

impl DistGraph {
    /// Partition `edges` across the cluster (Graph500 Step 2, per node).
    pub fn build(edges: &dyn EdgeList, spec: ClusterSpec) -> Result<Self> {
        assert!(spec.nodes > 0, "cluster needs at least one node");
        let full = build_csr(edges, BuildOptions::default())?;
        let n = full.num_vertices();
        let partition = RangePartition::new(n, spec.nodes);
        let degrees: Vec<u32> = (0..n).map(|v| full.degree(v as VertexId) as u32).collect();

        let tempdir = if spec.node_nvm.is_some() {
            Some(TempDir::new("dist")?)
        } else {
            None
        };

        let mut nodes = Vec::with_capacity(spec.nodes);
        for k in 0..spec.nodes {
            let range = partition.range(k);
            // Slice the node's rows out of the full CSR, re-based to 0.
            let base = full.index()[range.start as usize];
            let end = full.index()[range.end as usize];
            let local_index: Vec<u64> = full.index()[range.start as usize..=range.end as usize]
                .iter()
                .map(|&off| off - base)
                .collect();
            let local_values = full.values()[base as usize..end as usize].to_vec();
            let local = CsrGraph::new(local_index, local_values);

            match (&spec.node_nvm, &tempdir) {
                (Some(profile), Some(dir)) => {
                    let ip = dir.path().join(format!("node-{k}.index"));
                    let vp = dir.path().join(format!("node-{k}.values"));
                    write_csr_files(&ip, &vp, local.index(), local.values())?;
                    let device = Device::new(profile.clone(), spec.delay_mode);
                    let reader = ChunkedReader::for_device(&device);
                    let forward = ExtCsr::new(
                        NvmStore::new(FileBackend::open(&ip)?, device.clone()),
                        NvmStore::new(FileBackend::open(&vp)?, device.clone()),
                    )?;
                    nodes.push(NodeStorage::Nvm {
                        forward,
                        backward: local,
                        device,
                        reader,
                    });
                }
                _ => nodes.push(NodeStorage::Dram(local)),
            }
        }
        Ok(Self {
            spec,
            partition,
            nodes,
            degrees,
            _tempdir: tempdir,
        })
    }

    /// The cluster configuration.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The vertex partition (node `k` owns `partition.range(k)`).
    pub fn partition(&self) -> &RangePartition {
        &self.partition
    }

    /// Number of nodes `p`.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> u64 {
        self.partition.num_vertices()
    }

    /// Node `k`'s storage.
    pub fn node(&self, k: usize) -> &NodeStorage {
        &self.nodes[k]
    }

    /// Owner node of vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        self.partition.domain_of(v as u64)
    }

    /// Degree of vertex `v` (global metadata).
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.degrees[v as usize] as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sembfs_graph500::edge_list::MemEdgeList;
    use sembfs_graph500::KroneckerParams;

    fn sample() -> MemEdgeList {
        MemEdgeList::new(8, vec![(0, 1), (1, 5), (2, 6), (3, 7), (4, 5), (6, 7)])
    }

    #[test]
    fn partitions_rows_correctly() {
        let g = DistGraph::build(&sample(), ClusterSpec::dram(2)).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.partition().range(0), 0..4);
        // Vertex 1's neighbors are {0, 5}; it is row 1 of node 0.
        let (mut buf, mut scratch) = (Vec::new(), Vec::new());
        let mut ns = g
            .node(0)
            .with_neighbors(1, &mut buf, &mut scratch, |ns| ns.to_vec())
            .unwrap();
        ns.sort_unstable();
        assert_eq!(ns, vec![0, 5]);
        // Vertex 6 is row 2 of node 1, neighbors {2, 7}.
        let mut ns = g
            .node(1)
            .with_neighbors(2, &mut buf, &mut scratch, |ns| ns.to_vec())
            .unwrap();
        ns.sort_unstable();
        assert_eq!(ns, vec![2, 7]);
    }

    #[test]
    fn degrees_are_global() {
        let g = DistGraph::build(&sample(), ClusterSpec::dram(3)).unwrap();
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(5), 2);
        assert_eq!(g.owner(7), 2);
    }

    #[test]
    fn nvm_nodes_have_devices_and_match_dram() {
        let el = KroneckerParams::graph500(8, 5).generate();
        let dram = DistGraph::build(&el, ClusterSpec::dram(2)).unwrap();
        let mut spec = ClusterSpec::flash_cluster(2);
        spec.delay_mode = DelayMode::Accounting;
        let nvm = DistGraph::build(&el, spec).unwrap();
        assert!(nvm.node(0).device().is_some());
        assert!(dram.node(0).device().is_none());
        assert!(nvm.node(0).nvm_bytes() > 0);
        // The backward copy stays in DRAM (the paper's per-node layout).
        assert!(nvm.node(0).dram_bytes() > 0);

        let (mut buf, mut scratch) = (Vec::new(), Vec::new());
        for k in 0..2 {
            let range = dram.partition().range(k);
            for i in 0..(range.end - range.start) {
                let a = dram
                    .node(k)
                    .with_neighbors(i, &mut buf, &mut scratch, |ns| ns.to_vec())
                    .unwrap();
                let b = nvm
                    .node(k)
                    .with_neighbors(i, &mut buf, &mut scratch, |ns| ns.to_vec())
                    .unwrap();
                assert_eq!(a, b, "node {k} row {i}");
            }
        }
        // Reads were metered on the node devices.
        assert!(nvm.node(0).device().unwrap().snapshot().requests > 0);
    }

    #[test]
    fn single_node_cluster_is_whole_graph() {
        let g = DistGraph::build(&sample(), ClusterSpec::dram(1)).unwrap();
        assert_eq!(g.partition().range(0), 0..8);
        assert_eq!(g.owner(7), 0);
    }
}
