//! `sembfs-dist` — the paper's multi-node future work, simulated.
//!
//! §VIII: "Future work includes … applying our technique to multi-node
//! environments", citing Beamer et al.'s distributed direction-optimizing
//! BFS (MTAAP'13). This crate implements that extension as a **simulated
//! cluster**: `p` nodes own contiguous vertex ranges (1-D partition);
//! every node holds the adjacency of its own vertices — in DRAM or
//! offloaded to its own simulated NVM device, exactly like the
//! single-node scenarios — and the level-synchronous hybrid BFS runs with
//! explicit communication:
//!
//! * **top-down**: each node expands its local slice of the frontier and
//!   sends `(child, parent)` discoveries to the child's owner;
//! * **bottom-up**: the frontier bitmap is allgathered, then each node
//!   probes only its local unvisited vertices.
//!
//! Node compute is executed for real (one node at a time; the simulated
//! level time takes the **max** across nodes, as a real cluster would),
//! and the network is a model ([`NetworkProfile`]) that accounts bytes
//! and rounds and charges `latency + bytes/bandwidth` per level. The
//! result is a *simulated* wall time and TEPS plus exact traffic
//! statistics — enough to study how the semi-external technique composes
//! with scale-out, without owning a cluster.

pub mod bfs;
pub mod cluster;
pub mod network;

pub use bfs::{dist_hybrid_bfs, DistBfsRun, DistLevelStats};
pub use cluster::{ClusterSpec, DistGraph, NodeStorage};
pub use network::{NetStats, NetworkProfile};

pub use sembfs_graph500::{VertexId, INVALID_PARENT};
