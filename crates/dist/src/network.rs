//! The interconnect model.
//!
//! Like the storage [`Device`](sembfs_semext::Device), the network is a
//! calibrated analytical model rather than real hardware: each
//! communication phase of a level costs one latency term per round plus
//! the byte volume over the (bisection) bandwidth. Traffic is accounted
//! exactly; time is virtual.

use std::time::Duration;

/// Performance parameters of the simulated interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Per-message-round latency (software + switch).
    pub latency: Duration,
    /// Aggregate bandwidth available to one exchange phase, bytes/s.
    pub bandwidth: u64,
}

impl NetworkProfile {
    /// A 2013-era QDR InfiniBand-like fabric: ~2 µs latency, ~4 GB/s
    /// effective per-node bandwidth.
    pub fn infiniband_qdr() -> Self {
        Self {
            name: "InfiniBand QDR",
            latency: Duration::from_micros(2),
            bandwidth: 4_000_000_000,
        }
    }

    /// Commodity 10 GbE: ~30 µs latency, ~1.2 GB/s effective.
    pub fn ten_gbe() -> Self {
        Self {
            name: "10 GbE",
            latency: Duration::from_micros(30),
            bandwidth: 1_200_000_000,
        }
    }

    /// A free network (isolates computation effects).
    pub fn ideal() -> Self {
        Self {
            name: "ideal",
            latency: Duration::ZERO,
            bandwidth: u64::MAX,
        }
    }

    /// Modeled time for one exchange phase of `bytes` total volume over
    /// `rounds` message rounds.
    pub fn phase_time(&self, bytes: u64, rounds: u32) -> Duration {
        let transfer_ns = if self.bandwidth == u64::MAX {
            0
        } else {
            bytes.saturating_mul(1_000_000_000).div_ceil(self.bandwidth)
        };
        self.latency * rounds + Duration::from_nanos(transfer_ns)
    }
}

/// Accumulated traffic statistics of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total bytes moved between nodes.
    pub bytes: u64,
    /// Total point-to-point messages.
    pub messages: u64,
    /// Total collective operations (allgathers / allreduces).
    pub collectives: u64,
}

impl NetStats {
    /// Record a point-to-point message.
    pub fn message(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.messages += 1;
    }

    /// Record a collective of `bytes` total volume.
    pub fn collective(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.collectives += 1;
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &NetStats) {
        self.bytes += other.bytes;
        self.messages += other.messages;
        self.collectives += other.collectives;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_time_components() {
        let p = NetworkProfile {
            name: "toy",
            latency: Duration::from_micros(10),
            bandwidth: 1_000_000_000,
        };
        // 1 MB over 1 GB/s = 1 ms, plus 2 rounds × 10 µs.
        let t = p.phase_time(1_000_000, 2);
        assert_eq!(t, Duration::from_micros(1020));
    }

    #[test]
    fn ideal_network_is_free() {
        assert_eq!(
            NetworkProfile::ideal().phase_time(1 << 40, 100),
            Duration::ZERO
        );
    }

    #[test]
    fn profiles_ordering() {
        let ib = NetworkProfile::infiniband_qdr();
        let eth = NetworkProfile::ten_gbe();
        assert!(ib.phase_time(1 << 20, 1) < eth.phase_time(1 << 20, 1));
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut a = NetStats::default();
        a.message(100);
        a.message(50);
        a.collective(1000);
        assert_eq!(a.bytes, 1150);
        assert_eq!(a.messages, 2);
        assert_eq!(a.collectives, 1);
        let mut b = NetStats::default();
        b.message(1);
        b.merge(&a);
        assert_eq!(b.bytes, 1151);
        assert_eq!(b.messages, 3);
    }
}
