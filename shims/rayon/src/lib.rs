//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small data-parallel engine with the subset of rayon's API the code base
//! uses: `into_par_iter` on ranges and vectors, `par_iter`/`par_iter_mut`/
//! `par_chunks` on slices, `map`/`map_init`/`enumerate` combinators, the
//! `for_each`/`try_for_each(_init)`/`collect`/`try_reduce` terminals, and
//! `par_sort_unstable_by_key`.
//!
//! Execution model: the source is split into one contiguous part per worker
//! and driven on `std::thread::scope` threads. Per-thread state (`map_init`,
//! `*_for_each_init`) is created once per worker, matching rayon's
//! "at least once per split" contract. Thread count comes from
//! `RAYON_NUM_THREADS` (re-read on every call so tests and benches can
//! adjust it) falling back to `std::thread::available_parallelism`. With one
//! item or one thread everything runs inline on the caller's thread.

use std::ops::Range;

/// Number of worker threads a parallel call may use.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

// ---------------------------------------------------------------------------
// Sources: splittable producers of (global_index, item)
// ---------------------------------------------------------------------------

/// A splittable input domain. `visit` yields items together with their global
/// index (stable across splits) so `enumerate` works after partitioning.
pub trait ParSource: Sized + Send {
    type Item: Send;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn split_at(self, index: usize) -> (Self, Self);
    fn visit<F: FnMut(usize, Self::Item)>(self, f: F);
}

pub struct RangeSource<T> {
    cur: T,
    end: T,
    base: usize,
}

macro_rules! range_source {
    ($($t:ty),*) => {$(
        impl ParSource for RangeSource<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                if self.end > self.cur {
                    (self.end - self.cur) as usize
                } else {
                    0
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.cur + index as $t;
                (
                    RangeSource { cur: self.cur, end: mid, base: self.base },
                    RangeSource { cur: mid, end: self.end, base: self.base + index },
                )
            }

            fn visit<F: FnMut(usize, $t)>(mut self, mut f: F) {
                let mut idx = self.base;
                while self.cur < self.end {
                    f(idx, self.cur);
                    self.cur += 1;
                    idx += 1;
                }
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeSource<$t>, IdentityStage>;

            fn into_par_iter(self) -> Self::Iter {
                ParIter::new(RangeSource { cur: self.start, end: self.end, base: 0 })
            }
        }
    )*};
}

range_source!(u32, u64, usize, i32, i64);

pub struct VecSource<T> {
    items: Vec<T>,
    base: usize,
}

impl<T: Send> ParSource for VecSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        let tail_base = self.base + index;
        (
            self,
            VecSource {
                items: tail,
                base: tail_base,
            },
        )
    }

    fn visit<F: FnMut(usize, T)>(self, mut f: F) {
        let base = self.base;
        for (i, item) in self.items.into_iter().enumerate() {
            f(base + i, item);
        }
    }
}

pub struct SliceSource<'a, T> {
    slice: &'a [T],
    base: usize,
}

impl<'a, T: Sync> ParSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at(index);
        (
            SliceSource {
                slice: head,
                base: self.base,
            },
            SliceSource {
                slice: tail,
                base: self.base + index,
            },
        )
    }

    fn visit<F: FnMut(usize, &'a T)>(self, mut f: F) {
        for (i, item) in self.slice.iter().enumerate() {
            f(self.base + i, item);
        }
    }
}

pub struct SliceMutSource<'a, T> {
    slice: &'a mut [T],
    base: usize,
}

impl<'a, T: Send> ParSource for SliceMutSource<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at_mut(index);
        (
            SliceMutSource {
                slice: head,
                base: self.base,
            },
            SliceMutSource {
                slice: tail,
                base: self.base + index,
            },
        )
    }

    fn visit<F: FnMut(usize, &'a mut T)>(self, mut f: F) {
        for (i, item) in self.slice.iter_mut().enumerate() {
            f(self.base + i, item);
        }
    }
}

pub struct ChunksSource<'a, T> {
    slice: &'a [T],
    chunk: usize,
    base: usize,
}

impl<'a, T: Sync> ParSource for ChunksSource<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let split = (index * self.chunk).min(self.slice.len());
        let (head, tail) = self.slice.split_at(split);
        (
            ChunksSource {
                slice: head,
                chunk: self.chunk,
                base: self.base,
            },
            ChunksSource {
                slice: tail,
                chunk: self.chunk,
                base: self.base + index,
            },
        )
    }

    fn visit<F: FnMut(usize, &'a [T])>(self, mut f: F) {
        for (i, c) in self.slice.chunks(self.chunk).enumerate() {
            f(self.base + i, c);
        }
    }
}

// ---------------------------------------------------------------------------
// Stages: composable per-item transforms with per-worker state
// ---------------------------------------------------------------------------

pub trait Stage<In>: Sync {
    type Out;
    type State;
    fn init(&self) -> Self::State;
    fn apply(&self, state: &mut Self::State, index: usize, item: In) -> Self::Out;
}

pub struct IdentityStage;

impl<In> Stage<In> for IdentityStage {
    type Out = In;
    type State = ();
    fn init(&self) {}
    fn apply(&self, _: &mut (), _: usize, item: In) -> In {
        item
    }
}

pub struct MapStage<F> {
    f: F,
}

impl<In, Out, F: Fn(In) -> Out + Sync> Stage<In> for MapStage<F> {
    type Out = Out;
    type State = ();
    fn init(&self) {}
    fn apply(&self, _: &mut (), _: usize, item: In) -> Out {
        (self.f)(item)
    }
}

pub struct MapInitStage<I, F> {
    init: I,
    f: F,
}

impl<In, T, Out, I, F> Stage<In> for MapInitStage<I, F>
where
    I: Fn() -> T + Sync,
    F: Fn(&mut T, In) -> Out + Sync,
{
    type Out = Out;
    type State = T;
    fn init(&self) -> T {
        (self.init)()
    }
    fn apply(&self, state: &mut T, _: usize, item: In) -> Out {
        (self.f)(state, item)
    }
}

pub struct EnumerateStage;

impl<In> Stage<In> for EnumerateStage {
    type Out = (usize, In);
    type State = ();
    fn init(&self) {}
    fn apply(&self, _: &mut (), index: usize, item: In) -> (usize, In) {
        (index, item)
    }
}

pub struct Chain<A, B> {
    a: A,
    b: B,
}

impl<In, A, B> Stage<In> for Chain<A, B>
where
    A: Stage<In>,
    B: Stage<A::Out>,
{
    type Out = B::Out;
    type State = (A::State, B::State);
    fn init(&self) -> Self::State {
        (self.a.init(), self.b.init())
    }
    fn apply(&self, state: &mut Self::State, index: usize, item: In) -> Self::Out {
        let mid = self.a.apply(&mut state.0, index, item);
        self.b.apply(&mut state.1, index, mid)
    }
}

// ---------------------------------------------------------------------------
// The parallel iterator
// ---------------------------------------------------------------------------

pub struct ParIter<S, St> {
    src: S,
    stage: St,
}

impl<S: ParSource> ParIter<S, IdentityStage> {
    fn new(src: S) -> Self {
        ParIter {
            src,
            stage: IdentityStage,
        }
    }
}

impl<S, St> ParIter<S, St>
where
    S: ParSource,
    St: Stage<S::Item> + Sync,
{
    pub fn map<F, R>(self, f: F) -> ParIter<S, Chain<St, MapStage<F>>>
    where
        F: Fn(St::Out) -> R + Sync,
    {
        ParIter {
            src: self.src,
            stage: Chain {
                a: self.stage,
                b: MapStage { f },
            },
        }
    }

    pub fn map_init<I, T, F, R>(self, init: I, f: F) -> ParIter<S, Chain<St, MapInitStage<I, F>>>
    where
        I: Fn() -> T + Sync,
        F: Fn(&mut T, St::Out) -> R + Sync,
    {
        ParIter {
            src: self.src,
            stage: Chain {
                a: self.stage,
                b: MapInitStage { init, f },
            },
        }
    }

    pub fn enumerate(self) -> ParIter<S, Chain<St, EnumerateStage>> {
        ParIter {
            src: self.src,
            stage: Chain {
                a: self.stage,
                b: EnumerateStage,
            },
        }
    }

    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Split the source across workers and fold every item into a per-worker
    /// accumulator; returns one accumulator per worker in source order.
    fn drive<Acc, MK, STEP>(self, mk: MK, step: STEP) -> Vec<Acc>
    where
        Acc: Send,
        MK: Fn() -> Acc + Sync,
        STEP: Fn(&mut Acc, St::Out) + Sync,
    {
        let len = self.src.len();
        let workers = current_num_threads().min(len).max(1);
        let stage = &self.stage;
        if workers <= 1 {
            let mut state = stage.init();
            let mut acc = mk();
            self.src
                .visit(|i, x| step(&mut acc, stage.apply(&mut state, i, x)));
            return vec![acc];
        }
        let chunk = len.div_ceil(workers);
        let mut parts = Vec::with_capacity(workers);
        let mut rest = self.src;
        while rest.len() > chunk {
            let (head, tail) = rest.split_at(chunk);
            parts.push(head);
            rest = tail;
        }
        parts.push(rest);
        let mk = &mk;
        let step = &step;
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| {
                    scope.spawn(move || {
                        let mut state = stage.init();
                        let mut acc = mk();
                        part.visit(|i, x| step(&mut acc, stage.apply(&mut state, i, x)));
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect()
        })
    }

    pub fn for_each<OP>(self, op: OP)
    where
        OP: Fn(St::Out) + Sync,
    {
        self.drive(|| (), |_, out| op(out));
    }

    pub fn for_each_init<I, T, OP>(self, init: I, op: OP)
    where
        I: Fn() -> T + Sync,
        OP: Fn(&mut T, St::Out) + Sync,
    {
        self.map_init(init, op).for_each(|()| {});
    }

    pub fn try_for_each<OP, E>(self, op: OP) -> Result<(), E>
    where
        OP: Fn(St::Out) -> Result<(), E> + Sync,
        E: Send,
    {
        let chunks = self.drive(
            || Ok(()),
            |acc: &mut Result<(), E>, out| {
                if acc.is_ok() {
                    *acc = op(out);
                }
            },
        );
        for c in chunks {
            c?;
        }
        Ok(())
    }

    pub fn try_for_each_init<I, T, OP, E>(self, init: I, op: OP) -> Result<(), E>
    where
        I: Fn() -> T + Sync,
        OP: Fn(&mut T, St::Out) -> Result<(), E> + Sync,
        E: Send,
    {
        self.map_init(init, op).try_for_each(|r| r)
    }

    pub fn collect<C>(self) -> C
    where
        St::Out: Send,
        C: FromParallelIterator<St::Out>,
    {
        let chunks = self.drive(Vec::new, |v, x| v.push(x));
        C::from_par_chunks(chunks)
    }

    pub fn count(self) -> usize {
        let chunks = self.drive(|| 0usize, |n, _| *n += 1);
        chunks.into_iter().sum()
    }

    pub fn sum<T>(self) -> T
    where
        St: Stage<S::Item, Out = T>,
        T: Send + std::iter::Sum<T>,
    {
        let chunks = self.drive(Vec::new, |v: &mut Vec<T>, x| v.push(x));
        chunks.into_iter().flatten().sum()
    }

    pub fn reduce<T, ID, OP>(self, identity: ID, op: OP) -> T
    where
        St: Stage<S::Item, Out = T>,
        T: Send,
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let step = |acc: &mut T, v: T| {
            let prev = std::mem::replace(acc, identity());
            *acc = op(prev, v);
        };
        let chunks = self.drive(&identity, step);
        let mut total = identity();
        for c in chunks {
            total = op(total, c);
        }
        total
    }

    pub fn try_reduce<T, E, ID, OP>(self, identity: ID, op: OP) -> Result<T, E>
    where
        St: Stage<S::Item, Out = Result<T, E>>,
        T: Send,
        E: Send,
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> Result<T, E> + Sync,
    {
        let step = |acc: &mut Result<T, E>, v: Result<T, E>| {
            if acc.is_err() {
                return;
            }
            match v {
                Err(e) => *acc = Err(e),
                Ok(v) => {
                    if let Ok(prev) = std::mem::replace(acc, Ok(identity())) {
                        *acc = op(prev, v);
                    }
                }
            }
        };
        let chunks = self.drive(|| Ok(identity()), step);
        let mut total: Result<T, E> = Ok(identity());
        for c in chunks {
            step(&mut total, c);
        }
        total
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<VecSource<T>, IdentityStage>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(VecSource {
            items: self,
            base: 0,
        })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>, IdentityStage>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(SliceSource {
            slice: self,
            base: 0,
        })
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>, IdentityStage>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>, IdentityStage>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>, IdentityStage> {
        ParIter::new(SliceSource {
            slice: self,
            base: 0,
        })
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>, IdentityStage> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter::new(ChunksSource {
            slice: self,
            chunk: chunk_size,
            base: 0,
        })
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>, IdentityStage>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>, IdentityStage> {
        ParIter::new(SliceMutSource {
            slice: self,
            base: 0,
        })
    }

    // Sorting runs sequentially: pattern-defeating quicksort is already close
    // to memory bound at the core counts this shim targets.
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.sort_unstable_by_key(key);
    }
}

pub mod iter {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut,
    };
}

pub mod slice {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

pub trait FromParallelIterator<T> {
    fn from_par_chunks(chunks: Vec<Vec<T>>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_chunks(chunks: Vec<Vec<T>>) -> Self {
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_chunks(chunks: Vec<Vec<Result<T, E>>>) -> Self {
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for c in chunks {
            for r in c {
                out.push(r?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn range_map_collect() {
        let v: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 100);
        assert_eq!(v[7], 14);
        assert_eq!(v[99], 198);
    }

    #[test]
    fn enumerate_indices_are_global() {
        let data: Vec<u32> = (0..1000).collect();
        let pairs: Vec<(usize, u32)> = data
            .par_chunks(7)
            .enumerate()
            .map(|(i, c)| (i, c[0]))
            .collect();
        for (i, first) in &pairs {
            assert_eq!(*first as usize, i * 7);
        }
    }

    #[test]
    fn for_each_visits_everything() {
        let sum = AtomicU64::new(0);
        (1u64..1001)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|x| {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 500500);
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        let inits = AtomicU64::new(0);
        let out: Vec<u64> = (0u64..64)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u64
                },
                |scratch, x| {
                    *scratch += 1;
                    x
                },
            )
            .collect();
        assert_eq!(out.len(), 64);
        assert!(inits.load(Ordering::Relaxed) <= 64);
    }

    #[test]
    fn try_reduce_short_circuits_errors() {
        let ok: Result<u64, String> = (1u64..11)
            .into_par_iter()
            .map(Ok)
            .try_reduce(|| 0, |a, b| Ok(a + b));
        assert_eq!(ok, Ok(55));
        let err: Result<u64, String> = (1u64..11)
            .into_par_iter()
            .map(|x| {
                if x == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .try_reduce(|| 0, |a, b| Ok(a + b));
        assert_eq!(err, Err("boom".to_string()));
    }

    #[test]
    fn try_for_each_collect_results() {
        let r: Result<Vec<u64>, ()> = (0u64..32).into_par_iter().map(Ok).collect();
        assert_eq!(r.unwrap().len(), 32);
    }

    #[test]
    fn par_iter_mut_writes_through() {
        let mut v = vec![0u32; 257];
        v.par_iter_mut().enumerate().for_each(|(i, slot)| {
            *slot = i as u32;
        });
        assert_eq!(v[256], 256);
    }

    #[test]
    fn sort_by_key_matches_std() {
        let mut a: Vec<u32> = (0..500).rev().collect();
        a.par_sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        assert_eq!(a[0], 499);
        assert_eq!(a[499], 0);
    }
}
